#!/usr/bin/env bash
# Repo health gate: formatting, lints, release build, full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== release build =="
cargo build --release

echo "== tier-1 tests (root package) =="
cargo test -q

echo "== full workspace tests =="
cargo test --workspace -q

echo "== snapshot kill-and-resume smoke (threaded engine, bit-identical resume) =="
cargo run --release -q -p pbp-bench --bin snapshot_smoke

echo "== schedule smoke (1F1B + 2BP delay histograms, split-backward bit-identity) =="
cargo run --release -q -p pbp-bench --bin schedule_smoke

echo "== chaos smoke (seeded panic + stall, supervised recovery) =="
# Injects a stage panic and a stage stall into a supervised threaded run;
# the one worker-panic backtrace printed mid-run is the injection itself.
cargo run --release -q -p pbp-bench --bin chaos_smoke

echo "== trace smoke (Chrome-trace schema, bubble ordering, MFU bounds) =="
cargo run --release -q -p pbp-bench --bin trace_smoke

echo "== dist smoke (2-rank unix-socket run, bit-identical to the emulator) =="
cargo run --release -q -p pbp-bench --bin dist_smoke

echo "== dist bench lane (socket runner vs threaded engine, results/BENCH_dist.json) =="
PBP_BENCH_SMOKE=1 cargo run --release -q -p pbp-bench --bin bench_dist

echo "== chaos dist smoke (4-rank net-fault soak: drops/dups/partition + single-rank kill) =="
PBP_BENCH_SMOKE=1 cargo run --release -q -p pbp-bench --bin chaos_dist

echo "== kernel bench smoke (compile + one tiny timed pass) =="
cargo bench -p pbp-bench --bench layer_kernels -- --test
# The bench asserts every lane (tiled, SIMD, parallel, batched eval) is
# bit-identical to the naive reference internally, so these runs double as
# differential smoke tests. The second run exercises the PBP_SIMD=0 escape
# hatch; on CPUs without AVX2+FMA both runs degrade to the scalar tile and
# still pass.
PBP_THREADS=2 PBP_BENCH_SMOKE=1 cargo run --release -q -p pbp-bench --bin bench_kernels >/dev/null
PBP_THREADS=2 PBP_BENCH_SMOKE=1 PBP_SIMD=0 cargo run --release -q -p pbp-bench --bin bench_kernels >/dev/null

echo "== serving smoke (dynamic batching coalesces, replies bit-identical, p50/p99 schema) =="
cargo run --release -q -p pbp-bench --bin serving_smoke

echo "== serving bench lane (baseline vs closed/open loop, smoke scale) =="
PBP_THREADS=1 PBP_BENCH_SMOKE=1 cargo run --release -q -p pbp-bench --bin bench_serving >/dev/null

echo "All checks passed."
