//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so external crates cannot be
//! fetched. This shim covers the proptest 1.x API subset the workspace uses:
//! the `proptest!` test macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! `collection::vec` strategies, and `TestCaseError`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: inputs are drawn from a deterministic RNG seeded from the test
//! name, so every run exercises the same cases and failures reproduce
//! exactly.

#[doc(hidden)]
pub use ::rand as __rand;

/// Strategy trait and the primitive strategy implementations.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: Copy> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Permitted lengths for a generated collection (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and failure types.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed (or `TestCaseError::fail` was returned).
        Fail(String),
        /// A `prop_assume!` filtered the inputs out; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Marks the case as failed with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Marks the inputs as rejected (not a failure).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// True for `prop_assume!` rejections.
        pub fn is_rejection(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic per-test RNG seed derived from the test path (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs one generated case (exists so the `proptest!` expansion avoids
    /// an immediately-invoked closure, which clippy rejects).
    pub fn run_case<F>(case: F) -> Result<(), TestCaseError>
    where
        F: FnOnce() -> Result<(), TestCaseError>,
    {
        case()
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each function body runs `config.cases` times
/// with fresh inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one `#[test]` wrapper per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut successes = 0u32;
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while successes < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest '{}': too many prop_assume! rejections \
                         ({successes}/{} cases after {max_attempts} attempts)",
                        stringify!($name),
                        config.cases,
                    );
                }
                $(let $arg = ($strat).sample(&mut rng);)*
                let inputs: String =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", ");
                let outcome = $crate::test_runner::run_case(|| {
                    $body
                    ::std::result::Result::Ok(())
                });
                match outcome {
                    ::std::result::Result::Ok(()) => successes += 1,
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => panic!(
                        "proptest '{}' failed: {e}\n  inputs: {inputs}",
                        stringify!($name),
                    ),
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current inputs (the case is redrawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_retries_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn moves_of_inputs_are_allowed(v in crate::collection::vec(0u32..9, 1..4)) {
            let owned: Vec<u32> = v; // body may consume the sampled input
            prop_assert!(!owned.is_empty());
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failures_surface_as_panics() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] on the inner fn: it is invoked directly below.
            proptest! {
                fn always_fails(n in 0usize..4) {
                    prop_assert!(n > 100, "n was {n}");
                }
            }
            always_fails();
        });
        assert!(result.is_err(), "failing property must panic");
    }

    #[test]
    fn seeds_differ_per_test_name() {
        use crate::test_runner::seed_for;
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
    }
}
