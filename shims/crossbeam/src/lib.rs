//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no network access, so external crates cannot be
//! fetched. This shim provides the `crossbeam::channel` API subset the
//! workspace uses: `bounded`/`unbounded` MPMC channels with disconnect
//! semantics, plus a two-arm `select!` macro. Channels are a `Mutex<VecDeque>`
//! with condvars — not lock-free like the real crate, but the pipeline moves
//! whole activation tensors per message, so channel overhead is negligible.

/// MPMC channels with `Sender`/`Receiver` endpoints and disconnect semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    pub use crate::select;

    /// Sending failed because every `Receiver` was dropped. Returns the
    /// unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate, printable without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Receiving failed because the channel is empty and every `Sender` was
    /// dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Non-blocking receive outcome when no message was taken.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently has no messages but senders remain.
        Empty,
        /// Channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    /// Bounded-wait receive outcome when no message was taken.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Channel is empty and every `Sender` was dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive operation"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Non-blocking send outcome when the message was not enqueued; carries
    /// the message back like the real crate.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity right now.
        Full(T),
        /// Every `Receiver` was dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "TrySendError::Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Bounded-wait send outcome when the message was not enqueued; carries
    /// the message back like the real crate.
    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The deadline passed with the channel still full.
        Timeout(T),
        /// Every `Receiver` was dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "timed out waiting on send operation"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Wakeup latch shared between `select2` and the channels it watches.
    pub(crate) struct SelectSignal {
        fired: Mutex<bool>,
        cond: Condvar,
    }

    impl SelectSignal {
        fn new() -> Self {
            SelectSignal {
                fired: Mutex::new(false),
                cond: Condvar::new(),
            }
        }

        fn reset(&self) {
            *self.fired.lock().unwrap() = false;
        }

        pub(crate) fn notify(&self) {
            *self.fired.lock().unwrap() = true;
            self.cond.notify_all();
        }

        /// Waits until notified. The timeout is a belt-and-braces guard; the
        /// registration protocol re-checks readiness after registering, so a
        /// wakeup cannot be lost.
        fn wait(&self) {
            let guard = self.fired.lock().unwrap();
            let _unused = self
                .cond
                .wait_timeout_while(guard, Duration::from_millis(50), |fired| !*fired)
                .unwrap();
        }

        /// Waits until notified or `deadline` passes, whichever is first.
        fn wait_until(&self, deadline: Instant) {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let cap = (deadline - now).min(Duration::from_millis(50));
            let guard = self.fired.lock().unwrap();
            let _unused = self
                .cond
                .wait_timeout_while(guard, cap, |fired| !*fired)
                .unwrap();
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        waiters: Vec<Weak<SelectSignal>>,
    }

    impl<T> Inner<T> {
        /// Wakes every registered `select` waiter; stale entries are pruned.
        fn notify_waiters(&mut self) {
            for w in self.waiters.drain(..) {
                if let Some(signal) = w.upgrade() {
                    signal.notify();
                }
            }
        }
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable; the channel disconnects for
    /// receivers when the last clone is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable; the channel disconnects
    /// for senders when the last clone is dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full. A capacity of zero is treated as one (the real
    /// crate's rendezvous semantics are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
                waiters: Vec::new(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it in
        /// `SendError` if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    break;
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
            inner.queue.push_back(value);
            inner.notify_waiters();
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: enqueues the message only if a slot is free
        /// right now, otherwise hands it back as `Full`/`Disconnected`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            inner.notify_waiters();
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Like [`Sender::send`], but gives up once `timeout` elapses with
        /// the channel still full, returning the message either way.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_full
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
            inner.queue.push_back(value);
            inner.notify_waiters();
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.notify_waiters();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns `RecvError` once the
        /// channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Like [`Receiver::recv`], but gives up once `timeout` elapses with
        /// the channel still empty.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(value) => {
                    self.shared.not_full.notify_one();
                    Ok(value)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// True when `recv` would return without blocking (message queued or
        /// channel disconnected).
        fn is_ready(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap();
            !inner.queue.is_empty() || inner.senders == 0
        }

        fn register_waiter(&self, signal: &Arc<SelectSignal>) {
            self.shared
                .inner
                .lock()
                .unwrap()
                .waiters
                .push(Arc::downgrade(signal));
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Which arm of a two-channel `select!` fired, carrying the `recv`
    /// result for that channel.
    pub enum Select2<A, B> {
        /// The first channel produced a result.
        First(Result<A, RecvError>),
        /// The second channel produced a result.
        Second(Result<B, RecvError>),
    }

    thread_local! {
        /// Reusable per-thread wakeup latch for [`select2`]. A stale
        /// registration from an earlier call can only cause a spurious
        /// notify, which the re-polling loop absorbs — so reuse is safe and
        /// keeps the fast path (message already queued) allocation-free.
        static SELECT_SIGNAL: Arc<SelectSignal> = Arc::new(SelectSignal::new());
    }

    /// Blocks until either channel has a message or is disconnected, then
    /// receives from it. The first channel is polled first, matching the
    /// priority the pipeline wants (gradients before activations).
    pub fn select2<A, B>(a: &Receiver<A>, b: &Receiver<B>) -> Select2<A, B> {
        let mut signal = None;
        loop {
            match a.try_recv() {
                Ok(v) => return Select2::First(Ok(v)),
                Err(TryRecvError::Disconnected) => return Select2::First(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            match b.try_recv() {
                Ok(v) => return Select2::Second(Ok(v)),
                Err(TryRecvError::Disconnected) => return Select2::Second(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            let signal = signal.get_or_insert_with(|| SELECT_SIGNAL.with(Arc::clone));
            signal.reset();
            a.register_waiter(signal);
            b.register_waiter(signal);
            // Re-check after registering so a send that raced ahead of the
            // registration cannot leave us sleeping on a ready channel.
            if a.is_ready() || b.is_ready() {
                continue;
            }
            signal.wait();
        }
    }

    /// [`select2`] with a deadline: returns `None` once `timeout` elapses
    /// with neither channel ready. Same gradient-first polling order.
    pub fn select2_timeout<A, B>(
        a: &Receiver<A>,
        b: &Receiver<B>,
        timeout: Duration,
    ) -> Option<Select2<A, B>> {
        let deadline = Instant::now() + timeout;
        let mut signal = None;
        loop {
            match a.try_recv() {
                Ok(v) => return Some(Select2::First(Ok(v))),
                Err(TryRecvError::Disconnected) => return Some(Select2::First(Err(RecvError))),
                Err(TryRecvError::Empty) => {}
            }
            match b.try_recv() {
                Ok(v) => return Some(Select2::Second(Ok(v))),
                Err(TryRecvError::Disconnected) => return Some(Select2::Second(Err(RecvError))),
                Err(TryRecvError::Empty) => {}
            }
            if Instant::now() >= deadline {
                return None;
            }
            let signal = signal.get_or_insert_with(|| SELECT_SIGNAL.with(Arc::clone));
            signal.reset();
            a.register_waiter(signal);
            b.register_waiter(signal);
            // Re-check after registering so a send that raced ahead of the
            // registration cannot leave us sleeping on a ready channel.
            if a.is_ready() || b.is_ready() {
                continue;
            }
            signal.wait_until(deadline);
        }
    }
}

/// Two-arm `select!` over `recv` operations, mirroring the call syntax of
/// `crossbeam_channel::select!` for the cases this workspace uses. Each arm
/// binds the `Result<T, RecvError>` of a receive on its channel.
#[macro_export]
macro_rules! select {
    (recv($r1:expr) -> $m1:pat => $b1:block recv($r2:expr) -> $m2:pat => $b2:block $(,)?) => {
        $crate::select!(recv($r1) -> $m1 => $b1, recv($r2) -> $m2 => $b2,)
    };
    (recv($r1:expr) -> $m1:pat => $b1:block recv($r2:expr) -> $m2:pat => $b2:expr $(,)?) => {
        $crate::select!(recv($r1) -> $m1 => $b1, recv($r2) -> $m2 => $b2,)
    };
    (recv($r1:expr) -> $m1:pat => $b1:expr, recv($r2:expr) -> $m2:pat => $b2:expr $(,)?) => {
        match $crate::channel::select2(&$r1, &$r2) {
            $crate::channel::Select2::First($m1) => $b1,
            $crate::channel::Select2::Second($m2) => $b2,
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{
        bounded, select2_timeout, unbounded, RecvError, RecvTimeoutError, Select2, SendError,
        SendTimeoutError, TryRecvError, TrySendError,
    };
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn unbounded_fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            "sent"
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(handle.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn select_takes_whichever_side_is_ready() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();

        tx_b.send(5).unwrap();
        let hit = crate::select! {
            recv(rx_a) -> msg => { let _ = msg; "a" },
            recv(rx_b) -> msg => { assert_eq!(msg, Ok(5)); "b" },
        };
        assert_eq!(hit, "b");

        tx_a.send(9).unwrap();
        let hit = crate::select! {
            recv(rx_a) -> msg => { assert_eq!(msg, Ok(9)); "a" },
            recv(rx_b) -> msg => { let _ = msg; "b" },
        };
        assert_eq!(hit, "a");
    }

    #[test]
    fn select_wakes_on_cross_thread_send() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        let handle = thread::spawn(move || {
            crate::select! {
                recv(rx_a) -> msg => msg.unwrap(),
                recv(rx_b) -> msg => { let _ = msg; unreachable!("b never sends") },
            }
        });
        thread::sleep(Duration::from_millis(20));
        tx_a.send(11).unwrap();
        assert_eq!(handle.join().unwrap(), 11);
    }

    #[test]
    fn recv_timeout_returns_timeout_then_message() {
        let (tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        tx.send(4).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Ok(4));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        let (tx, rx) = unbounded::<u32>();
        let handle = thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        tx.send(8).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(8));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));

        // Unbounded channels are never Full.
        let (tx, rx) = unbounded();
        for i in 0..100 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        assert_eq!(tx.try_send(100), Err(TrySendError::Disconnected(100)));
    }

    #[test]
    fn send_timeout_on_full_bounded_channel() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        );
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.send_timeout(3, Duration::from_millis(20)), Ok(()));
        drop(rx);
        assert_eq!(
            tx.send_timeout(4, Duration::from_millis(20)),
            Err(SendTimeoutError::Disconnected(4))
        );
    }

    #[test]
    fn select2_timeout_times_out_and_sees_messages() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        assert!(select2_timeout(&rx_a, &rx_b, Duration::from_millis(20)).is_none());
        tx_b.send(6).unwrap();
        match select2_timeout(&rx_a, &rx_b, Duration::from_millis(20)) {
            Some(Select2::Second(Ok(6))) => {}
            other => panic!("expected second-arm message, got {:?}", other.is_some()),
        }
        drop(tx_a);
        match select2_timeout(&rx_a, &rx_b, Duration::from_millis(20)) {
            Some(Select2::First(Err(RecvError))) => {}
            other => panic!("expected first-arm disconnect, got {:?}", other.is_some()),
        }
        drop(tx_b);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        drop(tx_b);
        let hit = crate::select! {
            recv(rx_b) -> msg => { assert_eq!(msg, Err(RecvError)); "closed" },
            recv(rx_a) -> msg => { let _ = msg; "open" },
        };
        assert_eq!(hit, "closed");
        drop(tx_a);
    }
}
