//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access, so external crates cannot be
//! fetched. This shim keeps the workspace's bench targets compiling and
//! runnable behind the criterion 0.5 API subset they use: `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! There is no statistical engine: each benchmark runs a short warmup plus a
//! few timed iterations and prints the mean wall time. Because bench targets
//! build with `harness = false`, `cargo test` executes them as plain
//! binaries, so iteration counts are deliberately small.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warmup iteration).
const TIMED_ITERS: u32 = 3;

/// Identifies one benchmark within a group, e.g. `forward/4c16px`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. samples) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs the measured closure; handed to benchmark functions.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: one warmup call, then [`TIMED_ITERS`] timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / TIMED_ITERS;
    }
}

fn report(group: Option<&str>, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.1} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:.1} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {full:<50} {:>12.3?}{rate}", mean);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim always runs a fixed,
    /// small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.mean, self.throughput);
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), b.mean, self.throughput);
    }

    /// Ends the group (reporting happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(None, &name.to_string(), b.mean, None);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (bench targets use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(10)).sample_size(50);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert_eq!(ran, 1 + TIMED_ITERS, "warmup + timed iterations");

        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fwd", "4c16px").id, "fwd/4c16px");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }

    criterion_group!(demo_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_produces_runner() {
        demo_group();
    }
}
