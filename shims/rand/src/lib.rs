//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so external crates cannot be fetched. This shim
//! implements the exact API subset the workspace uses — `RngCore`, `Rng`
//! (`gen`/`gen_range`/`gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}` and `seq::SliceRandom::shuffle` — on top of
//! a deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! The bit streams differ from the real `rand` crate, but every experiment
//! in this repository only relies on *determinism within a build* (shared
//! seeds across methods), never on a specific stream, so results remain
//! reproducible end to end.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw 32/64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic. Stands in for
    /// rand's `StdRng` (the stream differs; determinism is what matters
    /// here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        /// Raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] continues the exact output sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state captured by [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ never reaches
        /// from any seed (it is the generator's sole fixed point).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is invalid"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_round_trip_continues_the_sequence() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = StdRng::from_state(rng.state());
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
