//! Convex-quadratic analysis walkthrough (Section 3.5 of the paper):
//! stability regions under delay, half-life vs condition number, and the
//! effect of the prediction horizon.
//!
//! ```sh
//! cargo run --release --example quadratic_analysis
//! ```

use pipelined_backprop::quadratic::{
    dominant_root_magnitude, halflife_from_rate, min_halflife, simulate_delayed_quadratic, Method,
};

fn main() {
    let m = 0.9;
    println!("== Stability under gradient delay (momentum m = {m}) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "rate ηλ", "GDM D=0", "GDM D=4", "SCD D=4", "LWPwD+SCD D=4"
    );
    for el in [0.001, 0.01, 0.05, 0.1, 0.3] {
        let rows = [
            dominant_root_magnitude(Method::Gdm, m, el, 0),
            dominant_root_magnitude(Method::Gdm, m, el, 4),
            dominant_root_magnitude(Method::scd(m, 4), m, el, 4),
            dominant_root_magnitude(Method::lwpd_scd(m, 4), m, el, 4),
        ];
        print!("{el:<10}");
        for r in rows {
            let marker = if r < 1.0 { "stable" } else { "DIVERGES" };
            print!(" {r:>6.4} {marker:<7}");
        }
        println!();
    }

    println!("\n== Minimum half-life vs condition number (delay D = 1, Figure 5) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "κ", "GDM D=0", "GDM D=1", "SCD", "LWPwD+SCD"
    );
    for kappa in [1e1, 1e2, 1e3] {
        let gdm0 = min_halflife(&|_| Method::Gdm, 0, kappa);
        let gdm = min_halflife(&|_| Method::Gdm, 1, kappa);
        let scd = min_halflife(&|mm| Method::scd(mm, 1), 1, kappa);
        let combo = min_halflife(&|mm| Method::lwpd_scd(mm, 1), 1, kappa);
        println!("{kappa:<10.0} {gdm0:>12.1} {gdm:>12.1} {scd:>12.1} {combo:>12.1}");
    }

    println!("\n== Characteristic roots vs direct simulation (Appendix D check) ==");
    for (label, method) in [
        ("GDM", Method::Gdm),
        ("SCD", Method::scd(m, 4)),
        ("LWPD", Method::lwpd(4)),
        ("LWPwD+SCD", Method::lwpd_scd(m, 4)),
    ] {
        let el = 0.02;
        let theory = dominant_root_magnitude(method, m, el, 4);
        let sim = simulate_delayed_quadratic(method, m, el, 4, 4000);
        println!(
            "{label:<12} theory |r|={theory:.5}  simulated |r|={:.5}  (half-life {:.1} steps)",
            sim.empirical_rate,
            halflife_from_rate(theory)
        );
    }
}
