//! The unified engine interface: build any engine from an [`EngineSpec`],
//! drive it through the shared [`run_training`] loop, and export the
//! per-stage instrumentation (updates, busy time, effective-delay
//! histograms, occupancy) as JSON.

use pipelined_backprop::data::blobs;
use pipelined_backprop::nn::models::mlp;
use pipelined_backprop::optim::{Hyperparams, LrSchedule, Mitigation};
use pipelined_backprop::pipeline::{
    run_training, EngineSpec, JsonSink, MetricsSink, NoHooks, PbConfig, RunConfig,
};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let data = blobs(3, 60, 0.4, 0);
    let (train, val) = data.split(0.25);
    let schedule = || LrSchedule::constant(Hyperparams::new(0.05, 0.9));

    // Every engine is constructed the same way and runs through the same
    // loop; swap the spec to swap the training algorithm.
    let specs = [
        EngineSpec::Sgdm {
            schedule: schedule(),
            batch: 4,
        },
        EngineSpec::Pb(PbConfig::plain(schedule()).with_mitigation(Mitigation::lwpv_scd())),
    ];

    let metrics_path = std::env::temp_dir().join("engine_demo_metrics.json");
    let mut sink = JsonSink::new(&metrics_path);
    for spec in &specs {
        let mut rng = StdRng::seed_from_u64(0);
        let mut engine = spec.build(mlp(&[2, 16, 3], &mut rng));
        let config = RunConfig::new(6, 0);
        let report = run_training(engine.as_mut(), &train, &val, &config, &mut sink);
        let m = engine.metrics();
        println!(
            "{:<14} final acc {:>5.1}%   {:>6.0} samples/s   {} stage updates",
            report.label,
            100.0 * report.final_val_acc(),
            m.samples_per_sec(),
            m.total_updates(),
        );
    }
    sink.write().expect("write metrics json");
    println!("per-stage metrics written to {}", metrics_path.display());

    // Hooks are optional: pass `&mut NoHooks` when you only want the report.
    let mut engine = EngineSpec::Sgdm {
        schedule: schedule(),
        batch: 4,
    }
    .build(mlp(&[2, 16, 3], &mut StdRng::seed_from_u64(0)));
    let report = run_training(
        engine.as_mut(),
        &train,
        &val,
        &RunConfig::new(2, 0).eval_last_only(),
        &mut NoHooks,
    );
    println!(
        "eval_last_only: 2 epochs trained, {} record(s) kept",
        report.records.len()
    );
}
