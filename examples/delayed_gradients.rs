//! The Appendix G.2 toolkit: uniform delays, weight inconsistency, random
//! (ASGD-style) delays, and mitigation — on a small CNN.
//!
//! ```sh
//! cargo run --release --example delayed_gradients
//! ```

use pipelined_backprop::data::{DatasetSpec, SyntheticImages};
use pipelined_backprop::nn::models::simple_cnn;
use pipelined_backprop::optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pipelined_backprop::pipeline::{
    evaluate, AsgdTrainer, DelayDistribution, DelayedConfig, DelayedTrainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = DatasetSpec::cifar_sim(12);
    let gen = SyntheticImages::new(spec, 3);
    let train = gen.generate(600, 0);
    let val = gen.generate(150, 1);
    let batch = 8usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let schedule = LrSchedule::constant(hp);
    let epochs = 12;

    let fresh = || {
        let mut rng = StdRng::seed_from_u64(1);
        simple_cnn(3, 12, 6, spec.num_classes, &mut rng)
    };

    println!("{:<44} {:>8}", "configuration", "val acc");
    println!("{}", "-".repeat(54));

    // Constant delays, consistent vs inconsistent weights (Figure 10).
    for (label, cfg) in [
        (
            "no delay",
            DelayedConfig::consistent(0, batch, schedule.clone()),
        ),
        (
            "delay 12, consistent weights",
            DelayedConfig::consistent(12, batch, schedule.clone()),
        ),
        (
            "delay 12, inconsistent weights",
            DelayedConfig::inconsistent(12, batch, schedule.clone()),
        ),
        (
            "delay 12 + LWPvD+SCD mitigation",
            DelayedConfig::consistent(12, batch, schedule.clone())
                .with_mitigation(Mitigation::lwpv_scd()),
        ),
    ] {
        let mut trainer = DelayedTrainer::new(fresh(), cfg);
        for epoch in 0..epochs {
            trainer.train_epoch(&train, 7, epoch);
        }
        let (_, acc) = evaluate(trainer.network_mut(), &val, 16);
        println!("{label:<44} {:>7.1}%", 100.0 * acc);
    }

    // Random delays (ASGD simulation, Appendix G.2).
    for (label, dist) in [
        (
            "ASGD: uniform delay 0..=24",
            DelayDistribution::Uniform { max: 24 },
        ),
        (
            "ASGD: straggler tail (mean 12)",
            DelayDistribution::Geometric { p: 0.926, max: 96 },
        ),
    ] {
        let mut trainer = AsgdTrainer::new(fresh(), dist, batch, schedule.clone(), 5);
        for epoch in 0..epochs {
            trainer.train_epoch(&train, 7, epoch);
        }
        let (_, acc) = evaluate(trainer.network_mut(), &val, 16);
        println!("{label:<44} {:>7.1}%", 100.0 * acc);
    }
}
