//! Quickstart: train one network four ways — SGDM, plain Pipelined
//! Backpropagation, PB + Spike Compensation, PB + the combined mitigation —
//! and print the resulting validation accuracies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipelined_backprop::data::{DatasetSpec, SyntheticImages};
use pipelined_backprop::nn::models::simple_cnn;
use pipelined_backprop::optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pipelined_backprop::pipeline::{PbConfig, PipelinedTrainer, SgdmTrainer, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small synthetic image-classification task (CIFAR-10 stand-in).
    let spec = DatasetSpec {
        num_classes: 4,
        channels: 3,
        size: 12,
        noise: 0.3,
        max_shift: 1,
        contrast_jitter: 0.2,
    };
    let gen = SyntheticImages::new(spec, 7);
    let train = gen.generate(400, 0);
    let val = gen.generate(120, 1);

    // Reference hyperparameters (He et al. 2016a style) at batch 32,
    // scaled to update size one with Eq. 9 — no tuning for PB.
    let reference = Hyperparams::new(0.1, 0.9);
    let hp1 = scale_hyperparams(reference, 32, 1);
    println!(
        "scaled hyperparameters for update size 1: lr={:.5} m={:.5}\n",
        hp1.lr, hp1.momentum
    );

    let epochs = 6;
    let seed = 42;
    let mut reports: Vec<TrainReport> = Vec::new();

    // --- SGDM baseline at the reference batch size.
    {
        let mut rng = StdRng::seed_from_u64(1);
        let net = simple_cnn(3, 12, 6, spec.num_classes, &mut rng);
        let mut sgdm = SgdmTrainer::new(net, LrSchedule::constant(reference), 32);
        let mut report = TrainReport::new("SGDM (batch 32)");
        for epoch in 0..epochs {
            let train_loss = sgdm.train_epoch(&train, seed, epoch);
            let (val_loss, val_acc) =
                pipelined_backprop::pipeline::evaluate(sgdm.network_mut(), &val, 16);
            report
                .records
                .push(pipelined_backprop::pipeline::EpochRecord {
                    epoch,
                    train_loss,
                    val_loss,
                    val_acc,
                });
        }
        reports.push(report);
    }

    // --- Pipelined backpropagation variants at update size one.
    for mitigation in [Mitigation::None, Mitigation::scd(), Mitigation::lwpv_scd()] {
        let mut rng = StdRng::seed_from_u64(1);
        let net = simple_cnn(3, 12, 6, spec.num_classes, &mut rng);
        println!(
            "{}: {} pipeline stages, max delay {} updates",
            mitigation.label(),
            net.pipeline_stage_count(),
            2 * (net.pipeline_stage_count() - 1)
        );
        let config = PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(mitigation);
        let mut trainer = PipelinedTrainer::new(net, config);
        reports.push(trainer.run(&train, &val, epochs, seed));
    }

    println!("\n{:<22} {:>10} {:>10}", "method", "final acc", "best acc");
    for report in &reports {
        println!(
            "{:<22} {:>9.1}% {:>9.1}%",
            report.label,
            100.0 * report.final_val_acc(),
            100.0 * report.best_val_acc()
        );
    }
}
