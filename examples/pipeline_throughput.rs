//! Systems demonstration: the threaded pipeline runtime versus
//! fill-and-drain, in real wall-clock throughput, next to the analytic
//! utilization bound of Eq. 1.
//!
//! ```sh
//! cargo run --release --example pipeline_throughput
//! ```

use pipelined_backprop::data::spirals;
use pipelined_backprop::nn::models::mlp;
use pipelined_backprop::optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pipelined_backprop::pipeline::{fill_drain_utilization, ThreadedConfig, ThreadedPipeline};
use pipelined_backprop::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 8, 1);
    let schedule = LrSchedule::constant(hp);

    // A deep, skinny MLP: many pipeline stages, the regime where fill and
    // drain hurts most.
    let widths = [2usize, 64, 64, 64, 64, 64, 64, 64, 64, 3];
    let data = spirals(3, 200, 0.05, 1);
    let samples: Vec<(Tensor, usize)> = (0..1200)
        .map(|i| {
            let (x, l) = data.sample(i % data.len());
            (x.clone(), l)
        })
        .collect();

    let stages = widths.len(); // layer stages + loss
    println!("pipeline stages: {stages}");
    println!(
        "analytic fill&drain utilization at N=1 (Eq. 1): {:.1}%\n",
        100.0 * fill_drain_utilization(1, stages)
    );

    let mut rng = StdRng::seed_from_u64(3);
    let net = mlp(&widths, &mut rng);
    let (_, _, fd) =
        ThreadedPipeline::train(net, &samples, &ThreadedConfig::fill_drain(schedule.clone()));

    let mut rng = StdRng::seed_from_u64(3);
    let net = mlp(&widths, &mut rng);
    let (_, _, pb) = ThreadedPipeline::train(net, &samples, &ThreadedConfig::pb(schedule.clone()));

    let mut rng = StdRng::seed_from_u64(3);
    let net = mlp(&widths, &mut rng);
    let cfg = ThreadedConfig::pb(schedule).with_mitigation(Mitigation::lwpv_scd());
    let (_, losses, pbm) = ThreadedPipeline::train(net, &samples, &cfg);

    println!("{:<28} {:>14} {:>12}", "mode", "samples/sec", "speedup");
    println!(
        "{:<28} {:>14.0} {:>11.2}x",
        "fill&drain (N=1)", fd.samples_per_sec, 1.0
    );
    println!(
        "{:<28} {:>14.0} {:>11.2}x",
        "pipelined backprop",
        pb.samples_per_sec,
        pb.samples_per_sec / fd.samples_per_sec
    );
    println!(
        "{:<28} {:>14.0} {:>11.2}x",
        "PB + LWPvD+SCD",
        pbm.samples_per_sec,
        pbm.samples_per_sec / fd.samples_per_sec
    );

    let head: f32 = losses[..100].iter().sum::<f32>() / 100.0;
    let tail: f32 = losses[losses.len() - 100..].iter().sum::<f32>() / 100.0;
    println!("\nPB+mitigation loss: first 100 samples {head:.3} → last 100 samples {tail:.3}");
}
