//! Fine-grained pipelined backpropagation on a real paper architecture:
//! ResNet20 with group normalization (34 pipeline stages, maximum gradient
//! delay 66 updates) on the synthetic CIFAR-10 stand-in, comparing SGDM,
//! plain PB and PB with the combined mitigation — a scaled-down Figure 8.
//!
//! ```sh
//! cargo run --release --example cifar_sim_pipeline
//! ```

use pipelined_backprop::data::{DatasetSpec, SyntheticImages};
use pipelined_backprop::nn::models::{resnet_cifar, ResNetConfig};
use pipelined_backprop::optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pipelined_backprop::pipeline::{PbConfig, PipelinedTrainer, SgdmTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = DatasetSpec::cifar_sim(16);
    let gen = SyntheticImages::new(spec, 11);
    let train = gen.generate(600, 0);
    let val = gen.generate(200, 1);

    let config = ResNetConfig {
        depth: 20,
        base_width: 4, // reduced width; stage structure identical to RN20
        in_channels: 3,
        num_classes: spec.num_classes,
    };
    let reference = Hyperparams::new(0.1, 0.9);
    let hp1 = scale_hyperparams(reference, 32, 1);
    let epochs = 4;
    let seed = 7;

    println!(
        "ResNet20 (width/4), {} pipeline stages",
        config.expected_stage_count()
    );
    println!(
        "update-size-1 hyperparameters (Eq. 9): lr={:.5} m={:.5}\n",
        hp1.lr, hp1.momentum
    );

    // SGDM baseline at batch 32.
    let mut rng = StdRng::seed_from_u64(1);
    let net = resnet_cifar(config, &mut rng);
    let mut sgdm = SgdmTrainer::new(net, LrSchedule::constant(reference), 32);
    let mut sgdm_acc = 0.0;
    for epoch in 0..epochs {
        let loss = sgdm.train_epoch(&train, seed, epoch);
        let (_, acc) = pipelined_backprop::pipeline::evaluate(sgdm.network_mut(), &val, 16);
        sgdm_acc = acc;
        println!(
            "SGDM          epoch {epoch}: loss {loss:.3} val acc {:.1}%",
            100.0 * acc
        );
    }
    println!();

    // PB variants at update size one.
    let mut results = vec![("SGDM (batch 32)".to_string(), sgdm_acc)];
    for mitigation in [Mitigation::None, Mitigation::lwpv_scd()] {
        let mut rng = StdRng::seed_from_u64(1);
        let net = resnet_cifar(config, &mut rng);
        let cfg = PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(mitigation);
        let mut trainer = PipelinedTrainer::new(net, cfg);
        let report = trainer.run(&train, &val, epochs, seed);
        for r in &report.records {
            println!(
                "{:<13} epoch {}: loss {:.3} val acc {:.1}%",
                report.label,
                r.epoch,
                r.train_loss,
                100.0 * r.val_acc
            );
        }
        println!();
        results.push((report.label.clone(), report.final_val_acc()));
    }

    println!("{:<22} {:>10}", "method", "final acc");
    for (label, acc) in results {
        println!("{label:<22} {:>9.1}%", 100.0 * acc);
    }
}
