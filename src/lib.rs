//! # pipelined-backprop
//!
//! A from-scratch Rust reproduction of *"Pipelined Backpropagation at
//! Scale: Training Large Models without Batches"* (Kosson, Chiley,
//! Venigalla, Hestness, Köster — MLSYS 2021, arXiv:2003.11666).
//!
//! The paper replaces batch parallelism with **fine-grained pipeline
//! parallelism**: every layer is its own pipeline stage, each stage
//! processes one sample at a time, and weights update without draining the
//! pipeline (Pipelined Backpropagation). That removes the fill/drain
//! utilization penalty `N/(N+2S)` but introduces **stale gradients** and
//! **inconsistent weights**. The paper's contributions — **Spike
//! Compensation** (SC) and **Linear Weight Prediction** (LWP) — counteract
//! the staleness; combined, they train CIFAR/ImageNet-class networks at
//! update size one with no hyperparameter tuning.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tensor`] | `pbp-tensor` | f32 tensor substrate (matmul, conv2d, pooling) |
//! | [`nn`] | `pbp-nn` | layers, VGG/ResNet architectures, stage partitioning |
//! | [`data`] | `pbp-data` | deterministic synthetic CIFAR/ImageNet stand-ins |
//! | [`optim`] | `pbp-optim` | SGDM, SC, LWP, SpecTrain, hyperparameter scaling |
//! | [`pipeline`] | `pbp-pipeline` | PB emulator, fill-and-drain, threaded runtime |
//! | [`quadratic`] | `pbp-quadratic` | convex-quadratic delay analysis (Figures 4-7) |
//! | [`snapshot`] | `pbp-snapshot` | fault-tolerant training snapshots, bit-identical resume |
//!
//! # Quickstart
//!
//! Train a small network with pipelined backpropagation plus the paper's
//! combined mitigation:
//!
//! ```
//! use pipelined_backprop::data::blobs;
//! use pipelined_backprop::nn::models::mlp;
//! use pipelined_backprop::optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
//! use pipelined_backprop::pipeline::{PbConfig, PipelinedTrainer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = mlp(&[2, 16, 16, 3], &mut rng);
//!
//! // Scale batch-8 reference hyperparameters to update size one (Eq. 9).
//! let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 8, 1);
//! let config = PbConfig::plain(LrSchedule::constant(hp))
//!     .with_mitigation(Mitigation::lwpv_scd());
//!
//! let data = blobs(3, 40, 0.4, 1);
//! let (train, val) = data.split(0.25);
//! let mut trainer = PipelinedTrainer::new(net, config);
//! let report = trainer.run(&train, &val, 5, 42);
//! assert!(report.final_val_acc() > 0.5);
//! ```

pub use pbp_data as data;
pub use pbp_nn as nn;
pub use pbp_optim as optim;
pub use pbp_pipeline as pipeline;
pub use pbp_quadratic as quadratic;
pub use pbp_snapshot as snapshot;
pub use pbp_tensor as tensor;
