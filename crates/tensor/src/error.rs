use std::fmt;

/// Error type for fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length provided.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors participating in an operation have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A tensor had the wrong rank (number of dimensions) for an operation.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An operation parameter was invalid (zero-sized kernel, zero stride, …).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} expects rank {expected}, got rank {actual}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
