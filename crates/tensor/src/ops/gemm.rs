//! Cache-blocked, register-tiled GEMM kernels with deterministic
//! parallelism.
//!
//! Three layouts cover every product the layers need, all over flat
//! row-major slices:
//!
//! * [`gemm_nn`] — `C (+)= A·B`   with `A: m×k`, `B: k×n`;
//! * [`gemm_nt`] — `C (+)= A·Bᵀ`  with `A: m×k`, `B: n×k`;
//! * [`gemm_tn`] — `C (+)= Aᵀ·B`  with `A: k×m`, `B: k×n`.
//!
//! Each dispatches by problem size: small products use simple loops tuned
//! for the tiny per-stage matrices the pipeline trains at batch size one;
//! larger ones take a packed, blocked path (`KC`-blocked panels of `B`
//! packed into an L1-resident tile, `MR`×`NR` register accumulators); the
//! largest are additionally partitioned across the [`crate::pool`] worker
//! pool along whichever output dimension is longer.
//!
//! # Bit-exact accumulation contract
//!
//! Every path — naive reference, simple, tiled, SIMD, parallel at any
//! thread count — computes each output element as a single left-to-right
//! chain of *fused* multiply-adds (`f32::mul_add`) in increasing `k` order,
//! starting from the existing value of `C` (accumulate mode) or from `0.0`
//! (overwrite mode). An IEEE 754 fma rounds exactly once, so the scalar
//! `mul_add` chain and the `vfmadd` chains in the [`super::simd`]
//! micro-kernels compute the same function bit for bit — there is no
//! contracted-vs-uncontracted ambiguity for the compiler to exploit.
//! Blocking and packing only reorder *memory traffic*, never the
//! per-element floating-point association; partitions split the *output*
//! (never the `k` reduction); and SIMD tier selection (see `PBP_SIMD` in
//! [`super::simd`]) picks among bit-identical implementations. Results are
//! therefore bit-identical across every dispatch path, SIMD tier, and
//! thread count. `tests/proptest_kernels.rs` enforces this against the
//! retained naive reference in [`super::reference`].

use super::simd;
use crate::pool;
use std::cell::RefCell;

/// Rows of `C` computed per register tile. With 256-bit lanes, 4 rows ×
/// `NR` = 8 vector accumulators — enough independent FMA chains to cover
/// FMA latency without spilling the register file (8 rows spill).
pub(crate) const MR: usize = 4;
/// Columns of `C` computed per register tile: one AVX-512 lane set, two
/// AVX2 lanes. Full-width tiles dispatch to the explicit micro-kernels in
/// [`super::simd`]; ragged right edges (`nr < NR`) dispatch to the masked
/// variants, falling back to the scalar tile on the scalar tier.
pub(crate) const NR: usize = 16;
/// `k`-panel depth: a packed `KC × NR` tile of `B` stays L1-resident.
const KC: usize = 256;
/// Below this many output-times-reduction elements (`m·k·n`) the simple
/// loops win (no packing overhead).
const TILED_MIN_ELEMS: usize = 16 * 1024;
/// Minimum `m·k·n` elements *per resolved thread* before parallel dispatch
/// pays for its synchronization. Scaling the cutoff with the thread count
/// keeps small products serial on wide machines (BENCH_kernels showed the
/// pool losing to single-threaded tiled up to n=128 GEMM at 8 threads)
/// while still splitting mid-size work on narrow ones.
const PAR_MIN_ELEMS_PER_THREAD: usize = 512 * 1024;
/// Rows (or columns) of `C` per parallel chunk. Shape-derived only, so the
/// partition — and therefore the result — is independent of thread count.
const PAR_CHUNK: usize = 32;
/// `Aᵀ·B` products with a reduction this short (conv input gradients have
/// `k = out_channels`; the deferred weight-grad GEMMs of split-backward
/// schedules have `k = microbatch rows`) skip the register-tiling
/// machinery: a row-wise axpy keeps the whole working set L1-resident and
/// avoids hundreds of short-panel micro-kernel invocations. The sweeps
/// dispatch to [`simd::axpy_row`] per tier.
const TN_AXPY_MAX_K: usize = 24;

thread_local! {
    /// Per-thread reusable packing buffer (`KC × NR` floats when full).
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C (+)= A·B` for row-major `A: m×k`, `B: k×n`, `C: m×n`.
///
/// With `acc == false` the destination is overwritten; with `acc == true`
/// products accumulate onto the existing values (chain-extending, see the
/// module docs for the exact association).
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_dispatch::<false, false>(a, b, c, m, k, n, acc);
}

/// `C (+)= A·Bᵀ` for row-major `A: m×k`, `B: n×k`, `C: m×n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    gemm_dispatch::<false, true>(a, b, c, m, k, n, acc);
}

/// `C (+)= Aᵀ·B` for row-major `A: k×m`, `B: k×n`, `C: m×n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_dispatch::<true, false>(a, b, c, m, k, n, acc);
}

/// Raw pointer to `C` that may cross into pool workers. Chunks write
/// disjoint regions, so sharing the base pointer is sound.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
// SAFETY: see `CPtr` — each chunk dereferences only its own disjoint region
// of the output, and `parallel_for` joins all chunks before the borrow ends.
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

fn gemm_dispatch<const AT: bool, const BT: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            c.fill(0.0);
        }
        return;
    }
    let elems = m * k * n;
    if elems < TILED_MIN_ELEMS || n < NR / 2 || m < 2 {
        if !acc {
            c.fill(0.0);
        }
        simple::<AT, BT>(a, b, c, m, k, n);
        return;
    }
    // Partition the longer output dimension into fixed-size chunks. The
    // chunk grid depends only on (m, n) — never on the thread count — so
    // parallel and serial execution produce identical bytes.
    let by_rows = m >= n;
    let extent = if by_rows { m } else { n };
    let chunks = extent.div_ceil(PAR_CHUNK);
    let cp = CPtr(c.as_mut_ptr());
    let run_chunk = |ci: usize| {
        let lo = ci * PAR_CHUNK;
        let hi = extent.min(lo + PAR_CHUNK);
        let (rows, cols) = if by_rows {
            ((lo, hi), (0, n))
        } else {
            ((0, m), (lo, hi))
        };
        if AT && !BT && k <= TN_AXPY_MAX_K {
            tn_axpy_region(a, b, cp, m, k, n, rows, cols, acc);
        } else {
            tiled_region::<AT, BT>(a, b, cp, m, k, n, rows, cols, acc);
        }
    };
    let threads = pool::max_threads();
    if threads > 1 && chunks > 1 && elems >= PAR_MIN_ELEMS_PER_THREAD.saturating_mul(threads) {
        pool::parallel_for(chunks, &run_chunk);
    } else {
        for ci in 0..chunks {
            run_chunk(ci);
        }
    }
}

/// Short-reduction `Aᵀ·B` kernel over the output region `rows × cols`:
/// each `C` row is swept `k` times by fma axpys while it (and all `k` rows
/// of `B`) stay L1-resident. Sweeps dispatch to the [`simd::axpy_row`]
/// micro-kernels on the active tier (scalar fallback below). Per element
/// the fused multiply-add chain still runs in increasing `k` order from
/// `+0.0` (overwrite) or the existing value (accumulate), so results match
/// the tiled path — and every SIMD tier — bit for bit.
#[allow(clippy::too_many_arguments)]
fn tn_axpy_region(
    a: &[f32],
    b: &[f32],
    c: CPtr,
    m: usize,
    k: usize,
    n: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    acc: bool,
) {
    let (row0, row1) = rows;
    let (col0, col1) = cols;
    let width = col1 - col0;
    for i in row0..row1 {
        // SAFETY: rows/cols lie inside this chunk's output region; regions
        // are disjoint across pool chunks and joined before the borrow ends.
        let crow = unsafe { std::slice::from_raw_parts_mut(c.0.add(i * n + col0), width) };
        let mut kk = 0;
        if !acc {
            // The `kk == 0` sweep starts every chain at literal `+0.0`,
            // replacing a separate zero-fill pass over `C`.
            let av = a[i];
            let brow = &b[col0..col0 + width];
            if !simd::axpy_row(av, brow, crow, true) {
                for (cj, &bv) in crow.iter_mut().zip(brow) {
                    *cj = av.mul_add(bv, 0.0);
                }
            }
            kk = 1;
        }
        while kk < k {
            let av = a[kk * m + i];
            let brow = &b[kk * n + col0..][..width];
            if !simd::axpy_row(av, brow, crow, false) {
                for (cj, &bv) in crow.iter_mut().zip(brow) {
                    *cj = av.mul_add(bv, *cj);
                }
            }
            kk += 1;
        }
    }
}

/// Blocked kernel over the output region `rows × cols` of `C`.
///
/// `B` panels are packed per (`j`-tile, `k`-panel) into an L1-resident
/// `kc × NR` buffer; `A` is read in place (its accesses are contiguous in
/// the non-transposed case and 4-wide contiguous in the transposed case).
///
/// In overwrite mode (`acc == false`) the first `k`-panel starts its
/// register tile from literal zeros instead of reading freshly-zeroed `C`
/// memory — same bits (the chain starts at `+0.0` either way), but the
/// pre-fill and one full read of `C` disappear.
#[allow(clippy::too_many_arguments)]
fn tiled_region<const AT: bool, const BT: bool>(
    a: &[f32],
    b: &[f32],
    c: CPtr,
    m: usize,
    k: usize,
    n: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    acc: bool,
) {
    let lda = if AT { m } else { k };
    let ldb = if BT { k } else { n };
    let (row0, row1) = rows;
    let (col0, col1) = cols;
    PACK_BUF.with(|buf| {
        let bp = &mut *buf.borrow_mut();
        let mut j0 = col0;
        while j0 < col1 {
            let nr = NR.min(col1 - j0);
            let mut p0 = 0;
            while p0 < k {
                let kc = KC.min(k - p0);
                let load_c = acc || p0 > 0;
                // Full-width tiles of a non-transposed `B` read their panel
                // rows in place (they are already contiguous `NR`-slices at
                // stride `ldb`); packing is pure overhead there. Transposed
                // `B` and ragged right-edge tiles still pack.
                let (panel, bstride): (&[f32], usize) = if !BT && nr == NR {
                    (&b[p0 * ldb + j0..], ldb)
                } else {
                    pack_b::<BT>(b, ldb, p0, kc, j0, nr, bp);
                    (&bp[..], NR)
                };
                let mut i0 = row0;
                while i0 < row1 {
                    let mr = MR.min(row1 - i0);
                    match mr {
                        4 => {
                            micro::<AT, 4>(a, lda, i0, p0, kc, panel, bstride, c, n, j0, nr, load_c)
                        }
                        3 => {
                            micro::<AT, 3>(a, lda, i0, p0, kc, panel, bstride, c, n, j0, nr, load_c)
                        }
                        2 => {
                            micro::<AT, 2>(a, lda, i0, p0, kc, panel, bstride, c, n, j0, nr, load_c)
                        }
                        _ => {
                            micro::<AT, 1>(a, lda, i0, p0, kc, panel, bstride, c, n, j0, nr, load_c)
                        }
                    }
                    i0 += mr;
                }
                p0 += kc;
            }
            j0 += nr;
        }
    });
}

/// Packs the `kc × nr` panel of `B` starting at (`p0`, `j0`) into `bp` as a
/// dense `kc × NR` tile, zero-padding columns past `nr`. Pure data movement:
/// values are copied bit-exactly.
fn pack_b<const BT: bool>(
    b: &[f32],
    ldb: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    bp: &mut Vec<f32>,
) {
    bp.clear();
    bp.resize(kc * NR, 0.0);
    if BT {
        // `B` is n×k; column `j` of the logical Bᵀ is row `j0 + j` of `B`.
        // Iterating packed rows with `chunks_exact_mut` keeps the strided
        // writes bounds-check-free.
        for j in 0..nr {
            let col = &b[(j0 + j) * ldb + p0..][..kc];
            for (dst, &v) in bp.chunks_exact_mut(NR).zip(col) {
                dst[j] = v;
            }
        }
    } else {
        for (dst, src) in bp.chunks_exact_mut(NR).zip(b[p0 * ldb..].chunks_exact(ldb)) {
            dst[..nr].copy_from_slice(&src[j0..j0 + nr]);
        }
    }
}

/// `MRL × NR` register tile: loads the current `C` values (or starts from
/// zeros when `load_c` is false — the first panel in overwrite mode),
/// extends each element's fused multiply-add chain across the `kc` panel
/// in increasing `k` order, and stores the tile back. Loading-then-storing
/// (rather than keeping per-panel partial sums) is what preserves the
/// bit-exact association across `KC` blocking.
///
/// Full-width tiles (`nr == NR`) dispatch to the explicit SIMD
/// micro-kernels in [`super::simd`] when a tier is active; ragged
/// right-edge tiles (`nr < NR`) dispatch to the masked variants, which
/// read the zero-padded packed `B` panel at full width and mask only the
/// `C` loads/stores. Both compute the identical fma chains with `vfmadd`,
/// so which path runs is unobservable in the output bits; the scalar loop
/// below is the fallback on the scalar tier.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro<const AT: bool, const MRL: usize>(
    a: &[f32],
    lda: usize,
    i0: usize,
    p0: usize,
    kc: usize,
    bp: &[f32],
    bstride: usize,
    c: CPtr,
    ldc: usize,
    j0: usize,
    nr: usize,
    load_c: bool,
) {
    if nr == NR {
        // SAFETY: the caller's region contract covers rows `i0..i0 + MRL`
        // and columns `j0..j0 + NR` of `C`; `bp` holds `kc` panel rows of
        // `NR` floats at stride `bstride`, and `A` indices stay in bounds
        // exactly as in the scalar loop below.
        let dispatched = unsafe {
            simd::tile_full_width::<AT, MRL>(a, lda, i0, p0, kc, bp, bstride, c.0, ldc, j0, load_c)
        };
        if dispatched {
            return;
        }
    } else {
        // SAFETY: same region contract as above; ragged tiles always come
        // from `tiled_region`'s packing branch, so `bp` is a zero-padded
        // `kc × NR` panel the masked kernels may read at full width.
        let dispatched = unsafe {
            simd::tile_ragged::<AT, MRL>(a, lda, i0, p0, kc, bp, bstride, c.0, ldc, j0, nr, load_c)
        };
        if dispatched {
            return;
        }
    }
    micro_scalar::<AT, MRL>(a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, nr, load_c);
}

/// The scalar register tile behind [`micro`]. Kept out-of-line (`micro`
/// itself is inlined into a very large region loop, where LLVM's SLP
/// vectorizer gives up on the 16 independent fma chains); as a small
/// standalone function the `j` loop vectorizes to packed `vfmadd`.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn micro_scalar<const AT: bool, const MRL: usize>(
    a: &[f32],
    lda: usize,
    i0: usize,
    p0: usize,
    kc: usize,
    bp: &[f32],
    bstride: usize,
    c: CPtr,
    ldc: usize,
    j0: usize,
    nr: usize,
    load_c: bool,
) {
    let mut acc = [[0.0f32; NR]; MRL];
    if load_c {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            // SAFETY: rows `i0..i0 + MRL` and columns `j0..j0 + nr` lie
            // inside this call's output region; regions are disjoint across
            // pool chunks.
            let crow = unsafe {
                std::slice::from_raw_parts((c.0 as *const f32).add((i0 + r) * ldc + j0), nr)
            };
            acc_row[..nr].copy_from_slice(crow);
        }
    }
    if AT {
        // `A` is k×m: one contiguous `MRL`-wide slice of row `p0 + kk`
        // feeds all accumulator rows.
        let mut boff = 0;
        for kk in 0..kc {
            let brow = &bp[boff..][..NR];
            let arow = &a[(p0 + kk) * lda + i0..][..MRL];
            for (acc_row, &av) in acc.iter_mut().zip(arow) {
                for j in 0..NR {
                    acc_row[j] = av.mul_add(brow[j], acc_row[j]);
                }
            }
            boff += bstride;
        }
    } else {
        // Hoist each row's contiguous `kc` slice of `A` out of the k loop
        // so the inner loads are bounds-check-free.
        let arows: [&[f32]; MRL] = std::array::from_fn(|r| &a[(i0 + r) * lda + p0..][..kc]);
        let mut boff = 0;
        for kk in 0..kc {
            let brow = &bp[boff..][..NR];
            for (acc_row, arow) in acc.iter_mut().zip(&arows) {
                let av = arow[kk];
                for j in 0..NR {
                    acc_row[j] = av.mul_add(brow[j], acc_row[j]);
                }
            }
            boff += bstride;
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        // SAFETY: same region as the load above.
        let crow = unsafe { std::slice::from_raw_parts_mut(c.0.add((i0 + r) * ldc + j0), nr) };
        crow.copy_from_slice(&acc_row[..nr]);
    }
}

/// Simple accumulating kernels for small products. Loop orders are chosen
/// per layout so the innermost loop either vectorizes across `j` or runs
/// several independent `k` chains, while each element still accumulates in
/// increasing `k` order. The `nn` and `tn` row sweeps dispatch to the
/// [`simd::axpy_row`] micro-kernels on the active tier, so small
/// (batch-1-sized) products hit AVX2/AVX-512 too; the `nt` path keeps its
/// scalar dot products — vectorizing across `k` would break the
/// single-chain accumulation contract.
fn simple<const AT: bool, const BT: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if BT {
        // A·Bᵀ: per output element a dot of two contiguous rows; four
        // independent chains at a time for instruction-level parallelism.
        for i in 0..m {
            let arow = &a[i * k..][..k];
            let crow = &mut c[i * n..][..n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &b[j * k..][..k];
                let b1 = &b[(j + 1) * k..][..k];
                let b2 = &b[(j + 2) * k..][..k];
                let b3 = &b[(j + 3) * k..][..k];
                let (mut s0, mut s1, mut s2, mut s3) =
                    (crow[j], crow[j + 1], crow[j + 2], crow[j + 3]);
                for (kk, &av) in arow.iter().enumerate() {
                    s0 = av.mul_add(b0[kk], s0);
                    s1 = av.mul_add(b1[kk], s1);
                    s2 = av.mul_add(b2[kk], s2);
                    s3 = av.mul_add(b3[kk], s3);
                }
                crow[j] = s0;
                crow[j + 1] = s1;
                crow[j + 2] = s2;
                crow[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let brow = &b[j * k..][..k];
                let mut s = crow[j];
                for (kk, &av) in arow.iter().enumerate() {
                    s = av.mul_add(brow[kk], s);
                }
                crow[j] = s;
                j += 1;
            }
        }
    } else if AT {
        // Aᵀ·B: axpy with `k` outermost, so each element's chain still runs
        // in increasing `k`; each row sweep dispatches to the
        // [`simd::axpy_row`] micro-kernels (scalar fallback vectorizes
        // across `j`).
        for kk in 0..k {
            let arow = &a[kk * m..][..m];
            let brow = &b[kk * n..][..n];
            for i in 0..m {
                let av = arow[i];
                let crow = &mut c[i * n..][..n];
                if !simd::axpy_row(av, brow, crow, false) {
                    for j in 0..n {
                        crow[j] = av.mul_add(brow[j], crow[j]);
                    }
                }
            }
        }
    } else {
        // A·B: the classic i-k-j axpy order; each row sweep dispatches to
        // the [`simd::axpy_row`] micro-kernels (scalar fallback vectorizes
        // across `j`). This is the batch-1 serving hot path: conv layers at
        // batch one lower to products below `TILED_MIN_ELEMS` that land
        // here instead of the tiled kernels.
        for i in 0..m {
            let arow = &a[i * k..][..k];
            let crow = &mut c[i * n..][..n];
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &b[kk * n..][..n];
                if !simd::axpy_row(av, brow, crow, false) {
                    for j in 0..n {
                        crow[j] = av.mul_add(brow[j], crow[j]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], context: &str) {
        assert_eq!(got.len(), want.len(), "{context}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{context}: element {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn nn_matches_reference_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (40, 64, 48),
            (64, 64, 64),
        ] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm_nn(&a, &b, &mut c, m, k, n, false);
            reference::matmul_ref(&a, &b, &mut want, m, k, n);
            assert_bits_eq(&c, &want, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn nt_and_tn_match_reference() {
        let (m, k, n) = (21, 33, 29);
        let a = rand_vec(m * k, 3);
        let bt = rand_vec(n * k, 4);
        let mut c = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut c, m, k, n, false);
        reference::matmul_nt_ref(&a, &bt, &mut want, m, k, n);
        assert_bits_eq(&c, &want, "nt");

        let at = rand_vec(k * m, 5);
        let b = rand_vec(k * n, 6);
        gemm_tn(&at, &b, &mut c, m, k, n, false);
        reference::matmul_tn_ref(&at, &b, &mut want, m, k, n);
        assert_bits_eq(&c, &want, "tn");
    }

    #[test]
    fn accumulate_extends_the_chain() {
        let (m, k, n) = (6, 11, 10);
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let init = rand_vec(m * n, 9);
        let mut c = init.clone();
        gemm_nn(&a, &b, &mut c, m, k, n, true);
        let mut want = init;
        reference::matmul_acc_ref(&a, &b, &mut want, m, k, n);
        assert_bits_eq(&c, &want, "nn acc");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Large enough that 8 threads clear the per-thread cutoff
        // (m·k·n ≥ 8 × PAR_MIN_ELEMS_PER_THREAD).
        let (m, k, n) = (260, 100, 260);
        let a = rand_vec(m * k, 10);
        let b = rand_vec(k * n, 11);
        let mut serial = vec![0.0; m * n];
        pool::set_max_threads(1);
        gemm_nn(&a, &b, &mut serial, m, k, n, false);
        for threads in [2, 4, 8] {
            pool::set_max_threads(threads);
            let mut par = vec![0.0; m * n];
            gemm_nn(&a, &b, &mut par, m, k, n, false);
            assert_bits_eq(&par, &serial, &format!("threads={threads}"));
        }
        pool::set_max_threads(1);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![7.0f32; 0];
        gemm_nn(&[], &[], &mut c, 0, 3, 0, false);
        let mut c = vec![5.0f32; 6];
        gemm_nn(&[], &[], &mut c, 2, 0, 3, false);
        assert!(c.iter().all(|&x| x == 0.0), "k=0 overwrite zeroes C");
        let mut c = vec![5.0f32; 6];
        gemm_nn(&[], &[], &mut c, 2, 0, 3, true);
        assert!(c.iter().all(|&x| x == 5.0), "k=0 accumulate keeps C");
    }
}
