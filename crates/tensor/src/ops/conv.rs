//! 2-D convolution via im2col/col2im.
//!
//! Layout is NCHW. The forward pass lowers each image to a column matrix and
//! multiplies by the flattened kernel bank, mirroring how cuDNN implements
//! the convolutions used in the paper's GProp framework. The backward pass
//! produces both the input gradient (col2im of `Wᵀ·dY`) and the weight
//! gradient (`dY·colsᵀ`).

use super::gemm::{gemm_nn, gemm_nt, gemm_tn};
use crate::{Result, Tensor, TensorError};
use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch for the `Wᵀ·dY` column gradient in
    /// [`conv2d_backward`] — overwritten by the GEMM each call, so reuse
    /// across calls (and across pipeline stages on the same thread) is free.
    static DCOLS_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a zero-sized kernel,
    /// zero stride or zero channel counts.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if kernel == 0 || stride == 0 || in_channels == 0 || out_channels == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "conv2d spec must be positive: in={in_channels} out={out_channels} \
                 k={kernel} stride={stride}"
            )));
        }
        Ok(Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        })
    }

    /// Output spatial size for an input of side `h`.
    pub fn out_size(&self, h: usize) -> usize {
        (h + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1
    }

    /// Shape of the weight tensor: `[out_channels, in_channels, k, k]`.
    pub fn weight_shape(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels,
            self.kernel,
            self.kernel,
        ]
    }

    /// Fan-in of the convolution (`in_channels * k * k`), used by He init.
    pub fn fan_in(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// The output indices `o` with `0 <= o·stride + kofs − padding < limit`,
/// as a half-open range clamped to `0..out_extent`. Hoisting this out of the
/// per-pixel loops lets [`im2col`]/[`col2im`] run bounds-check-free inner
/// loops (contiguous `copy_from_slice`/add runs when `stride == 1`).
fn valid_out_range(
    limit: usize,
    kofs: usize,
    stride: usize,
    padding: usize,
    out_extent: usize,
) -> (usize, usize) {
    let lo = padding.saturating_sub(kofs).div_ceil(stride);
    let hi = if limit + padding > kofs {
        out_extent.min((limit + padding - kofs - 1) / stride + 1)
    } else {
        0
    };
    (lo.min(hi), hi)
}

/// Lowers one image `[C, H, W]` (flat slice) to columns
/// `[C*k*k, OH*OW]` (flat, row-major), honoring stride and zero padding.
pub fn im2col(input: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, cols: &mut Vec<f32>) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let rows = c * spec.kernel * spec.kernel;
    cols.clear();
    cols.resize(rows * oh * ow, 0.0);
    im2col_into(input, c, h, w, spec, cols, oh * ow, 0);
}

/// [`im2col`] into a caller-provided destination with an arbitrary row
/// stride and column offset: logical row `r` of this sample's column matrix
/// lands at `out[r * row_stride + col_offset ..][..OH*OW]`.
///
/// This is the batched-lowering workhorse: a batch's per-sample column
/// matrices are written side by side into one wide `[C*k*k, N*OH*OW]`
/// buffer (`row_stride = N*OH*OW`, `col_offset = ni*OH*OW`), which a single
/// [`super::gemm_nn`] then multiplies. The values written are bit-identical
/// to [`im2col`] — only the destination addressing differs — and the
/// stride-1 contiguous-row fast path is preserved.
///
/// Positions a padded window never reads (the zero entries of the column
/// matrix) are *not* written; the caller must hand in a zeroed region.
///
/// # Panics
///
/// Panics if `out` is too short for the addressed region.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    out: &mut [f32],
    row_stride: usize,
    col_offset: usize,
) {
    let k = spec.kernel;
    let s = spec.stride;
    let p = spec.padding;
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    for ci in 0..c {
        let chan = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            let (oi_lo, oi_hi) = valid_out_range(h, ki, s, p, oh);
            for kj in 0..k {
                let (oj_lo, oj_hi) = valid_out_range(w, kj, s, p, ow);
                let row = (ci * k + ki) * k + kj;
                let out_row = &mut out[row * row_stride + col_offset..][..oh * ow];
                for oi in oi_lo..oi_hi {
                    let ii = oi * s + ki - p;
                    let irow = &chan[ii * w..(ii + 1) * w];
                    let dst = &mut out_row[oi * ow..][..ow];
                    if s == 1 {
                        let j0 = oj_lo + kj - p;
                        dst[oj_lo..oj_hi].copy_from_slice(&irow[j0..j0 + (oj_hi - oj_lo)]);
                    } else {
                        for oj in oj_lo..oj_hi {
                            dst[oj] = irow[oj * s + kj - p];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters columns `[C*k*k, OH*OW]` back to an image `[C, H, W]`,
/// accumulating overlapping contributions (the adjoint of [`im2col`]).
///
/// Accumulation order is `(ci, ki, kj, oi, oj)` lexicographic — part of the
/// bit-exactness contract with `reference::conv2d_backward_ref`.
pub fn col2im(cols: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    let k = spec.kernel;
    let s = spec.stride;
    let p = spec.padding;
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    out.iter_mut().for_each(|x| *x = 0.0);
    for ci in 0..c {
        let chan = &mut out[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            let (oi_lo, oi_hi) = valid_out_range(h, ki, s, p, oh);
            for kj in 0..k {
                let (oj_lo, oj_hi) = valid_out_range(w, kj, s, p, ow);
                let row = (ci * k + ki) * k + kj;
                let col_row = &cols[row * oh * ow..(row + 1) * oh * ow];
                for oi in oi_lo..oi_hi {
                    let ii = oi * s + ki - p;
                    let dst = &mut chan[ii * w..(ii + 1) * w];
                    let src = &col_row[oi * ow..][..ow];
                    if s == 1 {
                        let j0 = oj_lo + kj - p;
                        for (d, v) in dst[j0..j0 + (oj_hi - oj_lo)]
                            .iter_mut()
                            .zip(&src[oj_lo..oj_hi])
                        {
                            *d += v;
                        }
                    } else {
                        for oj in oj_lo..oj_hi {
                            dst[oj * s + kj - p] += src[oj];
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, C, H, W]`, `weight` is `[OC, C, k, k]`; the result is
/// `[N, OC, OH, OW]`. Also returns the per-sample im2col buffers so the
/// caller can reuse them in [`conv2d_backward`] (C-INTERMEDIATE).
///
/// # Errors
///
/// Returns a shape error if `input`/`weight` disagree with `spec`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Vec<Vec<f32>>)> {
    conv2d_reusing(input, weight, spec, &mut Vec::new())
}

/// [`conv2d`] that recycles im2col buffers.
///
/// Buffers are popped from `spare` (resized as needed) instead of freshly
/// allocated, and layers return them to their spare list once
/// [`conv2d_backward`] has consumed the stash — so a steady-state pipeline
/// does no per-sample column allocations.
///
/// # Errors
///
/// Returns a shape error if `input`/`weight` disagree with `spec`.
pub fn conv2d_reusing(
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    spare: &mut Vec<Vec<f32>>,
) -> Result<(Tensor, Vec<Vec<f32>>)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
            op: "conv2d",
        });
    }
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    if c != spec.in_channels || weight.shape() != spec.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: weight.shape().to_vec(),
            op: "conv2d",
        });
    }
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let rows = spec.fan_in();
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    let mut all_cols = Vec::with_capacity(n);
    let wslice = weight.as_slice();
    for ni in 0..n {
        let img = &input.as_slice()[ni * c * h * w..(ni + 1) * c * h * w];
        let mut cols = spare.pop().unwrap_or_default();
        im2col(img, c, h, w, spec, &mut cols);
        let dst = &mut out.as_mut_slice()
            [ni * spec.out_channels * oh * ow..(ni + 1) * spec.out_channels * oh * ow];
        gemm_nn(wslice, &cols, dst, spec.out_channels, rows, oh * ow, false);
        all_cols.push(cols);
    }
    Ok((out, all_cols))
}

/// Recycled scratch for [`conv2d_batched_reusing`]: the strip-mined im2col
/// buffer (`[C*k*k, G*OH*OW]` for a sample group of `G`) and the strip GEMM
/// output (`[OC, G*OH*OW]`).
///
/// Holding one of these per conv layer turns steady-state batched
/// evaluation into a zero-allocation path: the buffers grow to the largest
/// strip seen and are reused verbatim afterwards.
#[derive(Debug, Default)]
pub struct ConvBatchScratch {
    /// Column strip for the current sample group, samples side by side.
    cols: Vec<f32>,
    /// Strip GEMM output, scattered back to NCHW after the product.
    out: Vec<f32>,
}

/// Column-strip budget for the batched lowering, in floats (768 KiB).
///
/// One monolithic `[C*k*k, N*OH*OW]` matrix is the *logical* lowering, but
/// executing it in one piece is memory-bound at real batch sizes: the
/// column matrix of e.g. a 16-channel 3×3 conv over 64 12×12 images is
/// 5.3 MB, so the im2col scatter writes and the GEMM's B-panel reads all
/// miss L2 (measured ~28 GF/s monolithic vs ~80 GF/s on an L2-resident
/// strip of the same product). Strip-mining the batch into sample groups
/// whose column strip fits this budget keeps every pass cache-resident
/// while leaving each output element's fma chain untouched — the group
/// boundaries partition GEMM *output columns*, never the `k` reduction, so
/// the result stays bit-identical to both the monolithic product and the
/// per-sample loop at every group size.
const COLS_STRIP_FLOATS: usize = 192 * 1024;

/// Batched forward 2-D convolution: one wide GEMM for the whole batch,
/// strip-mined into L2-resident sample groups.
///
/// Semantically identical to [`conv2d`] — and *bit*-identical, at every
/// batch size: the per-sample column matrices are laid side by side into
/// one wide `[C*k*k, N*OH*OW]` matrix, so each output element's fused
/// multiply-add chain over the reduction dimension is exactly the chain
/// the per-sample GEMM would have run (the kernels never split the `k`
/// reduction, whatever the output width — see [`super::gemm`]). What
/// changes is throughput: wide `OC × (C·k²) × (G·OH·OW)` strips tile and
/// vectorize far better than `N` narrow per-sample products, and the
/// strip-mining (see [`COLS_STRIP_FLOATS`]) keeps the column matrix
/// cache-resident where the monolithic layout would thrash.
///
/// Does not return column buffers — this is the inference path; use
/// [`conv2d_reusing`] when a backward pass will need the stash.
///
/// # Errors
///
/// Returns a shape error if `input`/`weight` disagree with `spec`.
pub fn conv2d_batched(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    conv2d_batched_reusing(input, weight, spec, &mut ConvBatchScratch::default())
}

/// [`conv2d_batched`] with caller-owned scratch buffers (see
/// [`ConvBatchScratch`]).
///
/// # Errors
///
/// Returns a shape error if `input`/`weight` disagree with `spec`.
pub fn conv2d_batched_reusing(
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    scratch: &mut ConvBatchScratch,
) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
            op: "conv2d_batched",
        });
    }
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    if c != spec.in_channels || weight.shape() != spec.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: weight.shape().to_vec(),
            op: "conv2d_batched",
        });
    }
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let rows = spec.fan_in();
    let oc = spec.out_channels;
    let p = oh * ow;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    if n == 0 || p == 0 {
        return Ok(out);
    }
    // Sample-group width: as many samples as keep the column strip inside
    // the L2 budget. Small feature maps get wide groups (amortizing packing
    // and de-ragging the GEMM edge); large ones degrade gracefully toward
    // the per-sample strip.
    let group = (COLS_STRIP_FLOATS / (rows * p)).clamp(1, n);
    let wslice = weight.as_slice();
    let os = out.as_mut_slice();
    let mut n0 = 0;
    while n0 < n {
        let g = group.min(n - n0);
        let gp = g * p;
        // Zero-fill then overwrite the valid windows: the zeros a padded
        // window contributes are part of the column matrix, and
        // `im2col_into` only writes the in-bounds positions.
        let cols = &mut scratch.cols;
        cols.clear();
        cols.resize(rows * gp, 0.0);
        for gi in 0..g {
            let img = &input.as_slice()[(n0 + gi) * c * h * w..][..c * h * w];
            im2col_into(img, c, h, w, spec, cols, gp, gi * p);
        }
        if g == 1 {
            // Single-sample strip: the wide layout *is* the `[OC, OH*OW]`
            // output — multiply straight into the tensor, no scatter.
            gemm_nn(
                wslice,
                cols,
                &mut os[n0 * oc * p..][..oc * p],
                oc,
                rows,
                p,
                false,
            );
        } else {
            let wide = &mut scratch.out;
            // Contents are fully overwritten by the GEMM; only the length
            // matters here.
            wide.resize(oc * gp, 0.0);
            gemm_nn(wslice, cols, wide, oc, rows, gp, false);
            // Scatter `[OC, G*P]` → `[G, OC, P]`: contiguous P-long runs,
            // pure data movement.
            for gi in 0..g {
                for ci in 0..oc {
                    os[((n0 + gi) * oc + ci) * p..][..p]
                        .copy_from_slice(&wide[ci * gp + gi * p..][..p]);
                }
            }
        }
        n0 += g;
    }
    Ok(out)
}

/// Backward 2-D convolution.
///
/// Given `grad_out` `[N, OC, OH, OW]`, the forward weights and the im2col
/// buffers produced by [`conv2d`], returns `(grad_input, grad_weight)`.
///
/// The two halves are independent and exposed separately as
/// [`conv2d_backward_input`] / [`conv2d_backward_weight`] for schedules
/// that split backward into grad-input and deferred grad-weight passes
/// (2BP); this fused entry point composes them and is bit-identical to
/// running the halves at different times.
///
/// # Errors
///
/// Returns a shape error if the gradient shape disagrees with `spec`.
pub fn conv2d_backward(
    grad_out: &Tensor,
    weight: &Tensor,
    cols: &[Vec<f32>],
    input_hw: (usize, usize),
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor)> {
    let grad_in = conv2d_backward_input(grad_out, weight, input_hw, spec)?;
    let grad_w = conv2d_backward_weight(grad_out, cols, spec)?;
    Ok((grad_in, grad_w))
}

/// Input-gradient half of [`conv2d_backward`]: `col2im(Wᵀ·dY)` per sample.
///
/// Reads only the forward weights and the output gradient — no stashed
/// activations — so it can run on the critical path while the weight half
/// waits for the update boundary. The `k = out_channels` transpose-A GEMM
/// is the short-reduction axpy path of [`super::gemm`].
///
/// # Errors
///
/// Returns a shape error if the gradient shape disagrees with `spec`.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    if grad_out.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: grad_out.rank(),
            op: "conv2d_backward",
        });
    }
    let (h, w) = input_hw;
    let n = grad_out.shape()[0];
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    if grad_out.shape() != [n, spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, spec.out_channels, oh, ow],
            op: "conv2d_backward",
        });
    }
    let rows = spec.fan_in();
    let c = spec.in_channels;
    let p = oh * ow;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let wslice = weight.as_slice();
    DCOLS_BUF.with(|buf| {
        let dcols = &mut *buf.borrow_mut();
        dcols.resize(rows * p, 0.0);
        for ni in 0..n {
            let dy =
                &grad_out.as_slice()[ni * spec.out_channels * p..(ni + 1) * spec.out_channels * p];
            // dcols = Wᵀ · dY (transpose-A GEMM, no explicit Wᵀ), then col2im.
            gemm_tn(
                wslice,
                dy,
                &mut dcols[..rows * p],
                rows,
                spec.out_channels,
                p,
                false,
            );
            let gi = &mut grad_in.as_mut_slice()[ni * c * h * w..(ni + 1) * c * h * w];
            col2im(&dcols[..rows * p], c, h, w, spec, gi);
        }
    });
    Ok(grad_in)
}

/// Weight-gradient half of [`conv2d_backward`]: `Σᵢ dYᵢ · colsᵢᵀ`.
///
/// Reads only the output gradient and the stashed im2col buffers — not the
/// (possibly since-updated) weights — which is what makes deferring it to
/// the update boundary exact rather than an approximation.
///
/// # Errors
///
/// Returns a shape error if `grad_out` disagrees with `spec` or the column
/// buffers.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    cols: &[Vec<f32>],
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    if grad_out.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: grad_out.rank(),
            op: "conv2d_backward",
        });
    }
    let n = grad_out.shape()[0];
    let p = grad_out.shape()[2] * grad_out.shape()[3];
    let rows = spec.fan_in();
    if grad_out.shape()[1] != spec.out_channels
        || cols.len() != n
        || cols.iter().any(|c| c.len() != rows * p)
    {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, spec.out_channels, rows, p],
            op: "conv2d_backward",
        });
    }
    let mut grad_w = Tensor::zeros(&spec.weight_shape());
    // Weight gradients accumulate across the batch as completed per-sample
    // subtotals (`grad_w += dYᵢ · colsᵢᵀ` with each product summed on its
    // own), never as one flat chain over all samples. Callers that feed
    // samples one at a time (fill&drain, pipelined backprop) accumulate the
    // per-call results the same way, so batched and sample-at-a-time
    // training stay bit-equivalent.
    let mut gw_tmp: Vec<f32> = Vec::new();
    for ni in 0..n {
        let dy = &grad_out.as_slice()[ni * spec.out_channels * p..(ni + 1) * spec.out_channels * p];
        if ni == 0 {
            // First sample's chains start from the zeroed grad_w.
            gemm_nt(
                dy,
                &cols[ni],
                grad_w.as_mut_slice(),
                spec.out_channels,
                p,
                rows,
                true,
            );
        } else {
            gw_tmp.resize(spec.out_channels * rows, 0.0);
            gemm_nt(
                dy,
                &cols[ni],
                &mut gw_tmp,
                spec.out_channels,
                p,
                rows,
                false,
            );
            for (g, t) in grad_w.as_mut_slice().iter_mut().zip(&gw_tmp) {
                *g += *t;
            }
        }
    }
    Ok(grad_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (naive) convolution used as a reference implementation.
    fn conv2d_direct(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let (oh, ow) = (spec.out_size(h), spec.out_size(w));
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for ni in 0..n {
            for oc in 0..spec.out_channels {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..c {
                            for ki in 0..spec.kernel {
                                for kj in 0..spec.kernel {
                                    let ii =
                                        (oi * spec.stride + ki) as isize - spec.padding as isize;
                                    let jj =
                                        (oj * spec.stride + kj) as isize - spec.padding as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, ii as usize, jj as usize])
                                        * weight.at(&[oc, ci, ki, kj]);
                                }
                            }
                        }
                        out.set(&[ni, oc, oi, oj], acc);
                    }
                }
            }
        }
        out
    }

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(shape, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn conv2d_matches_direct_convolution() {
        for &(c, oc, k, s, p, h) in &[
            (1, 1, 3, 1, 1, 5),
            (2, 3, 3, 1, 1, 6),
            (3, 4, 3, 2, 1, 8),
            (2, 2, 1, 1, 0, 4),
        ] {
            let spec = Conv2dSpec::new(c, oc, k, s, p).unwrap();
            let input = rand_tensor(&[2, c, h, h], 1);
            let weight = rand_tensor(&spec.weight_shape(), 2);
            let (got, _) = conv2d(&input, &weight, &spec).unwrap();
            let expect = conv2d_direct(&input, &weight, &spec);
            assert_eq!(got.shape(), expect.shape());
            for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
                assert!((a - b).abs() < 1e-4, "spec {spec:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the backward pass correct.
        let spec = Conv2dSpec::new(2, 1, 3, 1, 1).unwrap();
        let (c, h, w) = (2, 5, 5);
        let x = rand_tensor(&[c, h, w], 3);
        let mut cols = Vec::new();
        im2col(x.as_slice(), c, h, w, &spec, &mut cols);
        let y: Vec<f32> = rand_tensor(&[cols.len()], 4).into_vec();
        let lhs: f64 = cols
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, c, h, w, &spec, &mut back);
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(&back)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_backward_matches_finite_differences() {
        let spec = Conv2dSpec::new(2, 2, 3, 1, 1).unwrap();
        let input = rand_tensor(&[1, 2, 4, 4], 5);
        let weight = rand_tensor(&spec.weight_shape(), 6);
        let (out, cols) = conv2d(&input, &weight, &spec).unwrap();
        // Loss = sum of outputs; dL/dy = 1.
        let grad_out = Tensor::ones(out.shape());
        let (gin, gw) = conv2d_backward(&grad_out, &weight, &cols, (4, 4), &spec).unwrap();
        let eps = 1e-3f32;
        // Check a few input coordinates.
        for &idx in &[0usize, 7, 15, 21] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let (op, _) = conv2d(&ip, &weight, &spec).unwrap();
            let (om, _) = conv2d(&im, &weight, &spec).unwrap();
            let num = (op.as_slice().iter().sum::<f32>() - om.as_slice().iter().sum::<f32>())
                / (2.0 * eps);
            assert!((num - gin.as_slice()[idx]).abs() < 1e-2, "input grad {idx}");
        }
        // Check a few weight coordinates.
        for &idx in &[0usize, 5, 17, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let (op, _) = conv2d(&input, &wp, &spec).unwrap();
            let (om, _) = conv2d(&input, &wm, &spec).unwrap();
            let num = (op.as_slice().iter().sum::<f32>() - om.as_slice().iter().sum::<f32>())
                / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 1e-2, "weight grad {idx}");
        }
    }

    #[test]
    fn split_backward_halves_match_fused_bitwise() {
        // 2BP runs the two halves at different times; the fused entry point
        // and the halves must be the same function bit for bit, batched and
        // per-sample alike.
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1).unwrap();
        for n in [1usize, 3] {
            let input = rand_tensor(&[n, 3, 6, 6], 7);
            let weight = rand_tensor(&spec.weight_shape(), 8);
            let (out, cols) = conv2d(&input, &weight, &spec).unwrap();
            let grad_out = rand_tensor(out.shape(), 9);
            let (gin, gw) = conv2d_backward(&grad_out, &weight, &cols, (6, 6), &spec).unwrap();
            let gin_half = conv2d_backward_input(&grad_out, &weight, (6, 6), &spec).unwrap();
            let gw_half = conv2d_backward_weight(&grad_out, &cols, &spec).unwrap();
            for (a, b) in gin.as_slice().iter().zip(gin_half.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "grad_input n={n}");
            }
            for (a, b) in gw.as_slice().iter().zip(gw_half.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "grad_weight n={n}");
            }
        }
    }

    #[test]
    fn batched_lowering_is_bit_identical_to_per_sample() {
        // The whole point of the wide GEMM: batch size must be a pure
        // throughput knob. Geometry sweep covers stride 2, no padding,
        // 1x1 kernels, and output widths that leave ragged GEMM tiles.
        for &(c, oc, k, s, p, h) in &[
            (1, 1, 3, 1, 1, 5),
            (2, 3, 3, 1, 1, 6),
            (3, 4, 3, 2, 1, 8),
            (2, 2, 1, 1, 0, 4),
            (4, 8, 3, 1, 1, 12),
        ] {
            let spec = Conv2dSpec::new(c, oc, k, s, p).unwrap();
            let weight = rand_tensor(&spec.weight_shape(), 2);
            let mut scratch = ConvBatchScratch::default();
            for n in [1usize, 3, 7] {
                let input = rand_tensor(&[n, c, h, h], n as u64);
                let (want, _) = conv2d(&input, &weight, &spec).unwrap();
                let got = conv2d_batched_reusing(&input, &weight, &spec, &mut scratch).unwrap();
                assert_eq!(got.shape(), want.shape());
                for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "spec {spec:?} n={n} elem {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_scratch_recycles_across_shrinking_batches() {
        // A recycled (larger) scratch buffer must not leak stale columns
        // into a smaller batch: zero-fill plus overwrite is per call.
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1).unwrap();
        let weight = rand_tensor(&spec.weight_shape(), 8);
        let mut scratch = ConvBatchScratch::default();
        let big = rand_tensor(&[6, 2, 5, 5], 9);
        conv2d_batched_reusing(&big, &weight, &spec, &mut scratch).unwrap();
        let small = rand_tensor(&[2, 2, 5, 5], 10);
        let got = conv2d_batched_reusing(&small, &weight, &spec, &mut scratch).unwrap();
        let (want, _) = conv2d(&small, &weight, &spec).unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batched_rejects_bad_shapes() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1).unwrap();
        let weight = rand_tensor(&spec.weight_shape(), 11);
        let flat = rand_tensor(&[2, 2, 25], 12);
        assert!(conv2d_batched(&flat, &weight, &spec).is_err(), "rank 3");
        let wrong_c = rand_tensor(&[2, 3, 5, 5], 13);
        assert!(
            conv2d_batched(&wrong_c, &weight, &spec).is_err(),
            "channel mismatch"
        );
    }

    #[test]
    fn spec_out_size_matches_formula() {
        let spec = Conv2dSpec::new(3, 16, 3, 1, 1).unwrap();
        assert_eq!(spec.out_size(32), 32);
        let down = Conv2dSpec::new(16, 32, 3, 2, 1).unwrap();
        assert_eq!(down.out_size(32), 16);
    }

    #[test]
    fn spec_rejects_degenerate_geometry() {
        assert!(Conv2dSpec::new(0, 1, 3, 1, 1).is_err());
        assert!(Conv2dSpec::new(1, 1, 0, 1, 1).is_err());
        assert!(Conv2dSpec::new(1, 1, 3, 0, 1).is_err());
    }
}
