//! Matrix multiplication: rank-2 `Tensor` wrappers over the tiled GEMM
//! kernels in [`super::gemm`].

use super::gemm::{gemm_nn, gemm_nt, gemm_tn};
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m × k) · (k × n) → (m × n)`.
    ///
    /// Dispatches to the cache-blocked, register-tiled GEMM in
    /// [`crate::ops::gemm_nn`]; products above a size threshold are
    /// row/column-partitioned across the [`crate::pool`] worker pool
    /// (`PBP_THREADS`). Results are bit-identical at every thread count —
    /// see the accumulation contract in [`crate::ops::gemm_nn`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
    /// or [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm_nn(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            false,
        );
        Ok(out)
    }

    /// `self · otherᵀ` for rank-2 tensors: `(m × k) · (n × k)ᵀ → (m × n)`,
    /// via the tiled [`crate::ops::gemm_nt`] kernel (no explicit transpose).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
                op: "matmul_transpose_b",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul_transpose_b",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm_nt(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            false,
        );
        Ok(out)
    }

    /// `selfᵀ · other` for rank-2 tensors: `(k × m)ᵀ · (k × n) → (m × n)`,
    /// via the tiled [`crate::ops::gemm_tn`] kernel (no explicit transpose).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
                op: "matmul_transpose_a",
            });
        }
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul_transpose_a",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm_tn(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            false,
        );
        Ok(out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let a = self.as_slice();
        let mut out = Tensor::zeros(&[n, m]);
        let o = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                o[j * m + i] = a[i * n + j];
            }
        }
        Ok(out)
    }
}

/// `c += aᵀ · b` for rank-2 tensors: `(k × m)ᵀ · (k × n) + (m × n)`,
/// accumulating in place via [`crate::ops::gemm_tn`]. Used by layers that
/// sum per-sample parameter gradients without a temporary.
///
/// # Errors
///
/// Returns a rank or shape error if the operands are not conformant.
pub fn matmul_tn_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<()> {
    if a.rank() != 2 || b.rank() != 2 || c.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank().max(b.rank()).max(c.rank()),
            op: "matmul_tn_acc",
        });
    }
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 || c.shape() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "matmul_tn_acc",
        });
    }
    gemm_tn(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n, true);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_result() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt.as_slice(), a.as_slice());
        assert_eq!(tt.shape(), a.shape());
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 2.0, 1.5, -2.0, 0.0, 1.0],
            &[4, 3],
        );
        let expect = a.matmul(&b.transpose().unwrap()).unwrap();
        let got = a.matmul_transpose_b(&b).unwrap();
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transpose_a_matches_explicit() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[0.5, 1.0, -1.0, 2.0, 1.5, 0.0], &[3, 2]);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        let got = a.matmul_transpose_a(&b).unwrap();
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_acc_accumulates_in_place() {
        let g = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let x = t(&[0.5, 1.0, -1.0, 2.0, 1.5, 0.0], &[3, 2]);
        let mut acc = Tensor::ones(&[2, 2]);
        matmul_tn_acc(&g, &x, &mut acc).unwrap();
        let expect = g.transpose().unwrap().matmul(&x).unwrap();
        for (got, want) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((got - (want + 1.0)).abs() < 1e-5, "{got} vs {want}+1");
        }
    }

    #[test]
    fn matmul_tn_acc_rejects_bad_shapes() {
        let a = Tensor::zeros(&[3, 2]);
        let b = Tensor::zeros(&[4, 2]);
        let mut c = Tensor::zeros(&[2, 2]);
        assert!(matmul_tn_acc(&a, &b, &mut c).is_err());
        let b = Tensor::zeros(&[3, 2]);
        let mut c = Tensor::zeros(&[3, 3]);
        assert!(matmul_tn_acc(&a, &b, &mut c).is_err());
    }
}
