//! Matrix multiplication.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m × k) · (k × n) → (m × n)`.
    ///
    /// Uses a cache-friendly i-k-j loop order; adequate for the small
    /// pipeline-stage matrices this project trains at batch size one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
    /// or [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        Ok(out)
    }

    /// `self · otherᵀ` for rank-2 tensors: `(m × k) · (n × k)ᵀ → (m × n)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
                op: "matmul_transpose_b",
            });
        }
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul_transpose_b",
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                let ar = &a[i * k..(i + 1) * k];
                let br = &b[j * k..(j + 1) * k];
                for kk in 0..k {
                    acc += ar[kk] * br[kk];
                }
                o[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// `selfᵀ · other` for rank-2 tensors: `(k × m)ᵀ · (k × n) → (m × n)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
                op: "matmul_transpose_a",
            });
        }
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
                op: "matmul_transpose_a",
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.as_mut_slice();
        for kk in 0..k {
            let ar = &a[kk * m..(kk + 1) * m];
            let br = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let aik = ar[i];
                if aik == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += aik * br[j];
                }
            }
        }
        Ok(out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let a = self.as_slice();
        let mut out = Tensor::zeros(&[n, m]);
        let o = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                o[j * m + i] = a[i * n + j];
            }
        }
        Ok(out)
    }
}

/// Raw `C ← A·B` kernel over flat slices in row-major layout.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with `m`, `k`, `n`.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.iter_mut().for_each(|x| *x = 0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_result() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt.as_slice(), a.as_slice());
        assert_eq!(tt.shape(), a.shape());
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 2.0, 1.5, -2.0, 0.0, 1.0],
            &[4, 3],
        );
        let expect = a.matmul(&b.transpose().unwrap()).unwrap();
        let got = a.matmul_transpose_b(&b).unwrap();
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transpose_a_matches_explicit() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[0.5, 1.0, -1.0, 2.0, 1.5, 0.0], &[3, 2]);
        let expect = a.transpose().unwrap().matmul(&b).unwrap();
        let got = a.matmul_transpose_a(&b).unwrap();
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
