//! Elementwise arithmetic on tensors.

use crate::{Result, Tensor};

impl Tensor {
    /// Elementwise sum, producing a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// Elementwise in-place sum.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// Elementwise difference, producing a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        let mut out = self.clone();
        for (a, b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(out)
    }

    /// Elementwise in-place difference.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "sub_assign")?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// Elementwise (Hadamard) product, producing a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        let mut out = self.clone();
        for (a, b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a *= b;
        }
        Ok(out)
    }

    /// Multiplies every element by a scalar, producing a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_assign(&mut self, s: f32) {
        self.map_in_place(|x| x * s);
    }
}

/// `y ← y + alpha * x` over flat data (the BLAS `axpy` primitive).
///
/// Optimizer updates — SGDM, Spike Compensation, Linear Weight Prediction —
/// are all compositions of axpy steps, so this is the hottest non-layer
/// kernel in the project.
///
/// # Panics
///
/// Panics if the tensors have different lengths.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yi += alpha * xi;
    }
}

/// `out ← a * x + b * y`, overwriting `out` (shape taken from `x`).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn scale_add_into(a: f32, x: &Tensor, b: f32, y: &Tensor, out: &mut Tensor) {
    assert_eq!(x.len(), y.len(), "scale_add_into length mismatch");
    assert_eq!(x.len(), out.len(), "scale_add_into output length mismatch");
    let (xs, ys) = (x.as_slice(), y.as_slice());
    for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
        *o = a * xs[i] + b * ys[i];
    }
}

/// `out ← x + t * (x - x_prev)` — the linear extrapolation used by the
/// weight-difference form of Linear Weight Prediction (Eq. 19 of the paper).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn lerp_into(x: &Tensor, x_prev: &Tensor, t: f32, out: &mut Tensor) {
    assert_eq!(x.len(), x_prev.len(), "lerp_into length mismatch");
    assert_eq!(x.len(), out.len(), "lerp_into output length mismatch");
    let (xs, ps) = (x.as_slice(), x_prev.as_slice());
    for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
        *o = xs[i] + t * (xs[i] - ps[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorError;

    #[test]
    fn add_and_sub_are_inverses() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[0.5, -1.0, 2.0]);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        match a.add(&b) {
            Err(TensorError::ShapeMismatch { op, .. }) => assert_eq!(op, "add"),
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn mul_is_elementwise() {
        let a = Tensor::from_slice(&[2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[8.0, 15.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let mut y = Tensor::from_slice(&[10.0, 20.0]);
        axpy(0.5, &x, &mut y);
        assert_eq!(y.as_slice(), &[10.5, 21.0]);
    }

    #[test]
    fn scale_add_into_matches_manual() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0]);
        let mut out = Tensor::zeros(&[2]);
        scale_add_into(2.0, &x, -1.0, &y, &mut out);
        assert_eq!(out.as_slice(), &[-1.0, 0.0]);
    }

    #[test]
    fn lerp_into_extrapolates() {
        let x = Tensor::from_slice(&[2.0]);
        let prev = Tensor::from_slice(&[1.0]);
        let mut out = Tensor::zeros(&[1]);
        lerp_into(&x, &prev, 3.0, &mut out);
        // 2 + 3*(2-1) = 5
        assert_eq!(out.as_slice(), &[5.0]);
    }

    #[test]
    fn lerp_with_zero_horizon_is_identity() {
        let x = Tensor::from_slice(&[2.0, -7.0]);
        let prev = Tensor::from_slice(&[1.0, 4.0]);
        let mut out = Tensor::zeros(&[2]);
        lerp_into(&x, &prev, 0.0, &mut out);
        assert_eq!(out.as_slice(), x.as_slice());
    }
}

impl Tensor {
    /// Elementwise absolute value, producing a new tensor.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise clamp into `[lo, hi]`, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp bounds inverted: [{lo}, {hi}]");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Elementwise maximum of two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] if shapes differ.
    pub fn maximum(&self, other: &Tensor) -> crate::Result<Tensor> {
        self.check_same_shape(other, "maximum")?;
        let mut out = self.clone();
        for (a, b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = a.max(*b);
        }
        Ok(out)
    }

    /// Concatenates tensors along axis 0 (all other dimensions must match).
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or trailing shapes differ.
    pub fn concat(parts: &[&Tensor]) -> crate::Result<Tensor> {
        let first = parts.first().ok_or_else(|| {
            crate::TensorError::InvalidArgument("concat needs at least one tensor".into())
        })?;
        let tail_shape = &first.shape()[1..];
        let mut rows = 0usize;
        for p in parts {
            if &p.shape()[1..] != tail_shape {
                return Err(crate::TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                    op: "concat",
                });
            }
            rows += p.shape()[0];
        }
        let mut shape = vec![rows];
        shape.extend_from_slice(tail_shape);
        let mut data = Vec::with_capacity(shape.iter().product());
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &shape)
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn abs_and_clamp() {
        let t = Tensor::from_slice(&[-2.0, 0.5, 3.0]);
        assert_eq!(t.abs().as_slice(), &[2.0, 0.5, 3.0]);
        assert_eq!(t.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn maximum_is_elementwise() {
        let a = Tensor::from_slice(&[1.0, 5.0]);
        let b = Tensor::from_slice(&[3.0, 2.0]);
        assert_eq!(a.maximum(&b).unwrap().as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn concat_stacks_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rejects_mismatched_tails() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::concat(&[&a, &b]).is_err());
        assert!(Tensor::concat(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "clamp bounds")]
    fn clamp_rejects_inverted_bounds() {
        Tensor::from_slice(&[1.0]).clamp(2.0, 1.0);
    }
}
