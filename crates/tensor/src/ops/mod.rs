//! Tensor operations, grouped by kind.
//!
//! Most operations are exposed as inherent methods on [`crate::Tensor`];
//! free functions live here when they involve auxiliary buffers (im2col) or
//! several tensors symmetrically (axpy-style updates used by optimizers).

mod conv;
mod elementwise;
mod gemm;
mod matmul;
mod pool;
mod reduce;
pub mod reference;
pub mod simd;

pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_backward_input, conv2d_backward_weight, conv2d_batched,
    conv2d_batched_reusing, conv2d_reusing, im2col, im2col_into, Conv2dSpec, ConvBatchScratch,
};
pub use elementwise::{axpy, lerp_into, scale_add_into};
pub use gemm::{gemm_nn, gemm_nt, gemm_tn};
pub use matmul::matmul_tn_acc;
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolSpec};
