//! Reductions and simple statistics.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns 0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Population variance of all elements.
    ///
    /// Returns 0 for an empty tensor.
    pub fn variance(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.as_slice()
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.len() as f64
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::max)
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element (first occurrence), or `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.as_slice().iter().enumerate() {
            match best {
                Some((_, b)) if x <= b => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let t = Tensor::full(&[10], 3.0);
        assert!(t.variance().abs() < 1e-12);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(t.max(), Some(5.0));
        assert_eq!(t.min(), Some(1.0));
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::from_vec(vec![], &[0]).unwrap();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.argmax(), None);
        assert_eq!(t.max(), None);
    }
}
