//! Retained naive reference kernels.
//!
//! These are the *definitional* implementations the optimized kernels in
//! [`super::gemm`] and [`super::conv`] are differentially tested against
//! (`tests/proptest_kernels.rs`): plain loops with one explicit `f32`
//! *fused* multiply-add chain (`f32::mul_add`) per output element, in
//! increasing reduction order. An IEEE 754 fma rounds once, so these
//! chains are the same function the SIMD `vfmadd` micro-kernels compute.
//! They are deliberately slow — scalar, no blocking, no packing — and serve
//! as both the correctness oracle and the "naive" baseline for
//! `results/BENCH_kernels.json`.
//!
//! The accumulation convention (documented in [`super::gemm`]) is what
//! makes bit-identity between these references and the tiled/parallel
//! kernels a meaningful, testable property rather than a tolerance check.

use super::conv::Conv2dSpec;
use crate::Tensor;

/// Naive `C = A·B` (`A: m×k`, `B: k×n`): one scalar chain per element.
pub fn matmul_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    matmul_acc_ref(a, b, c, m, k, n);
}

/// Naive `C += A·B`, extending each element's chain from its current value.
pub fn matmul_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for kk in 0..k {
                s = a[i * k + kk].mul_add(b[kk * n + j], s);
            }
            c[i * n + j] = s;
        }
    }
}

/// Naive `C = A·Bᵀ` (`A: m×k`, `B: n×k`).
pub fn matmul_nt_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    matmul_nt_acc_ref(a, b, c, m, k, n);
}

/// Naive `C += A·Bᵀ`.
pub fn matmul_nt_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for kk in 0..k {
                s = a[i * k + kk].mul_add(b[j * k + kk], s);
            }
            c[i * n + j] = s;
        }
    }
}

/// Naive `C = Aᵀ·B` (`A: k×m`, `B: k×n`).
pub fn matmul_tn_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    matmul_tn_acc_ref(a, b, c, m, k, n);
}

/// Naive `C += Aᵀ·B`.
pub fn matmul_tn_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for kk in 0..k {
                s = a[kk * m + i].mul_add(b[kk * n + j], s);
            }
            c[i * n + j] = s;
        }
    }
}

/// Direct (six-loop) 2-D convolution forward, NCHW.
///
/// Accumulates each output pixel over `(ci, ki, kj)` in lexicographic
/// order — exactly the im2col row order — so for finite inputs the result
/// is bit-identical to the GEMM-lowered [`super::conv2d`].
///
/// # Panics
///
/// Panics if `input`/`weight` shapes disagree with `spec`.
pub fn conv2d_ref(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    assert_eq!(c, spec.in_channels, "conv2d_ref: channel mismatch");
    assert_eq!(weight.shape(), spec.weight_shape(), "conv2d_ref: weight");
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    let (xs, ws) = (input.as_slice(), weight.as_slice());
    let o = out.as_mut_slice();
    for ni in 0..n {
        for oc in 0..spec.out_channels {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut s = 0.0f32;
                    for ci in 0..c {
                        for ki in 0..k {
                            for kj in 0..k {
                                let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                                    continue;
                                }
                                s = xs[((ni * c + ci) * h + ii as usize) * w + jj as usize]
                                    .mul_add(ws[((oc * c + ci) * k + ki) * k + kj], s);
                            }
                        }
                    }
                    o[((ni * spec.out_channels + oc) * oh + oi) * ow + oj] = s;
                }
            }
        }
    }
    out
}

/// Direct 2-D convolution backward: `(grad_input, grad_weight)` for a loss
/// gradient `grad_out` of shape `[N, OC, OH, OW]`.
///
/// Loop nesting mirrors the im2col path's accumulation structure (see
/// [`super::conv2d_backward`]): the weight gradient chains over output
/// pixels per `(sample, oc, column)` — with samples after the first added
/// as completed per-sample subtotals — and the input gradient adds one
/// completed `oc`-chain per `(column, pixel)` pair, so both are
/// bit-identical to the GEMM-lowered backward for finite inputs.
///
/// # Panics
///
/// Panics if shapes disagree with `spec`.
pub fn conv2d_backward_ref(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor) {
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let oc_n = spec.out_channels;
    assert_eq!(grad_out.shape(), [n, oc_n, oh, ow], "conv2d_backward_ref");
    let (dys, xs, ws) = (grad_out.as_slice(), input.as_slice(), weight.as_slice());
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let mut grad_w = Tensor::zeros(&spec.weight_shape());
    let gi = grad_in.as_mut_slice();
    let gw = grad_w.as_mut_slice();
    for ni in 0..n {
        // Weight gradient: per (oc, ci, ki, kj) one chain over output pixels.
        for oc in 0..oc_n {
            for ci in 0..c {
                for ki in 0..k {
                    for kj in 0..k {
                        let widx = ((oc * c + ci) * k + ki) * k + kj;
                        // Sample 0 chains from the zeroed grad_w; later
                        // samples add a completed per-sample subtotal,
                        // mirroring conv2d_backward's batch association.
                        let mut s = if ni == 0 { gw[widx] } else { 0.0 };
                        for oi in 0..oh {
                            for oj in 0..ow {
                                let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                                    continue;
                                }
                                s = dys[((ni * oc_n + oc) * oh + oi) * ow + oj].mul_add(
                                    xs[((ni * c + ci) * h + ii as usize) * w + jj as usize],
                                    s,
                                );
                            }
                        }
                        if ni == 0 {
                            gw[widx] = s;
                        } else {
                            gw[widx] += s;
                        }
                    }
                }
            }
        }
        // Input gradient: one completed oc-chain per (column, pixel), added
        // in col2im's (ci, ki, kj, oi, oj) order.
        for ci in 0..c {
            for ki in 0..k {
                for kj in 0..k {
                    for oi in 0..oh {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for oj in 0..ow {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            let mut s = 0.0f32;
                            for oc in 0..oc_n {
                                s = ws[((oc * c + ci) * k + ki) * k + kj]
                                    .mul_add(dys[((ni * oc_n + oc) * oh + oi) * ow + oj], s);
                            }
                            gi[((ni * c + ci) * h + ii as usize) * w + jj as usize] += s;
                        }
                    }
                }
            }
        }
    }
    (grad_in, grad_w)
}
