//! Explicit SIMD micro-kernels for the GEMM register tile.
//!
//! The scalar register tile in [`super::gemm`] accumulates every output
//! element as one fused-multiply-add chain in increasing `k` order. An IEEE
//! 754 fused multiply-add rounds exactly once, so `f32::mul_add` on the
//! scalar path and the `vfmadd` vector instructions here compute *the same
//! function* — the kernels in this module are bit-identical to the scalar
//! tile, on every input, by construction rather than by tolerance. That is
//! what lets runtime dispatch pick the fastest tier without perturbing the
//! differential contract against [`super::reference`].
//!
//! # Dispatch
//!
//! The active tier is resolved once per process from the `PBP_SIMD`
//! environment variable and CPU feature detection
//! (`is_x86_feature_detected!`), best tier wins:
//!
//! * `PBP_SIMD=0` / `off` / `scalar` — force the scalar tile (escape hatch);
//! * `PBP_SIMD=avx2` — cap at AVX2+FMA even when AVX-512 is available;
//! * unset / `1` / `on` / `auto` / `avx512` — best tier the CPU supports.
//!
//! [`set_tier`] overrides the choice at runtime (clamped to what the CPU
//! supports); benchmarks and the differential tests use it to sweep tiers
//! inside one process. On non-x86-64 targets every query answers
//! [`SimdTier::Scalar`] and the scalar tile runs unconditionally.
//!
//! Full-width tiles (`nr == NR`) dispatch through [`tile_full_width`];
//! ragged right-edge tiles (`nr < NR`) dispatch through [`tile_ragged`],
//! whose kernels mask the loads and stores of `C` down to the `nr` live
//! columns (`vmaskmov` on AVX2, a `__mmask16` on AVX-512) while reading the
//! zero-padded packed `B` panel at full width. Masked-off lanes are
//! computed but never stored, and each live lane runs the identical fma
//! chain — so ragged tiles are bit-identical across tiers too, and the
//! batch-one conv shapes whose output widths are not multiples of `NR`
//! stay on the vector units instead of falling back to scalar.
//!
//! Besides the register tiles, the short-reduction `tn` axpy path (conv
//! input gradients and the deferred weight-gradient GEMMs of split-backward
//! schedules, see `TN_AXPY_MAX_K` in [`super::gemm`]) dispatches its row
//! sweeps through [`axpy_row`] — the same per-element fma chains, vectorized
//! across the row instead of across a tile. The small-shape `simple`
//! kernels (products under the tiled threshold: the tiny per-stage GEMMs a
//! batch-one latency-critical request runs) route their `nn` and `tn`
//! row sweeps through [`axpy_row`] as well, so even sub-threshold products
//! hit AVX2/AVX-512.

use std::sync::atomic::{AtomicU8, Ordering};

/// SIMD capability tier for the GEMM register tile, ordered from weakest
/// to strongest so clamping is `min`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SimdTier {
    /// Scalar `f32::mul_add` tile (the compiler may still autovectorize).
    Scalar,
    /// 256-bit `vfmadd` tile (`avx2` + `fma`).
    Avx2Fma,
    /// 512-bit `vfmadd` tile (`avx512f`).
    Avx512Fma,
}

impl SimdTier {
    /// Stable lowercase name, as reported by benchmarks and `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2Fma => "avx2",
            SimdTier::Avx512Fma => "avx512",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Avx2Fma => 2,
            SimdTier::Avx512Fma => 3,
        }
    }

    fn from_u8(v: u8) -> Option<SimdTier> {
        match v {
            1 => Some(SimdTier::Scalar),
            2 => Some(SimdTier::Avx2Fma),
            3 => Some(SimdTier::Avx512Fma),
            _ => None,
        }
    }
}

/// Active tier. Zero means "not yet resolved"; the first call to
/// [`active_tier`] resolves it from `PBP_SIMD` and CPU detection.
static TIER: AtomicU8 = AtomicU8::new(0);

/// One-time warning gate for unrecognized `PBP_SIMD` values.
static ENV_WARNING: std::sync::Once = std::sync::Once::new();

/// The best tier this CPU supports, ignoring `PBP_SIMD` and overrides.
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return SimdTier::Avx512Fma;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return SimdTier::Avx2Fma;
        }
    }
    SimdTier::Scalar
}

/// Parses a `PBP_SIMD` value into the tier *cap* it requests (the active
/// tier is the minimum of this cap and the detected capability), or
/// `None` for an unrecognized value — mirroring `PBP_THREADS` parsing in
/// [`crate::pool`]: a pure function so the accepted grammar is testable
/// without touching process environment.
fn parse_simd(raw: &str) -> Option<SimdTier> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "scalar" => Some(SimdTier::Scalar),
        "avx2" => Some(SimdTier::Avx2Fma),
        "" | "1" | "on" | "auto" | "avx512" => Some(SimdTier::Avx512Fma),
        _ => None,
    }
}

fn env_tier() -> SimdTier {
    let best = detected_tier();
    match std::env::var("PBP_SIMD") {
        Err(_) => best,
        Ok(raw) => match parse_simd(&raw) {
            Some(cap) => best.min(cap),
            None => {
                ENV_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring unrecognized PBP_SIMD={raw:?} \
                         (expected 0/off/scalar, avx2, avx512, or 1/on/auto); \
                         using detected tier {}",
                        best.name()
                    );
                });
                best
            }
        },
    }
}

/// The tier full-width register tiles currently dispatch to. Resolved once
/// from `PBP_SIMD` / CPU detection; override with [`set_tier`]. Every tier
/// computes bit-identical results, so this is a performance knob only.
pub fn active_tier() -> SimdTier {
    match SimdTier::from_u8(TIER.load(Ordering::Relaxed)) {
        Some(t) => t,
        None => {
            let t = env_tier();
            // A racing first call resolves to the same value; last store
            // wins harmlessly.
            TIER.store(t.to_u8(), Ordering::Relaxed);
            t
        }
    }
}

/// Overrides the active tier for the whole process, clamped to what the
/// CPU actually supports (requesting AVX-512 on an AVX2 machine selects
/// AVX2). Because every tier is bit-identical, flipping this at runtime
/// only changes performance, never results — benchmarks and the
/// differential tests rely on exactly that.
pub fn set_tier(tier: SimdTier) {
    TIER.store(tier.min(detected_tier()).to_u8(), Ordering::Relaxed);
}

/// Runs a full-width (`nr == NR`) register tile on the active SIMD tier.
/// Returns `false` when the caller should run the scalar tile instead
/// (scalar tier active, or a non-x86-64 target).
///
/// Arguments mirror the scalar `micro` kernel in [`super::gemm`]: `a` is
/// the whole `A` slice (`k×m` when `AT`, else `m×k`, leading dimension
/// `lda`), `bp` the packed or in-place `B` panel whose rows are `bstride`
/// apart, and the tile writes rows `i0..i0 + MRL`, columns `j0..j0 + NR`
/// of the output at `c` (leading dimension `ldc`).
///
/// # Safety
///
/// The caller must guarantee the same bounds the scalar tile relies on:
/// `kc` panel rows of `bp` each with `NR` readable floats, `A` indices in
/// bounds for all `MRL` rows across `kc` steps, and the `MRL × NR` output
/// tile inside the region this call may write.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) unsafe fn tile_full_width<const AT: bool, const MRL: usize>(
    a: &[f32],
    lda: usize,
    i0: usize,
    p0: usize,
    kc: usize,
    bp: &[f32],
    bstride: usize,
    c: *mut f32,
    ldc: usize,
    j0: usize,
    load_c: bool,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match active_tier() {
            SimdTier::Avx512Fma => {
                // SAFETY: tier selection proved avx512f; bounds are the
                // caller's contract above.
                x86::tile_avx512::<AT, MRL>(a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, load_c);
                true
            }
            SimdTier::Avx2Fma => {
                // SAFETY: tier selection proved avx2+fma; bounds are the
                // caller's contract above.
                x86::tile_avx2::<AT, MRL>(a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, load_c);
                true
            }
            SimdTier::Scalar => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, load_c);
        false
    }
}

/// Runs a ragged (`nr < NR`) register tile on the active SIMD tier.
/// Returns `false` when the caller should run the scalar tile instead
/// (scalar tier active, or a non-x86-64 target).
///
/// `bp` must be the *packed* `B` panel (ragged tiles always pack, see
/// [`super::gemm`]): `kc` rows of `NR` floats, columns past `nr`
/// zero-padded. The kernels read `B` at full vector width — safe because
/// of the padding — and mask the `C` loads and stores down to the `nr`
/// live columns, so each stored element runs the same fma chain as the
/// scalar tile. Masked-off lanes accumulate on the zero padding and are
/// discarded.
///
/// # Safety
///
/// Same bounds contract as [`tile_full_width`], with the output tile
/// `MRL × nr` (only the first `nr` columns are written) and `bp`
/// guaranteed to hold `kc` full `NR`-float rows at stride `bstride`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) unsafe fn tile_ragged<const AT: bool, const MRL: usize>(
    a: &[f32],
    lda: usize,
    i0: usize,
    p0: usize,
    kc: usize,
    bp: &[f32],
    bstride: usize,
    c: *mut f32,
    ldc: usize,
    j0: usize,
    nr: usize,
    load_c: bool,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match active_tier() {
            SimdTier::Avx512Fma => {
                // SAFETY: tier selection proved avx512f; bounds are the
                // caller's contract above.
                x86::tile_avx512_ragged::<AT, MRL>(
                    a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, nr, load_c,
                );
                true
            }
            SimdTier::Avx2Fma => {
                // SAFETY: tier selection proved avx2+fma; bounds are the
                // caller's contract above.
                x86::tile_avx2_ragged::<AT, MRL>(
                    a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, nr, load_c,
                );
                true
            }
            SimdTier::Scalar => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (a, lda, i0, p0, kc, bp, bstride, c, ldc, j0, nr, load_c);
        false
    }
}

/// Runs one fused-multiply-add axpy sweep of the short-reduction `tn`
/// path on the active SIMD tier: `c[j] = fma(av, b[j], c[j])`, or
/// `c[j] = fma(av, b[j], 0.0)` when `zero_init` (the first sweep in
/// overwrite mode — note `fma(·, ·, +0.0)`, not a bare multiply, so the
/// `−0.0` products round identically to the scalar `mul_add` sweep).
/// Elements are independent and `vfmadd` computes the same exactly-rounded
/// fma as `f32::mul_add`, so every tier is bit-identical by construction.
/// Returns `false` when the caller should run the scalar sweep instead
/// (scalar tier active, or a non-x86-64 target).
#[inline(always)]
pub(crate) fn axpy_row(av: f32, b: &[f32], c: &mut [f32], zero_init: bool) -> bool {
    debug_assert_eq!(b.len(), c.len());
    #[cfg(target_arch = "x86_64")]
    {
        match active_tier() {
            SimdTier::Avx512Fma => {
                // SAFETY: tier selection proved avx512f; `b` and `c` are
                // equal-length slices.
                unsafe { x86::axpy_avx512(av, b, c, zero_init) };
                true
            }
            SimdTier::Avx2Fma => {
                // SAFETY: tier selection proved avx2+fma; `b` and `c` are
                // equal-length slices.
                unsafe { x86::axpy_avx2(av, b, c, zero_init) };
                true
            }
            SimdTier::Scalar => false,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (av, b, c, zero_init);
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::gemm::NR;
    use std::arch::x86_64::*;

    /// AVX2+FMA `MRL × NR` tile: two 256-bit accumulators per row, one
    /// `vfmadd` chain per output element in increasing `k` order — the
    /// same exactly-rounded chain as the scalar `mul_add` tile.
    ///
    /// # Safety
    ///
    /// `avx2` and `fma` must be available at runtime, and the bounds
    /// contract of [`super::tile_full_width`] must hold.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn tile_avx2<const AT: bool, const MRL: usize>(
        a: &[f32],
        lda: usize,
        i0: usize,
        p0: usize,
        kc: usize,
        bp: &[f32],
        bstride: usize,
        c: *mut f32,
        ldc: usize,
        j0: usize,
        load_c: bool,
    ) {
        debug_assert!(bp.len() >= (kc - 1) * bstride + NR);
        let mut acc = [[_mm256_setzero_ps(); 2]; MRL];
        if load_c {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let crow = c.add((i0 + r) * ldc + j0) as *const f32;
                acc_row[0] = _mm256_loadu_ps(crow);
                acc_row[1] = _mm256_loadu_ps(crow.add(8));
            }
        }
        let ap = a.as_ptr();
        let bpp = bp.as_ptr();
        let mut boff = 0usize;
        for kk in 0..kc {
            let b0 = _mm256_loadu_ps(bpp.add(boff));
            let b1 = _mm256_loadu_ps(bpp.add(boff + 8));
            if AT {
                // `A` is k×m: the `MRL` values live contiguously in row
                // `p0 + kk`.
                let arow = ap.add((p0 + kk) * lda + i0);
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arow.add(r));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add((i0 + r) * lda + p0 + kk));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
            }
            boff += bstride;
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let crow = c.add((i0 + r) * ldc + j0);
            _mm256_storeu_ps(crow, acc_row[0]);
            _mm256_storeu_ps(crow.add(8), acc_row[1]);
        }
    }

    /// AVX-512F `MRL × NR` tile: one 512-bit accumulator per row — `NR`
    /// is exactly one zmm lane set. Same exactly-rounded fma chains as
    /// the scalar and AVX2 tiles.
    ///
    /// # Safety
    ///
    /// `avx512f` must be available at runtime, and the bounds contract of
    /// [`super::tile_full_width`] must hold.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn tile_avx512<const AT: bool, const MRL: usize>(
        a: &[f32],
        lda: usize,
        i0: usize,
        p0: usize,
        kc: usize,
        bp: &[f32],
        bstride: usize,
        c: *mut f32,
        ldc: usize,
        j0: usize,
        load_c: bool,
    ) {
        debug_assert!(bp.len() >= (kc - 1) * bstride + NR);
        let mut acc = [_mm512_setzero_ps(); MRL];
        if load_c {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                *acc_row = _mm512_loadu_ps(c.add((i0 + r) * ldc + j0) as *const f32);
            }
        }
        let ap = a.as_ptr();
        let bpp = bp.as_ptr();
        let mut boff = 0usize;
        for kk in 0..kc {
            let bv = _mm512_loadu_ps(bpp.add(boff));
            if AT {
                let arow = ap.add((p0 + kk) * lda + i0);
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*arow.add(r));
                    *acc_row = _mm512_fmadd_ps(av, bv, *acc_row);
                }
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add((i0 + r) * lda + p0 + kk));
                    *acc_row = _mm512_fmadd_ps(av, bv, *acc_row);
                }
            }
            boff += bstride;
        }
        for (r, acc_row) in acc.iter().enumerate() {
            _mm512_storeu_ps(c.add((i0 + r) * ldc + j0), *acc_row);
        }
    }

    /// Lane-mask table for AVX2 masked loads/stores: `mask_avx2(w)` reads
    /// an eight-lane window with exactly `w` leading all-ones lanes.
    const MASK_TABLE: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

    /// A `__m256i` whose first `w` (≤ 8) lanes are all-ones — the mask
    /// `vmaskmovps` wants for a `w`-lane partial row.
    ///
    /// # Safety
    ///
    /// Requires `avx` (callers are `avx2`-gated) and `w <= 8`.
    #[target_feature(enable = "avx2")]
    unsafe fn mask_avx2(w: usize) -> __m256i {
        debug_assert!(w <= 8);
        _mm256_loadu_si256(MASK_TABLE.as_ptr().add(8 - w) as *const __m256i)
    }

    /// AVX2+FMA ragged `MRL × nr` tile (`nr < NR`): `B` panel rows are
    /// read at full width (the pack zero-pads them), `C` rows are loaded
    /// and stored through lane masks covering the `nr` live columns. Each
    /// stored element runs the same exactly-rounded fma chain as the
    /// scalar edge tile; masked-off lanes accumulate on the zero padding
    /// and are never written back.
    ///
    /// # Safety
    ///
    /// `avx2` and `fma` must be available at runtime, and the bounds
    /// contract of [`super::tile_ragged`] must hold.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn tile_avx2_ragged<const AT: bool, const MRL: usize>(
        a: &[f32],
        lda: usize,
        i0: usize,
        p0: usize,
        kc: usize,
        bp: &[f32],
        bstride: usize,
        c: *mut f32,
        ldc: usize,
        j0: usize,
        nr: usize,
        load_c: bool,
    ) {
        debug_assert!(nr > 0 && nr < NR);
        debug_assert!(bp.len() >= (kc - 1) * bstride + NR);
        let lo = nr.min(8);
        let hi = nr - lo;
        let mask_lo = mask_avx2(lo);
        let mask_hi = mask_avx2(hi);
        let mut acc = [[_mm256_setzero_ps(); 2]; MRL];
        if load_c {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let crow = c.add((i0 + r) * ldc + j0) as *const f32;
                acc_row[0] = _mm256_maskload_ps(crow, mask_lo);
                if hi > 0 {
                    acc_row[1] = _mm256_maskload_ps(crow.add(8), mask_hi);
                }
            }
        }
        let ap = a.as_ptr();
        let bpp = bp.as_ptr();
        let mut boff = 0usize;
        for kk in 0..kc {
            let b0 = _mm256_loadu_ps(bpp.add(boff));
            let b1 = _mm256_loadu_ps(bpp.add(boff + 8));
            if AT {
                let arow = ap.add((p0 + kk) * lda + i0);
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arow.add(r));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add((i0 + r) * lda + p0 + kk));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
            }
            boff += bstride;
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let crow = c.add((i0 + r) * ldc + j0);
            _mm256_maskstore_ps(crow, mask_lo, acc_row[0]);
            if hi > 0 {
                _mm256_maskstore_ps(crow.add(8), mask_hi, acc_row[1]);
            }
        }
    }

    /// AVX-512F ragged `MRL × nr` tile (`nr < NR`): one masked zmm
    /// accumulator per row, `__mmask16` covering the `nr` live columns.
    /// Same exactly-rounded fma chains as the scalar edge tile.
    ///
    /// # Safety
    ///
    /// `avx512f` must be available at runtime, and the bounds contract of
    /// [`super::tile_ragged`] must hold.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn tile_avx512_ragged<const AT: bool, const MRL: usize>(
        a: &[f32],
        lda: usize,
        i0: usize,
        p0: usize,
        kc: usize,
        bp: &[f32],
        bstride: usize,
        c: *mut f32,
        ldc: usize,
        j0: usize,
        nr: usize,
        load_c: bool,
    ) {
        debug_assert!(nr > 0 && nr < NR);
        debug_assert!(bp.len() >= (kc - 1) * bstride + NR);
        let mask: __mmask16 = ((1u32 << nr) - 1) as __mmask16;
        let mut acc = [_mm512_setzero_ps(); MRL];
        if load_c {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                *acc_row = _mm512_maskz_loadu_ps(mask, c.add((i0 + r) * ldc + j0) as *const f32);
            }
        }
        let ap = a.as_ptr();
        let bpp = bp.as_ptr();
        let mut boff = 0usize;
        for kk in 0..kc {
            let bv = _mm512_loadu_ps(bpp.add(boff));
            if AT {
                let arow = ap.add((p0 + kk) * lda + i0);
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*arow.add(r));
                    *acc_row = _mm512_fmadd_ps(av, bv, *acc_row);
                }
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add((i0 + r) * lda + p0 + kk));
                    *acc_row = _mm512_fmadd_ps(av, bv, *acc_row);
                }
            }
            boff += bstride;
        }
        for (r, acc_row) in acc.iter().enumerate() {
            _mm512_mask_storeu_ps(c.add((i0 + r) * ldc + j0), mask, *acc_row);
        }
    }

    /// AVX2+FMA axpy sweep for [`super::axpy_row`]: 256-bit `vfmadd`
    /// across the row, scalar `mul_add` tail — per element the same single
    /// exactly-rounded fma as the scalar sweep.
    ///
    /// # Safety
    ///
    /// `avx2` and `fma` must be available at runtime; `b.len() == c.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy_avx2(av: f32, b: &[f32], c: &mut [f32], zero_init: bool) {
        let n = c.len();
        let av8 = _mm256_set1_ps(av);
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut j = 0usize;
        if zero_init {
            let zero = _mm256_setzero_ps();
            while j + 8 <= n {
                let bv = _mm256_loadu_ps(bp.add(j));
                _mm256_storeu_ps(cp.add(j), _mm256_fmadd_ps(av8, bv, zero));
                j += 8;
            }
            while j < n {
                *cp.add(j) = av.mul_add(*bp.add(j), 0.0);
                j += 1;
            }
        } else {
            while j + 8 <= n {
                let bv = _mm256_loadu_ps(bp.add(j));
                let cv = _mm256_loadu_ps(cp.add(j));
                _mm256_storeu_ps(cp.add(j), _mm256_fmadd_ps(av8, bv, cv));
                j += 8;
            }
            while j < n {
                *cp.add(j) = av.mul_add(*bp.add(j), *cp.add(j));
                j += 1;
            }
        }
    }

    /// AVX-512F axpy sweep for [`super::axpy_row`]: 512-bit `vfmadd`
    /// across the row, scalar `mul_add` tail.
    ///
    /// # Safety
    ///
    /// `avx512f` must be available at runtime; `b.len() == c.len()`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy_avx512(av: f32, b: &[f32], c: &mut [f32], zero_init: bool) {
        let n = c.len();
        let av16 = _mm512_set1_ps(av);
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut j = 0usize;
        if zero_init {
            let zero = _mm512_setzero_ps();
            while j + 16 <= n {
                let bv = _mm512_loadu_ps(bp.add(j));
                _mm512_storeu_ps(cp.add(j), _mm512_fmadd_ps(av16, bv, zero));
                j += 16;
            }
            while j < n {
                *cp.add(j) = av.mul_add(*bp.add(j), 0.0);
                j += 1;
            }
        } else {
            while j + 16 <= n {
                let bv = _mm512_loadu_ps(bp.add(j));
                let cv = _mm512_loadu_ps(cp.add(j));
                _mm512_storeu_ps(cp.add(j), _mm512_fmadd_ps(av16, bv, cv));
                j += 16;
            }
            while j < n {
                *cp.add(j) = av.mul_add(*bp.add(j), *cp.add(j));
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_and_clamp() {
        assert!(SimdTier::Scalar < SimdTier::Avx2Fma);
        assert!(SimdTier::Avx2Fma < SimdTier::Avx512Fma);
        // set_tier clamps to the CPU's capability and round-trips.
        let best = detected_tier();
        set_tier(SimdTier::Avx512Fma);
        assert_eq!(active_tier(), best.min(SimdTier::Avx512Fma));
        set_tier(SimdTier::Scalar);
        assert_eq!(active_tier(), SimdTier::Scalar);
        set_tier(best);
        assert_eq!(active_tier(), best);
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2Fma.name(), "avx2");
        assert_eq!(SimdTier::Avx512Fma.name(), "avx512");
    }

    #[test]
    fn parse_simd_accepts_documented_grammar_only() {
        // Scalar escape hatch, in all spellings.
        for raw in ["0", "off", "scalar", " OFF ", "Scalar"] {
            assert_eq!(parse_simd(raw), Some(SimdTier::Scalar), "{raw:?}");
        }
        // AVX2 cap.
        assert_eq!(parse_simd("avx2"), Some(SimdTier::Avx2Fma));
        assert_eq!(parse_simd("AVX2"), Some(SimdTier::Avx2Fma));
        // Best-tier spellings (cap above everything, min() is identity).
        for raw in ["", "1", "on", "auto", "avx512", " Auto "] {
            assert_eq!(parse_simd(raw), Some(SimdTier::Avx512Fma), "{raw:?}");
        }
        // Everything else is rejected so env_tier falls back to the
        // detected tier (with a one-time warning).
        for raw in ["2", "sse", "avx", "true", "fastest", "avx2 "] {
            let trimmed_ok = raw.trim() == "avx2";
            assert_eq!(parse_simd(raw).is_none(), !trimmed_ok, "{raw:?}");
        }
    }
}
