//! 2-D pooling (max and average) with explicit backward passes.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Square window side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pool spec.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "pool spec must be positive: k={kernel} stride={stride}"
            )));
        }
        Ok(PoolSpec { kernel, stride })
    }

    /// Output spatial size for an input of side `h`.
    pub fn out_size(&self, h: usize) -> usize {
        if h < self.kernel {
            0
        } else {
            (h - self.kernel) / self.stride + 1
        }
    }
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]))
}

/// Max pooling over `[N, C, H, W]`; returns the output and the flat argmax
/// indices used for routing gradients in [`max_pool2d_backward`].
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = check_nchw(input, "max_pool2d")?;
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let x = input.as_slice();
    let o = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ki in 0..spec.kernel {
                        for kj in 0..spec.kernel {
                            let ii = oi * spec.stride + ki;
                            let jj = oj * spec.stride + kj;
                            let idx = base + ii * w + jj;
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oi) * ow + oj;
                    o[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Backward pass for max pooling; routes each output gradient to the input
/// position that achieved the maximum.
///
/// # Errors
///
/// Returns a rank error for non-NCHW gradients.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor> {
    check_nchw(grad_out, "max_pool2d_backward")?;
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.as_mut_slice();
    for (g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average pooling over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avg_pool2d")?;
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let x = input.as_slice();
    let o = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..spec.kernel {
                        let ii = oi * spec.stride + ki;
                        let row = base + ii * w + oj * spec.stride;
                        for kj in 0..spec.kernel {
                            acc += x[row + kj];
                        }
                    }
                    o[((ni * c + ci) * oh + oi) * ow + oj] = acc * inv;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass for average pooling; spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns a rank error for non-NCHW gradients.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    spec: &PoolSpec,
    input_shape: &[usize],
) -> Result<Tensor> {
    let (n, c, oh, ow) = check_nchw(grad_out, "avg_pool2d_backward")?;
    let (h, w) = (input_shape[2], input_shape[3]);
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    let g = grad_out.as_slice();
    let gi = grad_in.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let go = g[((ni * c + ci) * oh + oi) * ow + oj] * inv;
                    for ki in 0..spec.kernel {
                        let ii = oi * spec.stride + ki;
                        let row = base + ii * w + oj * spec.stride;
                        for kj in 0..spec.kernel {
                            gi[row + kj] += go;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let (out, _) = max_pool2d(&input, &spec).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let (_, argmax) = max_pool2d(&input, &spec).unwrap();
        let grad_out = Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]).unwrap();
        let gin = max_pool2d_backward(&grad_out, &argmax, &[1, 1, 2, 2]).unwrap();
        assert_eq!(gin.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let out = avg_pool2d(&input, &spec).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let spec = PoolSpec::new(2, 2).unwrap();
        let grad_out = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let gin = avg_pool2d_backward(&grad_out, &spec, &[1, 1, 2, 2]).unwrap();
        assert_eq!(gin.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pool_spec_rejects_zero() {
        assert!(PoolSpec::new(0, 1).is_err());
        assert!(PoolSpec::new(2, 0).is_err());
    }

    #[test]
    fn avg_pool_adjoint_property() {
        // <avg_pool(x), y> == <x, avg_pool_backward(y)>
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |_| rng.gen_range(-1.0..1.0));
        let spec = PoolSpec::new(2, 2).unwrap();
        let fx = avg_pool2d(&x, &spec).unwrap();
        let y = Tensor::from_fn(fx.shape(), |_| rng.gen_range(-1.0..1.0));
        let lhs: f64 = fx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let by = avg_pool2d_backward(&y, &spec, x.shape()).unwrap();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(by.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
