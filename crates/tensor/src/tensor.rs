use crate::{Result, TensorError};
use std::fmt;

/// A contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single data type flowing through every layer, optimizer
/// and pipeline stage in this project. It is intentionally simple: shape +
/// flat `Vec<f32>`, always contiguous, always row-major. Views and strides
/// are avoided so the pipeline engines can snapshot and restore weights by
/// cloning the underlying buffers.
///
/// # Example
///
/// ```
/// use pbp_tensor::Tensor;
///
/// let t = Tensor::zeros(&[3, 4]);
/// assert_eq!(t.shape(), &[3, 4]);
/// assert_eq!(t.len(), 12);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let volume: usize = shape.iter().product();
        Tensor {
            data: vec![0.0; volume],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let volume: usize = shape.iter().product();
        Tensor {
            data: vec![value; volume],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let volume: usize = shape.iter().product();
        if data.len() != volume {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: vec![data.len()],
        }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let volume: usize = shape.iter().product();
        Tensor {
            data: (0..volume).map(&mut f).collect(),
            shape: shape.to_vec(),
        }
    }

    /// The shape (dimension sizes) of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let volume: usize = shape.iter().product();
        if volume != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Reshapes in place without copying data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let volume: usize = shape.iter().product();
        if volume != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut flat = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(idx < dim, "index {idx} out of bounds for dim {i} ({dim})");
            flat = flat * dim + idx;
        }
        flat
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Applies `f` to each element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to each element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Verifies that another tensor has the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] labelled with `op` otherwise.
    pub fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }

    /// Returns `true` if every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// The squared L2 norm of the tensor viewed as a flat vector.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// The L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, …, {:.4}] ({} elems))",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_volume() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.as_slice()[5], 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_panics_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let m = t.map(|x| x * 2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn from_iterator_collects_rank1() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
