//! Persistent worker pool for data-parallel kernels.
//!
//! Large GEMMs are partitioned into independent chunks (disjoint regions of
//! the output matrix) and executed on a process-wide pool of worker threads.
//! The pool size comes from the `PBP_THREADS` environment variable (invalid
//! or zero values are ignored with a one-time warning), falling back to the
//! machine's available parallelism; [`set_max_threads`] overrides it at
//! runtime (used by benchmarks and the kernel-equivalence tests to
//! sweep thread counts inside one process). Engines that run their own
//! worker threads park cores with [`reserve`] so kernels and stage workers
//! share the machine instead of oversubscribing it.
//!
//! # Determinism
//!
//! Partitioning is *deterministic*: chunk boundaries depend only on the
//! problem shape, never on the worker count, and every chunk runs exactly the
//! same serial code whether it executes inline (one thread) or on a worker.
//! Because chunks write disjoint outputs and floating-point accumulation
//! order inside a chunk is fixed, kernel results are bit-identical at any
//! thread count — `PBP_THREADS=1` and `PBP_THREADS=64` produce the same
//! bytes. `tests/proptest_kernels.rs` enforces this property.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// A unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Effective thread cap. Zero means "not yet resolved"; the first call to
/// [`max_threads`] resolves it from `PBP_THREADS` / available parallelism.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cores currently reserved away from the kernel pool by [`reserve`] (the
/// threaded pipeline engine parks one reservation per busy stage worker
/// while a stream is in flight).
static RESERVED: AtomicUsize = AtomicUsize::new(0);

struct PoolState {
    /// Shared MPMC job queue; every worker holds a clone of the receiver.
    tx: Sender<Job>,
    /// Template receiver cloned when new workers are spawned.
    rx: Receiver<Job>,
    /// Number of workers spawned so far (workers are added lazily and never
    /// exit — the pool is persistent for the process lifetime).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<PoolState> = OnceLock::new();

/// Parses a `PBP_THREADS` value. Rejects (returns `None` for) anything
/// that is not an integer ≥ 1 — including `0`, which would silently
/// disable all kernels if taken literally.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// One-time warning gate for invalid `PBP_THREADS` values: the resolver
/// can run on any thread, and repeating the warning per kernel call
/// would flood stderr.
static ENV_WARNING: std::sync::Once = std::sync::Once::new();

fn env_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("PBP_THREADS") {
        Err(_) => fallback(),
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
            ENV_WARNING.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid PBP_THREADS={raw:?} \
                     (expected an integer >= 1); using available parallelism"
                );
            });
            fallback()
        }),
    }
}

/// The configured thread cap, before any active [`reserve`] is subtracted.
/// Resolved once from `PBP_THREADS` or the machine's available parallelism;
/// override with [`set_max_threads`]. Engines use this for *planning* how
/// many cores exist to divide between stage workers and the kernel pool.
pub fn configured_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = env_threads();
            // A racing first call resolves to the same value; last store wins
            // harmlessly.
            MAX_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// The number of threads kernels may use right now (including the calling
/// thread's share of the work): the configured cap minus any cores parked
/// by outstanding [`reserve`] guards, floored at 1 so kernels always make
/// progress. Because kernel results are bit-identical at any thread count,
/// reservations only change performance, never results.
pub fn max_threads() -> usize {
    let cap = configured_threads();
    cap.saturating_sub(RESERVED.load(Ordering::Relaxed)).max(1)
}

/// RAII guard for a core reservation taken with [`reserve`]. Dropping it
/// returns the cores to the kernel pool.
#[derive(Debug)]
pub struct CoreReservation {
    n: usize,
}

impl Drop for CoreReservation {
    fn drop(&mut self) {
        RESERVED.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// Parks `n` cores away from the kernel pool until the returned guard is
/// dropped. Used by the threaded pipeline engine to co-schedule: while its
/// stage worker threads are busy, the kernel pool is shrunk to the leftover
/// cores instead of oversubscribing the machine. Reservations stack
/// (guards from different engines add up), and [`max_threads`] never drops
/// below 1, so an over-reservation degrades to serial kernels rather than
/// deadlock.
pub fn reserve(n: usize) -> CoreReservation {
    RESERVED.fetch_add(n, Ordering::Relaxed);
    CoreReservation { n }
}

/// Overrides the kernel thread cap for the whole process (clamped to ≥ 1).
///
/// `1` disables the pool: every kernel runs serially on the calling thread.
/// Values above the spawned worker count grow the pool on the next parallel
/// dispatch. Because kernel results are bit-identical at any thread count,
/// flipping this at runtime only changes performance, never results.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

fn pool() -> &'static PoolState {
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        PoolState {
            tx,
            rx,
            spawned: Mutex::new(0),
        }
    })
}

/// Spawns workers until at least `n` exist.
fn ensure_workers(n: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().expect("kernel pool lock");
    while *spawned < n {
        let rx = p.rx.clone();
        std::thread::Builder::new()
            .name(format!("pbp-kernel-{}", *spawned))
            .spawn(move || {
                // Jobs are panic-wrapped by `parallel_for`, so a worker only
                // exits when the process does (the queue never disconnects:
                // the sender lives in a static).
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("spawn kernel pool worker");
        *spawned += 1;
    }
}

/// Runs `body(0)`, `body(1)`, …, `body(chunks - 1)`, using the worker pool
/// when more than one thread is configured and inline on the calling thread
/// otherwise. Blocks until every chunk has completed.
///
/// Chunks must write disjoint data; the caller is responsible for the
/// partitioning. The chunk *order of execution* is unspecified, so bodies
/// must not depend on each other.
///
/// # Panics
///
/// If any chunk panics, the panic is captured on the worker, all remaining
/// chunks are still drained (so no borrow outlives this call), and the
/// payload is re-raised on the calling thread.
pub fn parallel_for(chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    let threads = max_threads();
    if chunks <= 1 || threads <= 1 {
        for i in 0..chunks {
            body(i);
        }
        return;
    }
    ensure_workers(threads.min(chunks));
    // SAFETY: the closure reference is only shared with pool workers through
    // jobs whose completion messages are all drained below before this
    // function returns (including the panic path), so the 'static lifetime
    // never outlives the actual borrow.
    let body_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
    let (done_tx, done_rx) = unbounded::<std::thread::Result<()>>();
    let p = pool();
    for i in 0..chunks {
        let done = done_tx.clone();
        p.tx.send(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body_static(i)));
            // Receiver outlives the loop below; a send can only fail if the
            // caller already panicked, in which case dropping is fine.
            let _ = done.send(result);
        }))
        .expect("kernel pool queue");
    }
    drop(done_tx);
    let mut panic_payload = None;
    for _ in 0..chunks {
        match done_rx.recv().expect("kernel pool completion") {
            Ok(()) => {}
            Err(payload) => panic_payload = Some(payload),
        }
    }
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Serializes tests that mutate the process-global thread cap, so the
    /// exact-value assertions below cannot race each other.
    static CAP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn serial_when_single_threaded() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(1);
        let hits = AtomicU32::new(0);
        parallel_for(5, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn runs_every_chunk_exactly_once_on_workers() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(4);
        let flags: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        parallel_for(flags.len(), &|i| {
            flags[i].fetch_add(1, Ordering::SeqCst);
        });
        set_max_threads(1);
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::SeqCst), 1, "chunk {i}");
        }
    }

    #[test]
    fn chunk_panic_propagates_to_caller() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(2);
        let result = std::panic::catch_unwind(|| {
            parallel_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        set_max_threads(1);
        assert!(result.is_err(), "panic must surface on the caller");
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("  16 \n"), Some(16));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("0"), None, "zero would disable kernels");
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("eight"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("4.5"), None);
    }

    #[test]
    fn reservations_shrink_and_restore_the_cap() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(8);
        assert_eq!(max_threads(), 8);
        {
            let _r = reserve(3);
            assert_eq!(max_threads(), 5);
            {
                let _r2 = reserve(10);
                // Over-reservation floors at 1 instead of deadlocking.
                assert_eq!(max_threads(), 1);
            }
            assert_eq!(max_threads(), 5);
        }
        assert_eq!(max_threads(), 8);
        assert_eq!(configured_threads(), 8, "reserve never touches the cap");
        set_max_threads(1);
    }

    #[test]
    fn threads_env_override_wins() {
        let _guard = CAP_LOCK.lock().unwrap();
        // Can't portably mutate the environment mid-process for OnceLock-free
        // statics, but the setter must round-trip and clamp.
        set_max_threads(0);
        assert_eq!(max_threads(), 1);
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(1);
    }
}
