//! # pbp-tensor
//!
//! A minimal, dependency-light CPU tensor substrate used by the
//! pipelined-backprop reproduction of *"Pipelined Backpropagation at Scale"*
//! (Kosson et al., MLSYS 2021).
//!
//! The crate provides a contiguous, row-major `f32` [`Tensor`] with exactly
//! the operations the neural-network and pipeline crates need: elementwise
//! arithmetic, matrix multiplication, 2-D convolution (via im2col), pooling,
//! reductions and seeded random initialization. It deliberately avoids
//! autograd — backward passes in this project are explicit per-layer
//! functions, because fine-grained pipelined backpropagation needs direct
//! control over when and with which weights each stage runs its forward and
//! backward transformations.
//!
//! # Example
//!
//! ```
//! use pbp_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), pbp_tensor::TensorError>(())
//! ```

// Numeric kernels in this crate iterate with explicit indices when several
// parallel buffers are walked in lockstep; clippy's iterator-chain
// suggestion obscures the stride arithmetic there.
#![allow(clippy::needless_range_loop)]

mod error;
mod init;
mod tensor;

pub mod ops;
pub mod pool;

pub use error::TensorError;
pub use init::{he_normal, normal, uniform, xavier_uniform};
pub use tensor::Tensor;

/// Convenience alias for results returned by fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
