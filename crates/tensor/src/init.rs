//! Seeded random initializers.
//!
//! All initializers take an explicit RNG so that every experiment in the
//! reproduction is deterministic given its seed — run-to-run comparisons of
//! training methods (Table 1, Table 5 of the paper) rely on shared seeds.

use crate::Tensor;
use rand::Rng;

/// Samples a tensor with i.i.d. normal entries `N(mean, std²)`.
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    // Box-Muller from two uniforms; avoids depending on rand_distr.
    let volume: usize = shape.iter().product();
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < volume {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape).expect("volume computed from shape")
}

/// Samples a tensor with i.i.d. uniform entries in `[low, high)`.
pub fn uniform(shape: &[usize], low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.gen_range(low..high))
}

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in)²)`.
///
/// This is the initialization used by He et al. (2016a), which the paper's
/// experiments adopt for both ResNet and VGG training.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Xavier (Glorot) uniform initialization over `[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&[10_000], 1.0, 2.0, &mut rng);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = he_normal(&[20_000], 50, &mut rng);
        let var: f32 = t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var - 0.04).abs() < 0.01, "var {var}"); // 2/50 = 0.04
    }

    #[test]
    fn initializers_are_deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            normal(&[64], 0.0, 1.0, &mut a).as_slice(),
            normal(&[64], 0.0, 1.0, &mut b).as_slice()
        );
    }

    #[test]
    fn xavier_bounds_follow_fans() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = xavier_uniform(&[1000], 3, 3, &mut rng);
        let a = (6.0f32 / 6.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }
}
