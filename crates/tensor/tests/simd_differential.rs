//! Differential suite for the SIMD GEMM micro-kernels.
//!
//! Every SIMD tier (`scalar`, `avx2`, `avx512`) computes each output
//! element as one fused-multiply-add chain in increasing `k` order, and an
//! IEEE 754 fma rounds exactly once — so the tiers are the *same function*
//! and every comparison here is `to_bits` equality, never a tolerance (see
//! `pbp_tensor::ops::simd`). The shapes are chosen to hit the dispatch
//! edges: full `MR×NR` register tiles, ragged `nr < NR` right-edge tiles
//! (masked SIMD variants — every width 1..NR swept below), ragged `mr < MR`
//! row remainders, single and multiple `KC` panels, the short-reduction
//! `tn` path, the small-shape `simple` path (whose `nn`/`tn` row sweeps
//! also dispatch to the per-tier axpy micro-kernels), and non-finite
//! inputs.
//!
//! Tier and thread caps are process globals; `GLOBALS_LOCK` serializes the
//! tests that flip them so each test measures the configuration it names.
//! (Correctness never depends on the lock — every configuration yields the
//! same bits — it only keeps the tests honest about what they exercised.)

use pbp_tensor::ops::simd::{detected_tier, set_tier, SimdTier};
use pbp_tensor::ops::{gemm_nn, gemm_nt, gemm_tn, reference};
use pbp_tensor::pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The tiers this CPU can actually run, weakest first.
fn supported_tiers() -> Vec<SimdTier> {
    [SimdTier::Scalar, SimdTier::Avx2Fma, SimdTier::Avx512Fma]
        .into_iter()
        .filter(|&t| t <= detected_tier())
        .collect()
}

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{context}: element {i} differs: {g:?} ({:#010x}) vs {w:?} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Shapes straddling every micro-kernel edge. `MR = 4`, `NR = 16`,
/// `KC = 256`, tiled threshold 16·1024 elements (see `ops::gemm`).
const EDGE_SHAPES: [(usize, usize, usize, &str); 6] = [
    // Below the tiled threshold: the `simple` path, no SIMD dispatch at
    // all — pins that the dispatch *boundary* is also tier-independent.
    (4, 16, 16, "simple-path"),
    // Exactly one full MR×NR tile, k = KC exactly (one full panel).
    (4, 256, 16, "one-full-tile"),
    // Ragged rows (9 = 2·MR + 1) and columns (150 = 9·NR + 6), k < KC:
    // SIMD tiles and scalar edge tiles meet in one output.
    (9, 120, 150, "ragged-both"),
    // k > KC: two k-panels accumulate into the same tile (load_c path).
    (8, 300, 32, "two-panels"),
    // mr < MR everywhere, exactly NR wide, multi-panel.
    (3, 400, 16, "short-rows"),
    // Everything at once: ragged rows, ragged columns, two panels.
    (5, 260, 47, "ragged-multi-panel"),
];

/// All three layouts × both accumulate modes × every supported tier, over
/// the edge shapes, against the naive reference — bitwise.
#[test]
fn every_tier_matches_reference_bitwise_across_edge_shapes() {
    let _g = lock();
    pool::set_max_threads(1);
    for &(m, k, n, tag) in &EDGE_SHAPES {
        let a_nn = rand_vec(m * k, 11);
        let b_nn = rand_vec(k * n, 12);
        let b_nt = rand_vec(n * k, 13);
        let a_tn = rand_vec(k * m, 14);
        let init = rand_vec(m * n, 15);
        for acc in [false, true] {
            let base = if acc { init.clone() } else { vec![0.0; m * n] };

            let mut want = base.clone();
            reference::matmul_acc_ref(&a_nn, &b_nn, &mut want, m, k, n);
            let mut want_nt = base.clone();
            reference::matmul_nt_acc_ref(&a_nn, &b_nt, &mut want_nt, m, k, n);
            let mut want_tn = base.clone();
            reference::matmul_tn_acc_ref(&a_tn, &b_nn, &mut want_tn, m, k, n);

            for tier in supported_tiers() {
                set_tier(tier);
                let ctx = |layout: &str| {
                    format!("{layout} {tag} {m}x{k}x{n} acc={acc} tier={}", tier.name())
                };
                let mut got = base.clone();
                gemm_nn(&a_nn, &b_nn, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want, &ctx("nn"));

                let mut got = base.clone();
                gemm_nt(&a_nn, &b_nt, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want_nt, &ctx("nt"));

                let mut got = base.clone();
                gemm_tn(&a_tn, &b_nn, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want_tn, &ctx("tn"));
            }
        }
    }
    set_tier(detected_tier());
    pool::set_max_threads(1);
}

/// The full dispatch grid — pool on/off × SIMD tier — on a product large
/// enough to take the parallel tiled path when threads allow it. Every
/// cell must produce the same bytes as the serial scalar reference.
#[test]
fn pool_and_simd_grid_stays_bit_identical() {
    let _g = lock();
    let (m, k, n) = (260usize, 100usize, 260usize);
    let a = rand_vec(m * k, 21);
    let b = rand_vec(k * n, 22);
    let mut want = vec![0.0; m * n];
    reference::matmul_ref(&a, &b, &mut want, m, k, n);
    for &threads in &[1usize, 2, 8] {
        pool::set_max_threads(threads);
        for tier in supported_tiers() {
            set_tier(tier);
            let mut got = vec![0.0; m * n];
            gemm_nn(&a, &b, &mut got, m, k, n, false);
            assert_bits_eq(
                &got,
                &want,
                &format!("grid t={threads} tier={}", tier.name()),
            );
        }
    }
    set_tier(detected_tier());
    pool::set_max_threads(1);
}

/// The `tn` layout has a dedicated short-reduction path for
/// `k ≤ TN_AXPY_MAX_K` (axpy sweeps instead of packed tiles). Its sweeps
/// dispatch to the per-tier `axpy_row` micro-kernels, whose `vfmadd`
/// chains are the same exactly-rounded fmas as the scalar sweep — so
/// flipping tiers must not change a single bit.
#[test]
fn tn_short_reduction_is_tier_independent() {
    let _g = lock();
    pool::set_max_threads(1);
    let (m, k, n) = (130usize, 8usize, 130usize);
    let a_tn = rand_vec(k * m, 31);
    let b = rand_vec(k * n, 32);
    let init = rand_vec(m * n, 33);
    for acc in [false, true] {
        let mut want = if acc { init.clone() } else { vec![0.0; m * n] };
        reference::matmul_tn_acc_ref(&a_tn, &b, &mut want, m, k, n);
        for tier in supported_tiers() {
            set_tier(tier);
            let mut got = if acc { init.clone() } else { vec![0.0; m * n] };
            gemm_tn(&a_tn, &b, &mut got, m, k, n, acc);
            assert_bits_eq(
                &got,
                &want,
                &format!("tn-short k={k} acc={acc} tier={}", tier.name()),
            );
        }
    }
    set_tier(detected_tier());
}

/// The tn-axpy micro-kernel edges, per tier: shapes chosen so the chunk
/// grid splits by rows and by columns, row widths cover full vector lanes,
/// ragged tails shorter than one AVX2 lane, and `k` hits both 1 (a single
/// deferred weight-grad microbatch row) and `TN_AXPY_MAX_K` itself.
/// Bitwise against the naive reference in every cell.
#[test]
fn tn_axpy_micro_kernel_edges_match_reference_per_tier() {
    let _g = lock();
    pool::set_max_threads(1);
    const AXPY_SHAPES: [(usize, usize, usize, &str); 4] = [
        // n > m: chunked by columns (width 32, then a 5-wide scalar tail).
        (40, 5, 517, "by-cols-ragged-tail"),
        // m > n: chunked by rows, full-width sweeps with a 96-float row.
        (200, 3, 96, "by-rows-full-lanes"),
        // k at the dispatch boundary TN_AXPY_MAX_K = 24.
        (64, 24, 200, "k-at-boundary"),
        // k = 1: exactly the deferred Linear weight-grad shape (one
        // microbatch row), overwrite mode is a single zero-init sweep.
        (140, 1, 140, "k-one"),
    ];
    for &(m, k, n, tag) in &AXPY_SHAPES {
        let a_tn = rand_vec(k * m, 61);
        let b = rand_vec(k * n, 62);
        let init = rand_vec(m * n, 63);
        for acc in [false, true] {
            let mut want = if acc { init.clone() } else { vec![0.0; m * n] };
            reference::matmul_tn_acc_ref(&a_tn, &b, &mut want, m, k, n);
            for tier in supported_tiers() {
                set_tier(tier);
                let mut got = if acc { init.clone() } else { vec![0.0; m * n] };
                gemm_tn(&a_tn, &b, &mut got, m, k, n, acc);
                assert_bits_eq(
                    &got,
                    &want,
                    &format!("tn-axpy {tag} {m}x{k}x{n} acc={acc} tier={}", tier.name()),
                );
            }
        }
    }
    set_tier(detected_tier());
}

/// Every ragged right-edge width `nr` in `1..NR`, per tier, per layout.
/// The masked micro-kernels read the zero-padded packed `B` panel at full
/// width and mask only the `C` loads/stores — masked-off lanes may compute
/// on the padding but are never stored, so each width must match the
/// scalar tile (and the naive reference) bit for bit. `n = NR + nr` gives
/// one full-width tile followed by the ragged edge; `m = MR + 1` adds a
/// ragged row remainder on top; `k` spans two `KC` panels so the masked
/// `load_c` path (accumulating the second panel onto the first) runs too.
#[test]
fn every_ragged_edge_width_matches_reference_per_tier() {
    let _g = lock();
    pool::set_max_threads(1);
    let (m, k) = (5usize, 300usize);
    for nr in 1..16usize {
        let n = 16 + nr;
        let a_nn = rand_vec(m * k, 100 + nr as u64);
        let b_nn = rand_vec(k * n, 200 + nr as u64);
        let a_tn = rand_vec(k * m, 300 + nr as u64);
        let b_nt = rand_vec(n * k, 400 + nr as u64);
        let init = rand_vec(m * n, 500 + nr as u64);
        for acc in [false, true] {
            let base = if acc { init.clone() } else { vec![0.0; m * n] };
            let mut want = base.clone();
            reference::matmul_acc_ref(&a_nn, &b_nn, &mut want, m, k, n);
            let mut want_tn = base.clone();
            reference::matmul_tn_acc_ref(&a_tn, &b_nn, &mut want_tn, m, k, n);
            let mut want_nt = base.clone();
            reference::matmul_nt_acc_ref(&a_nn, &b_nt, &mut want_nt, m, k, n);
            for tier in supported_tiers() {
                set_tier(tier);
                let ctx = |layout: &str| format!("{layout} nr={nr} acc={acc} tier={}", tier.name());
                let mut got = base.clone();
                gemm_nn(&a_nn, &b_nn, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want, &ctx("ragged-nn"));
                let mut got = base.clone();
                gemm_tn(&a_tn, &b_nn, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want_tn, &ctx("ragged-tn"));
                let mut got = base.clone();
                gemm_nt(&a_nn, &b_nt, &mut got, m, k, n, acc);
                assert_bits_eq(&got, &want_nt, &ctx("ragged-nt"));
            }
        }
    }
    set_tier(detected_tier());
}

/// The small-shape `simple` path — everything under the tiled threshold,
/// the batch-1 serving hot path — now dispatches its `nn` and `tn` row
/// sweeps to the per-tier axpy micro-kernels. Sweep widths covering full
/// AVX-512/AVX2 lanes, sub-lane tails, and single columns, per tier,
/// bitwise against the reference.
#[test]
fn simple_path_small_shapes_are_tier_independent() {
    let _g = lock();
    pool::set_max_threads(1);
    for &n in &[1usize, 3, 7, 8, 9, 15, 16, 17, 23, 31] {
        let (m, k) = (6usize, 10usize);
        debug_assert!(m * k * n < 16 * 1024, "must stay on the simple path");
        let a_nn = rand_vec(m * k, 700 + n as u64);
        let b_nn = rand_vec(k * n, 800 + n as u64);
        let a_tn = rand_vec(k * m, 900 + n as u64);
        let b_nt = rand_vec(n * k, 1000 + n as u64);
        let mut want = vec![0.0; m * n];
        reference::matmul_ref(&a_nn, &b_nn, &mut want, m, k, n);
        let mut want_tn = vec![0.0; m * n];
        reference::matmul_tn_ref(&a_tn, &b_nn, &mut want_tn, m, k, n);
        let mut want_nt = vec![0.0; m * n];
        reference::matmul_nt_ref(&a_nn, &b_nt, &mut want_nt, m, k, n);
        for tier in supported_tiers() {
            set_tier(tier);
            let ctx = |layout: &str| format!("{layout} n={n} tier={}", tier.name());
            let mut got = vec![0.0; m * n];
            gemm_nn(&a_nn, &b_nn, &mut got, m, k, n, false);
            assert_bits_eq(&got, &want, &ctx("simple-nn"));
            let mut got = vec![0.0; m * n];
            gemm_tn(&a_tn, &b_nn, &mut got, m, k, n, false);
            assert_bits_eq(&got, &want_tn, &ctx("simple-tn"));
            let mut got = vec![0.0; m * n];
            gemm_nt(&a_nn, &b_nt, &mut got, m, k, n, false);
            assert_bits_eq(&got, &want_nt, &ctx("simple-nt"));
        }
    }
    set_tier(detected_tier());
}

/// Non-finite values flow through the same fma chains on every tier:
/// `vfmadd` and `f32::mul_add` share operand order, so NaN selection and
/// `∞·0 → NaN` land identically. Bitwise equality including NaN payloads.
#[test]
fn nan_and_inf_propagate_identically_across_tiers() {
    let _g = lock();
    pool::set_max_threads(1);
    // 8·64·32 = 16384 elements: exactly the tiled threshold, so the SIMD
    // tiles are in play; n = 2·NR keeps every column tile full width.
    let (m, k, n) = (8usize, 64usize, 32usize);
    let mut a = rand_vec(m * k, 41);
    let mut b = rand_vec(k * n, 42);
    a[3] = f32::NAN;
    a[m * k / 2] = f32::INFINITY;
    b[7] = f32::NEG_INFINITY;
    b[k * n - 5] = f32::NAN;
    b[11] = 0.0; // meets the ∞ row: exercises ∞·0 → NaN.

    set_tier(SimdTier::Scalar);
    let mut want = vec![0.0; m * n];
    gemm_nn(&a, &b, &mut want, m, k, n, false);
    assert!(
        want.iter().any(|v| v.is_nan()),
        "test inputs must actually produce NaNs"
    );
    let mut want_ref = vec![0.0; m * n];
    reference::matmul_ref(&a, &b, &mut want_ref, m, k, n);
    assert_bits_eq(&want, &want_ref, "scalar tier vs reference with NaN/∞");

    for tier in supported_tiers() {
        set_tier(tier);
        let mut got = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut got, m, k, n, false);
        assert_bits_eq(&got, &want, &format!("non-finite tier={}", tier.name()));
    }
    set_tier(detected_tier());
}

/// `set_tier(Scalar)` is the in-process face of the `PBP_SIMD=0` escape
/// hatch: after it, dispatch reports scalar regardless of CPU features
/// (the process-level env path is exercised by `scripts/check.sh`).
#[test]
fn scalar_override_wins_regardless_of_cpu_features() {
    let _g = lock();
    set_tier(SimdTier::Scalar);
    assert_eq!(pbp_tensor::ops::simd::active_tier(), SimdTier::Scalar);
    // And requesting more than the CPU has clamps, never lies.
    set_tier(SimdTier::Avx512Fma);
    assert_eq!(
        pbp_tensor::ops::simd::active_tier(),
        detected_tier().min(SimdTier::Avx512Fma)
    );
    set_tier(detected_tier());
}
