//! Property-based tests for tensor operations.

use pbp_tensor::ops::{
    avg_pool2d, avg_pool2d_backward, col2im, conv2d, conv2d_batched_reusing, im2col, Conv2dSpec,
    ConvBatchScratch, PoolSpec,
};
use pbp_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn add_is_commutative(data in tensor_strategy(24)) {
        let a = Tensor::from_vec(data[..12].to_vec(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(data[12..].to_vec(), &[3, 4]).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn sub_then_add_round_trips(data in tensor_strategy(16)) {
        let a = Tensor::from_vec(data[..8].to_vec(), &[8]).unwrap();
        let b = Tensor::from_vec(data[8..].to_vec(), &[8]).unwrap();
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn scale_is_linear(data in tensor_strategy(8), s in -4.0f32..4.0) {
        let a = Tensor::from_vec(data, &[8]).unwrap();
        let direct = a.scale(2.0 * s);
        let composed = a.scale(s).scale(2.0);
        for (x, y) in direct.as_slice().iter().zip(composed.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn matmul_identity_is_noop(data in tensor_strategy(12)) {
        let a = Tensor::from_vec(data, &[3, 4]).unwrap();
        let out = a.matmul(&Tensor::eye(4)).unwrap();
        prop_assert_eq!(out.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_distributes_over_addition(data in tensor_strategy(36)) {
        // A(B + C) == AB + AC
        let a = Tensor::from_vec(data[..12].to_vec(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(data[12..24].to_vec(), &[4, 3]).unwrap();
        let c = Tensor::from_vec(data[24..].to_vec(), &[4, 3]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involutive(data in tensor_strategy(15)) {
        let a = Tensor::from_vec(data, &[3, 5]).unwrap();
        let tt = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt.as_slice(), a.as_slice());
    }

    #[test]
    fn im2col_col2im_adjoint(
        x in tensor_strategy(2 * 5 * 5),
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        // <im2col(x), y> == <x, col2im(y)> for every geometry.
        let spec = Conv2dSpec::new(2, 1, 3, stride, padding).unwrap();
        let (c, h, w) = (2usize, 5usize, 5usize);
        let mut cols = Vec::new();
        im2col(&x, c, h, w, &spec, &mut cols);
        // Deterministic pseudo-random y from the geometry.
        let y: Vec<f32> = (0..cols.len()).map(|i| ((i * 37 % 17) as f32 - 8.0) / 8.0).collect();
        let lhs: f64 = cols.iter().zip(&y).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, c, h, w, &spec, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn avg_pool_preserves_mean(data in tensor_strategy(16)) {
        // 2x2 avg pooling with stride 2 over a 4x4 image preserves the
        // overall mean.
        let x = Tensor::from_vec(data, &[1, 1, 4, 4]).unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let y = avg_pool2d(&x, &spec).unwrap();
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    #[test]
    fn avg_pool_backward_conserves_gradient_mass(grad in tensor_strategy(4)) {
        let g = Tensor::from_vec(grad, &[1, 1, 2, 2]).unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let gin = avg_pool2d_backward(&g, &spec, &[1, 1, 4, 4]).unwrap();
        prop_assert!((gin.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn reshape_preserves_all_elements(data in tensor_strategy(24)) {
        let a = Tensor::from_vec(data, &[2, 3, 4]).unwrap();
        let b = a.reshape(&[4, 6]).unwrap();
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert_eq!(b.len(), 24);
    }

    #[test]
    fn norm_is_scale_homogeneous(data in tensor_strategy(10), s in 0.1f32..5.0) {
        let a = Tensor::from_vec(data, &[10]).unwrap();
        let scaled = a.scale(s);
        prop_assert!((scaled.norm() - (s as f64) * a.norm()).abs() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn batched_conv_is_bit_identical_to_per_sample(
        n in 1usize..9,
        channels in 1usize..4,
        oc in 1usize..5,
        side in 3usize..8,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u32..1000,
    ) {
        // The batched lowering (wide strip-mined im2col GEMM) must agree
        // with the per-sample path bit for bit at every geometry and batch
        // size — the invariant dynamic batching in pbp-serve rests on.
        let spec = Conv2dSpec::new(channels, oc, 3, stride, padding).unwrap();
        prop_assume!(spec.out_size(side) > 0);
        let len = n * channels * side * side;
        let data: Vec<f32> = (0..len)
            .map(|i| (((i as u32).wrapping_mul(seed.wrapping_mul(2654435761).max(1)) >> 16) % 64) as f32 / 8.0 - 4.0)
            .collect();
        let x = Tensor::from_vec(data, &[n, channels, side, side]).unwrap();
        let wlen = oc * channels * 9;
        let wdata: Vec<f32> = (0..wlen).map(|i| ((i * 131 % 97) as f32 - 48.0) / 32.0).collect();
        let w = Tensor::from_vec(wdata, &spec.weight_shape()).unwrap();
        let (per_sample, _cols) = conv2d(&x, &w, &spec).unwrap();
        let mut scratch = ConvBatchScratch::default();
        let batched = conv2d_batched_reusing(&x, &w, &spec, &mut scratch).unwrap();
        prop_assert_eq!(batched.shape(), per_sample.shape());
        for (i, (b, p)) in batched.as_slice().iter().zip(per_sample.as_slice()).enumerate() {
            prop_assert_eq!(b.to_bits(), p.to_bits(),
                "element {} differs: {} vs {}", i, b, p);
        }
        // Scratch reuse across a different batch size must not leak state.
        let x1 = Tensor::from_vec(
            x.as_slice()[..channels * side * side].to_vec(),
            &[1, channels, side, side],
        ).unwrap();
        let again = conv2d_batched_reusing(&x1, &w, &spec, &mut scratch).unwrap();
        let (want1, _) = conv2d(&x1, &w, &spec).unwrap();
        for (b, p) in again.as_slice().iter().zip(want1.as_slice()) {
            prop_assert_eq!(b.to_bits(), p.to_bits());
        }
    }
}
