//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over byte slices.
//! Table-driven; the table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (same value as zlib's `crc32(0, ...)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC32 over multiple byte slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Feeds more bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"");
        inc.update(b"56789");
        assert_eq!(inc.finish(), crc32(b"123456789"));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"pipelined backprop");
        let mut flipped = b"pipelined backprop".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
