//! Fault-tolerant training snapshots.
//!
//! This crate defines the `PBPSNAP1` container: a versioned, checksummed,
//! atomically-written archive of named sections, each carrying an opaque
//! byte payload guarded by a CRC32. It is the storage layer behind
//! full-training-state capture — network parameters, per-stage optimizer
//! state, pipeline in-flight buffers, data-stream cursors, and metrics
//! counters all serialize through the [`Snapshottable`] trait into
//! sections of one container, so a killed run can resume bit-identically.
//!
//! Layering: this crate depends only on `pbp-tensor` (for tensor
//! serialization helpers). The `optim`, `nn`, `data`, and `pipeline`
//! crates implement [`Snapshottable`] for their own state types; the
//! pipeline crate owns the periodic-snapshot runner and the resume logic.
//!
//! # Container format (version 1)
//!
//! ```text
//! magic   8 bytes  b"PBPSNAP1"
//! version u32 LE   1
//! count   u32 LE   number of sections
//! section (repeated `count` times):
//!   name_len u16 LE
//!   name     name_len bytes, UTF-8
//!   crc      u32 LE, CRC32 (IEEE) of the name bytes then the payload
//!   len      u64 LE, payload length in bytes
//!   payload  len bytes
//! ```
//!
//! Writes go to a temp file in the destination directory followed by an
//! atomic rename, so a crash mid-write never corrupts the previous
//! snapshot. Reads verify the magic, version, and every section CRC up
//! front and return typed [`SnapshotError`]s — truncation, foreign data,
//! and bit flips are reported, never panicked on.

mod codec;
mod container;
mod crc;
mod error;

pub use codec::{StateReader, StateWriter};
pub use container::{
    latest_snapshot, latest_snapshot_with_prefix, latest_valid_snapshot,
    latest_valid_snapshot_with_prefix, rank_prefix, snapshot_file_name, valid_snapshot_counters,
    SnapshotArchive, SnapshotBuilder, MAGIC, SNAP_PREFIX, VERSION,
};
pub use crc::{crc32, Crc32};
pub use error::SnapshotError;

/// Full-state serialization into / out of the snapshot byte codec.
///
/// Implementations must round-trip exactly: `read_state` applied to the
/// bytes produced by `write_state` restores the receiver to a state that
/// is bit-identical for all subsequent computation. `read_state` is
/// called on a freshly-constructed value of the same configuration
/// (layout checks belong in the implementation, reported as
/// [`SnapshotError::Mismatch`]).
pub trait Snapshottable {
    /// Appends the complete state to the writer.
    fn write_state(&self, w: &mut StateWriter);

    /// Restores the complete state from the reader.
    fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}
