//! Typed snapshot errors: every corruption mode maps to a variant so
//! callers (and tests) can distinguish truncation from foreign data from
//! bit flips — none of them panic.

use std::fmt;

/// Errors from writing, reading, or applying a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the `PBPSNAP1` magic.
    BadMagic,
    /// The container version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// A section's payload failed its CRC32 check.
    ChecksumMismatch(String),
    /// A section required by the reader is absent.
    MissingSection(String),
    /// The byte stream is structurally invalid (truncated, bad counts,
    /// invalid UTF-8, out-of-range values).
    Corrupt(String),
    /// The stored state does not fit the object being restored
    /// (stage/layer/shape disagreement).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PBPSNAP1 snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::ChecksumMismatch(name) => {
                write!(f, "checksum mismatch in section {name:?}")
            }
            SnapshotError::MissingSection(name) => write!(f, "missing section {name:?}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Mismatch(what) => write!(f, "snapshot/state mismatch: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        // A short read while parsing the container is corruption, not an
        // environment failure — report it as such so callers see one
        // truncation variant regardless of where the bytes ran out.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Corrupt("truncated container".into())
        } else {
            SnapshotError::Io(e)
        }
    }
}
