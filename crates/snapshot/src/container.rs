//! The `PBPSNAP1` section container: build, atomic save, verified load.

use crate::crc::Crc32;
use crate::error::SnapshotError;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes at the head of every snapshot file.
pub const MAGIC: &[u8; 8] = b"PBPSNAP1";

/// Container version this crate writes and reads.
pub const VERSION: u32 = 1;

/// Upper bound on the section count; anything larger is corruption.
const MAX_SECTIONS: u32 = 1 << 20;

/// Accumulates named sections and writes them as one container.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Adds a named section. Re-adding a name replaces the previous
    /// payload (last writer wins), keeping builders idempotent.
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Section names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serializes the container into a writer.
    pub fn write_to(&self, out: &mut impl Write) -> Result<(), SnapshotError> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (name, payload) in &self.sections {
            let name_bytes = name.as_bytes();
            assert!(
                name_bytes.len() <= u16::MAX as usize,
                "section name too long"
            );
            out.write_all(&(name_bytes.len() as u16).to_le_bytes())?;
            out.write_all(name_bytes)?;
            out.write_all(&section_crc(name_bytes, payload).to_le_bytes())?;
            out.write_all(&(payload.len() as u64).to_le_bytes())?;
            out.write_all(payload)?;
        }
        Ok(())
    }

    /// Serializes the container into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out)
            .expect("in-memory write cannot fail");
        out
    }

    /// Writes the container to `path` atomically: the bytes go to a
    /// temp file in the same directory (same filesystem, so the final
    /// rename is atomic), are synced to disk, and only then renamed
    /// over the destination. A crash mid-write leaves either the old
    /// snapshot or none — never a torn file. The temp name embeds the
    /// process id *and* a process-wide counter, so concurrent writers —
    /// two ranks sharing a snapshot directory, or two threads of one
    /// process — never collide on the temp path.
    pub fn save_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
        let file_name = path.file_name().ok_or_else(|| {
            SnapshotError::Io(std::io::Error::other("snapshot path has no file name"))
        })?;
        let tmp = dir.join(format!(
            ".{}.tmp-{}-{}",
            file_name.to_string_lossy(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> Result<(), SnapshotError> {
            let mut file = fs::File::create(&tmp).map_err(SnapshotError::Io)?;
            self.write_to(&mut file)?;
            file.sync_all().map_err(SnapshotError::Io)?;
            fs::rename(&tmp, path).map_err(SnapshotError::Io)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// A parsed, checksum-verified snapshot container.
#[derive(Debug)]
pub struct SnapshotArchive {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotArchive {
    /// Parses a container from a reader, verifying the magic, version,
    /// and every section's CRC before returning.
    pub fn read_from(input: &mut impl Read) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        read_exact(input, &mut magic)?;
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(input)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let count = read_u32(input)?;
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt(format!(
                "section count {count} exceeds limit"
            )));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = read_u16(input)? as usize;
            let mut name_bytes = vec![0u8; name_len];
            read_exact(input, &mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| SnapshotError::Corrupt("section name is not UTF-8".into()))?;
            let stored_crc = read_u32(input)?;
            let len = read_u64(input)?;
            let len = usize::try_from(len).map_err(|_| {
                SnapshotError::Corrupt(format!("section {name:?} length {len} overflows"))
            })?;
            // Never pre-allocate from an untrusted length: a corrupted
            // length field must surface as truncation, not an OOM abort.
            let mut payload = Vec::new();
            (&mut *input)
                .take(len as u64)
                .read_to_end(&mut payload)
                .map_err(SnapshotError::from)?;
            if payload.len() != len {
                return Err(SnapshotError::Corrupt(format!(
                    "section {name:?} truncated: wanted {len} bytes, got {}",
                    payload.len()
                )));
            }
            if section_crc(name.as_bytes(), &payload) != stored_crc {
                return Err(SnapshotError::ChecksumMismatch(name));
            }
            sections.push((name, payload));
        }
        // The container owns the whole byte stream: anything after the
        // last section means a corrupted section count or appended junk.
        let mut probe = [0u8; 1];
        match input.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => {
                return Err(SnapshotError::Corrupt(
                    "trailing bytes after last section".into(),
                ))
            }
            Err(e) => return Err(SnapshotError::from(e)),
        }
        Ok(SnapshotArchive { sections })
    }

    /// Loads and verifies a container from a file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let mut file = fs::File::open(path).map_err(SnapshotError::Io)?;
        SnapshotArchive::read_from(&mut file)
    }

    /// Parses a container from an in-memory byte slice.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut cursor = bytes;
        SnapshotArchive::read_from(&mut cursor)
    }

    /// Section names in file order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Borrows a section payload by name.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, payload)| payload.as_slice())
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }

    /// True if the archive contains a section with this name.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }
}

/// The default snapshot file-name prefix; single-process runs write
/// `snap-{samples:012}.pbps`.
pub const SNAP_PREFIX: &str = "snap";

/// The file-name prefix for one rank of a multi-process run. Rank
/// prefixes embed the rank *before* the `snap` marker
/// (`rank003-snap-…`), so rank snapshots sharing a directory are
/// invisible to the default-prefix scans and two ranks never shadow
/// each other's progress.
pub fn rank_prefix(rank: usize) -> String {
    format!("rank{rank:03}-snap")
}

/// The canonical snapshot file name for `prefix` at a progress counter:
/// `{prefix}-{counter:012}.pbps`. Zero padding keeps lexicographic and
/// numeric order identical, which the `latest_*` scans rely on.
pub fn snapshot_file_name(prefix: &str, counter: usize) -> String {
    format!("{prefix}-{counter:012}.pbps")
}

/// True if `name` is a snapshot file for `prefix`: exactly
/// `{prefix}-{digits}.pbps`. The digit check keeps prefixes that extend
/// one another (e.g. `snap` vs `rank000-snap`) from matching each
/// other's files.
fn matches_prefix(name: &str, prefix: &str) -> bool {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.strip_prefix('-'))
        .and_then(|rest| rest.strip_suffix(".pbps"))
        .is_some_and(|digits| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
}

/// Collects `{prefix}-{digits}.pbps` files in `dir`, sorted ascending by
/// name (= ascending by progress counter). Entries that vanish while
/// scanning (a concurrent writer pruning its retention window) are
/// skipped, not errors. Returns an empty list for a missing directory.
fn snapshot_candidates(dir: &Path, prefix: &str) -> Result<Vec<PathBuf>, SnapshotError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = match entry {
            Ok(entry) => entry.path(),
            // A concurrently pruned entry can surface as a NotFound
            // while iterating; losing a candidate another writer chose
            // to delete is the correct outcome.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(SnapshotError::Io(e)),
        };
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if matches_prefix(name, prefix) {
            candidates.push(path);
        }
    }
    candidates.sort();
    Ok(candidates)
}

/// Finds the newest snapshot (`snap-*.pbps`, lexicographically greatest
/// name — file names embed a zero-padded progress counter) in `dir`.
/// Returns `Ok(None)` if the directory is missing or holds no snapshots.
pub fn latest_snapshot(dir: &Path) -> Result<Option<PathBuf>, SnapshotError> {
    latest_snapshot_with_prefix(dir, SNAP_PREFIX)
}

/// [`latest_snapshot`] for an arbitrary file-name prefix — used by
/// multi-process runs where every rank owns a [`rank_prefix`] family in
/// a shared directory.
pub fn latest_snapshot_with_prefix(
    dir: &Path,
    prefix: &str,
) -> Result<Option<PathBuf>, SnapshotError> {
    Ok(snapshot_candidates(dir, prefix)?.pop())
}

/// Finds the newest snapshot in `dir` that actually **loads** — magic,
/// version, every section checksum and the framing all verify. Corrupted
/// or truncated files (a crash mid-write outside the atomic rename path,
/// disk damage, manual truncation) are skipped with a warning on stderr
/// and the next-newest candidate is tried, so one bad file never aborts a
/// resume while an older good snapshot exists. Returns `Ok(None)` if the
/// directory is missing or holds no loadable snapshot.
pub fn latest_valid_snapshot(dir: &Path) -> Result<Option<PathBuf>, SnapshotError> {
    latest_valid_snapshot_with_prefix(dir, SNAP_PREFIX)
}

/// [`latest_valid_snapshot`] for an arbitrary file-name prefix. Safe
/// against concurrent writers in the same directory: candidates deleted
/// between the scan and the load (a neighboring rank pruning its own
/// files) are skipped like corrupt ones instead of aborting the resume.
pub fn latest_valid_snapshot_with_prefix(
    dir: &Path,
    prefix: &str,
) -> Result<Option<PathBuf>, SnapshotError> {
    for path in snapshot_candidates(dir, prefix)?.into_iter().rev() {
        match SnapshotArchive::load(&path) {
            Ok(_) => return Ok(Some(path)),
            Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "warning: skipping unreadable snapshot {}: {e}",
                    path.display()
                );
            }
        }
    }
    Ok(None)
}

/// The progress counters for which `prefix`'s family in `dir` holds a
/// *valid* snapshot — every candidate is fully loaded, so magic,
/// version, and all section CRCs verify — ascending. Corrupt,
/// truncated, or concurrently-pruned files are silently skipped: a
/// counter in this list is a counter the family can genuinely resume
/// from. Distributed launchers intersect these lists across ranks to
/// find the group's common rewind point.
pub fn valid_snapshot_counters(dir: &Path, prefix: &str) -> Vec<usize> {
    let Ok(candidates) = snapshot_candidates(dir, prefix) else {
        return Vec::new();
    };
    let marker = format!("{prefix}-");
    candidates
        .into_iter()
        .filter_map(|path| {
            let name = path.file_name()?.to_str()?;
            let digits = name.strip_prefix(&marker)?.strip_suffix(".pbps")?;
            let counter = digits.parse::<usize>().ok()?;
            SnapshotArchive::load(&path).ok()?;
            Some(counter)
        })
        .collect()
}

/// Section checksum: covers the name bytes and the payload, so flips in
/// either are detected.
fn section_crc(name: &[u8], payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(name);
    crc.update(payload);
    crc.finish()
}

fn read_exact(input: &mut impl Read, buf: &mut [u8]) -> Result<(), SnapshotError> {
    input.read_exact(buf).map_err(SnapshotError::from)
}

fn read_u16(input: &mut impl Read) -> Result<u16, SnapshotError> {
    let mut b = [0u8; 2];
    read_exact(input, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(input: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    read_exact(input, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(input: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    read_exact(input, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_builder() -> SnapshotBuilder {
        let mut b = SnapshotBuilder::new();
        b.add_section("net", vec![1, 2, 3, 4, 5]);
        b.add_section("engine", vec![]);
        b.add_section("run", b"run state".to_vec());
        b
    }

    #[test]
    fn container_round_trips() {
        let bytes = sample_builder().to_bytes();
        let ar = SnapshotArchive::from_bytes(&bytes).unwrap();
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["net", "engine", "run"]);
        assert_eq!(ar.section("net").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(ar.section("engine").unwrap(), &[] as &[u8]);
        assert_eq!(ar.section("run").unwrap(), b"run state");
        assert!(matches!(
            ar.section("absent"),
            Err(SnapshotError::MissingSection(_))
        ));
    }

    #[test]
    fn re_adding_a_section_replaces_it() {
        let mut b = SnapshotBuilder::new();
        b.add_section("net", vec![1]);
        b.add_section("net", vec![2, 3]);
        let ar = SnapshotArchive::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(ar.section("net").unwrap(), &[2, 3]);
        assert_eq!(ar.names().count(), 1);
    }

    #[test]
    fn corrupted_magic_is_bad_magic() {
        let mut bytes = sample_builder().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotArchive::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_builder().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SnapshotArchive::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let bytes = sample_builder().to_bytes();
        // Flip one bit in the "net" payload (the last 5 bytes of its
        // section record, which ends before "engine"'s name record).
        let mut corrupted = bytes.clone();
        let pos = 8 + 4 + 4 + 2 + 3 + 4 + 8; // header + name rec + crc + len
        corrupted[pos] ^= 0x10;
        match SnapshotArchive::from_bytes(&corrupted) {
            Err(SnapshotError::ChecksumMismatch(name)) => assert_eq!(name, "net"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_any_point_is_typed_error() {
        let bytes = sample_builder().to_bytes();
        for cut in 0..bytes.len() {
            match SnapshotArchive::from_bytes(&bytes[..cut]) {
                Err(
                    SnapshotError::Corrupt(_)
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch(_),
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn atomic_save_and_latest_snapshot() {
        let dir = std::env::temp_dir().join(format!("pbp_snap_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        assert!(latest_snapshot(&dir).unwrap().is_none());
        let b = sample_builder();
        b.save_atomic(&dir.join("snap-000000000010.pbps")).unwrap();
        b.save_atomic(&dir.join("snap-000000000002.pbps")).unwrap();
        let latest = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(
            latest.file_name().unwrap().to_str().unwrap(),
            "snap-000000000010.pbps"
        );
        let ar = SnapshotArchive::load(&latest).unwrap();
        assert_eq!(ar.section("net").unwrap(), &[1, 2, 3, 4, 5]);
        // No temp files left behind.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                name.to_string_lossy().ends_with(".pbps"),
                "stray file {name:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefix_matching_is_digit_strict_and_family_scoped() {
        assert!(matches_prefix("snap-000000000010.pbps", "snap"));
        assert!(matches_prefix(
            "rank003-snap-000000000010.pbps",
            "rank003-snap"
        ));
        // Rank families and the default family never see each other.
        assert!(!matches_prefix("rank003-snap-000000000010.pbps", "snap"));
        assert!(!matches_prefix("snap-000000000010.pbps", "rank003-snap"));
        // Non-digit counters, missing separators, foreign suffixes.
        assert!(!matches_prefix("snap-final.pbps", "snap"));
        assert!(!matches_prefix("snap-.pbps", "snap"));
        assert!(!matches_prefix("snap000000000010.pbps", "snap"));
        assert!(!matches_prefix("snap-000000000010.tmp", "snap"));
        assert!(!matches_prefix(".snap-000000000010.pbps.tmp-1-2", "snap"));
    }

    #[test]
    fn rank_prefixed_families_resolve_independently() {
        let dir = std::env::temp_dir().join(format!("pbp_rank_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = sample_builder();
        for (rank, counter) in [(0usize, 10usize), (0, 20), (1, 10)] {
            let name = snapshot_file_name(&rank_prefix(rank), counter);
            b.save_atomic(&dir.join(name)).unwrap();
        }
        b.save_atomic(&dir.join(snapshot_file_name(SNAP_PREFIX, 30)))
            .unwrap();

        let newest_r0 = latest_valid_snapshot_with_prefix(&dir, &rank_prefix(0))
            .unwrap()
            .unwrap();
        assert_eq!(
            newest_r0.file_name().unwrap().to_str().unwrap(),
            "rank000-snap-000000000020.pbps"
        );
        let newest_r1 = latest_snapshot_with_prefix(&dir, &rank_prefix(1))
            .unwrap()
            .unwrap();
        assert_eq!(
            newest_r1.file_name().unwrap().to_str().unwrap(),
            "rank001-snap-000000000010.pbps"
        );
        // The default scan is blind to every rank family.
        let default = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(
            default.file_name().unwrap().to_str().unwrap(),
            "snap-000000000030.pbps"
        );
        assert!(latest_valid_snapshot_with_prefix(&dir, &rank_prefix(2))
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_in_one_directory_never_collide() {
        // Two "ranks" (threads) hammer the same directory, each writing
        // its own prefixed family via the temp+rename path, while a
        // reader polls for the newest valid snapshot of each family.
        // Every write must survive with valid contents and no stray
        // temp files — the satellite fix this PR makes to the snapshot
        // layer (per-writer temp names, prefix-scoped scans).
        let dir = std::env::temp_dir().join(format!("pbp_concwr_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let writers: Vec<_> = (0..2usize)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let b = sample_builder();
                    for counter in 1..=20usize {
                        let name = snapshot_file_name(&rank_prefix(rank), counter);
                        b.save_atomic(&dir.join(name)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for rank in 0..2usize {
            let newest = latest_valid_snapshot_with_prefix(&dir, &rank_prefix(rank))
                .unwrap()
                .unwrap();
            assert_eq!(
                newest.file_name().unwrap().to_str().unwrap(),
                snapshot_file_name(&rank_prefix(rank), 20)
            );
            let ar = SnapshotArchive::load(&newest).unwrap();
            assert_eq!(ar.section("net").unwrap(), &[1, 2, 3, 4, 5]);
        }
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                name.to_string_lossy().ends_with(".pbps"),
                "stray file {name:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = SnapshotArchive::load(Path::new("/nonexistent/snap.pbps")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }

    #[test]
    fn latest_valid_skips_bit_flipped_newest() {
        let dir = std::env::temp_dir().join(format!("pbp_valid_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(latest_valid_snapshot(&dir).unwrap().is_none());

        let b = sample_builder();
        let good = dir.join("snap-000000000010.pbps");
        let bad = dir.join("snap-000000000020.pbps");
        b.save_atomic(&good).unwrap();
        b.save_atomic(&bad).unwrap();
        // The plain loader picks the newest file regardless of damage...
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap(), bad);
        // ...so flip one bit inside a section payload of the newest file
        // and confirm the valid loader falls back to the older one.
        let mut bytes = fs::read(&bad).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] ^= 0x01;
        fs::write(&bad, &bytes).unwrap();
        assert!(SnapshotArchive::load(&bad).is_err());
        assert_eq!(latest_valid_snapshot(&dir).unwrap().unwrap(), good);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_skips_truncated_newest_and_reports_none_when_all_bad() {
        let dir = std::env::temp_dir().join(format!("pbp_trunc_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let b = sample_builder();
        let good = dir.join("snap-000000000005.pbps");
        let torn = dir.join("snap-000000000009.pbps");
        b.save_atomic(&good).unwrap();
        // A torn write: only half the container made it to disk.
        let bytes = b.to_bytes();
        fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(latest_valid_snapshot(&dir).unwrap().unwrap(), good);

        // With the good one gone, nothing in the directory loads.
        fs::remove_file(&good).unwrap();
        assert!(latest_valid_snapshot(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
