//! Little-endian byte codec for snapshot section payloads.
//!
//! [`StateWriter`] appends fixed-width primitives, length-prefixed byte
//! strings, and tensors to a growable buffer; [`StateReader`] consumes
//! the same stream, returning [`SnapshotError::Corrupt`] on any short
//! read instead of panicking. Every `put_*` has a matching `take_*` with
//! an identical wire format, so implementations of `Snapshottable` only
//! need to keep their write and read sequences in the same order.

use crate::error::SnapshotError;
use pbp_tensor::Tensor;

/// Append-only encoder for a section payload.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a tensor: rank, dims, then the bit-exact element data.
    pub fn put_tensor(&mut self, t: &Tensor) {
        self.put_u32(t.rank() as u32);
        for &d in t.shape() {
            self.put_u64(d as u64);
        }
        self.put_f32_slice(t.as_slice());
    }

    /// Appends a count-prefixed list of tensors.
    pub fn put_tensor_list(&mut self, ts: &[Tensor]) {
        self.put_u32(ts.len() as u32);
        for t in ts {
            self.put_tensor(t);
        }
    }

    /// Appends a count-prefixed list of borrowed tensors (the shape
    /// `params()` accessors return).
    pub fn put_tensor_refs(&mut self, ts: &[&Tensor]) {
        self.put_u32(ts.len() as u32);
        for t in ts {
            self.put_tensor(t);
        }
    }
}

/// Sequential decoder over a section payload.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the stream was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes in section payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Corrupt(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corruption.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` stored as `u64`; errors if it overflows this
    /// platform's word size.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("usize value {v} overflows platform")))
    }

    /// Reads an `f32` bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string, borrowing from the payload.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn take_f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let len = self.take_usize()?;
        if len.saturating_mul(4) > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "f32 slice of {len} elements exceeds payload"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f32()?);
        }
        Ok(out)
    }

    /// Reads a tensor written by [`StateWriter::put_tensor`].
    pub fn take_tensor(&mut self) -> Result<Tensor, SnapshotError> {
        let rank = self.take_u32()? as usize;
        if rank > 8 {
            return Err(SnapshotError::Corrupt(format!("tensor rank {rank} > 8")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.take_usize()?);
        }
        let data = self.take_f32_vec()?;
        Tensor::from_vec(data, &shape)
            .map_err(|e| SnapshotError::Corrupt(format!("tensor decode: {e}")))
    }

    /// Reads a count-prefixed list of tensors.
    pub fn take_tensor_list(&mut self) -> Result<Vec<Tensor>, SnapshotError> {
        let n = self.take_u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.take_tensor()?);
        }
        Ok(out)
    }

    /// Reads a tensor list and copies it element-wise into existing
    /// mutable tensors, enforcing shape agreement. This is the restore
    /// path for parameter-shaped state (velocities, stashed weights).
    pub fn take_tensors_into(
        &mut self,
        dst: &mut [&mut Tensor],
        what: &str,
    ) -> Result<(), SnapshotError> {
        let n = self.take_u32()? as usize;
        if n != dst.len() {
            return Err(SnapshotError::Mismatch(format!(
                "{what}: stored {n} tensors, object has {}",
                dst.len()
            )));
        }
        for (i, t) in dst.iter_mut().enumerate() {
            let stored = self.take_tensor()?;
            if stored.shape() != t.shape() {
                return Err(SnapshotError::Mismatch(format!(
                    "{what}[{i}]: stored shape {:?}, object has {:?}",
                    stored.shape(),
                    t.shape()
                )));
            }
            t.as_mut_slice().copy_from_slice(stored.as_slice());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_usize(123_456);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_bytes(b"abc");
        w.put_str("snapshot \u{2764}");
        w.put_f32_slice(&[1.5, -2.25, f32::INFINITY]);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.take_usize().unwrap(), 123_456);
        assert_eq!(r.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.take_bytes().unwrap(), b"abc");
        assert_eq!(r.take_str().unwrap(), "snapshot \u{2764}");
        assert_eq!(r.take_f32_vec().unwrap(), vec![1.5, -2.25, f32::INFINITY]);
        r.finish().unwrap();
    }

    #[test]
    fn tensors_round_trip_bit_exactly() {
        let t = Tensor::from_vec(vec![1.0e-30, -2.5, 3.75, 0.1], &[2, 2]).unwrap();
        let mut w = StateWriter::new();
        w.put_tensor(&t);
        w.put_tensor_list(&[t.clone(), Tensor::zeros(&[3])]);
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        let back = r.take_tensor().unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let list = r.take_tensor_list().unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[1].shape(), &[3]);
        r.finish().unwrap();
    }

    #[test]
    fn take_tensors_into_enforces_shapes() {
        let src = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let mut w = StateWriter::new();
        w.put_tensor_list(std::slice::from_ref(&src));
        let bytes = w.into_bytes();

        let mut good = Tensor::zeros(&[2]);
        let mut r = StateReader::new(&bytes);
        r.take_tensors_into(&mut [&mut good], "test").unwrap();
        assert_eq!(good.as_slice(), &[1.0, 2.0]);

        let mut bad = Tensor::zeros(&[3]);
        let mut r = StateReader::new(&bytes);
        let err = r.take_tensors_into(&mut [&mut bad], "test").unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        let mut w = StateWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..5]);
        assert!(matches!(r.take_u64(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = StateWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.take_u32().unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Corrupt(_))));
    }
}
