//! Property tests for the snapshot container: arbitrary sections must
//! round-trip exactly, and arbitrary truncation must yield typed errors,
//! never a panic.

use pbp_snapshot::{SnapshotArchive, SnapshotBuilder, SnapshotError, StateReader, StateWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sections_round_trip(
        payload_a in proptest::collection::vec(0u8..=255, 0..256),
        payload_b in proptest::collection::vec(0u8..=255, 0..64),
        name_tail in 0u32..1000,
    ) {
        let name_b = format!("section-{name_tail}");
        let mut b = SnapshotBuilder::new();
        b.add_section("alpha", payload_a.clone());
        b.add_section(&name_b, payload_b.clone());
        let ar = SnapshotArchive::from_bytes(&b.to_bytes()).unwrap();
        prop_assert_eq!(ar.section("alpha").unwrap(), payload_a.as_slice());
        prop_assert_eq!(ar.section(&name_b).unwrap(), payload_b.as_slice());
    }

    #[test]
    fn truncation_never_panics(
        payload in proptest::collection::vec(0u8..=255, 0..128),
        frac in 0.0f64..1.0,
    ) {
        let mut b = SnapshotBuilder::new();
        b.add_section("only", payload);
        let bytes = b.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        // Strictly truncated containers must fail with a typed error.
        prop_assert!(cut < bytes.len());
        let result = SnapshotArchive::from_bytes(&bytes[..cut]);
        prop_assert!(matches!(
            result,
            Err(SnapshotError::Corrupt(_) | SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn flipped_byte_never_parses_clean(
        payload in proptest::collection::vec(0u8..=255, 1..64),
        pos_seed in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let mut b = SnapshotBuilder::new();
        b.add_section("only", payload);
        let mut bytes = b.to_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= mask;
        // Whatever field the flip hit, the parse must either fail with a
        // typed error or — if it hit the u64 length's high bytes AND the
        // CRC happened to collide — still not panic. No collision is
        // realistically reachable, so assert on the error.
        prop_assert!(SnapshotArchive::from_bytes(&bytes).is_err());
    }

    #[test]
    fn codec_u64_f64_round_trip(vs in proptest::collection::vec(0u64..u64::MAX, 0..32)) {
        let mut w = StateWriter::new();
        w.put_u32(vs.len() as u32);
        for &v in &vs {
            w.put_u64(v);
            w.put_f64(f64::from_bits(v));
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let n = r.take_u32().unwrap() as usize;
        prop_assert_eq!(n, vs.len());
        for &v in &vs {
            prop_assert_eq!(r.take_u64().unwrap(), v);
            prop_assert_eq!(r.take_f64().unwrap().to_bits(), v);
        }
        r.finish().unwrap();
    }
}
