//! The in-flight invariant every layer must satisfy for pipelined
//! backpropagation: with fixed weights, processing k samples with all
//! forwards first and all backwards after (k in flight) produces exactly
//! the same input gradients and accumulated parameter gradients as strict
//! sequential forward/backward pairs.
//!
//! (Stateful-normalization layers — BatchNorm running stats, OnlineNorm
//! streaming stats — update state at forward time, so their forward order
//! is the same in both schedules and the invariant still holds.)

use pbp_nn::layer::Layer;
use pbp_nn::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, FilterResponseNorm, Flatten, GlobalAvgPool2d,
    GroupNorm, Linear, MaxPool2d, OnlineNorm, Relu, Tlu, WsConv2d,
};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn inputs(k: usize, shape: &[usize], seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| pbp_tensor::normal(shape, 0.0, 1.0, &mut rng))
        .collect()
}

/// Runs the invariant check for one layer builder.
fn check_fifo(name: &str, mut make: impl FnMut() -> Box<dyn Layer>, in_shape: &[usize]) {
    let k = 3;
    let xs = inputs(k, in_shape, 42);

    // Schedule A: sequential fwd/bwd pairs.
    let mut layer_a = make();
    let mut grads_in_a = Vec::new();
    for x in &xs {
        let mut s = vec![x.clone()];
        layer_a.forward(&mut s);
        let y = s.pop().unwrap();
        let mut g = vec![Tensor::ones(y.shape())];
        layer_a.backward(&mut g);
        grads_in_a.push(g.pop().unwrap());
    }

    // Schedule B: all forwards, then all backwards (k in flight).
    let mut layer_b = make();
    let mut out_shapes = Vec::new();
    for x in &xs {
        let mut s = vec![x.clone()];
        layer_b.forward(&mut s);
        out_shapes.push(s.pop().unwrap().shape().to_vec());
    }
    let mut grads_in_b = Vec::new();
    for shape in &out_shapes {
        let mut g = vec![Tensor::ones(shape)];
        layer_b.backward(&mut g);
        grads_in_b.push(g.pop().unwrap());
    }

    for (i, (a, b)) in grads_in_a.iter().zip(&grads_in_b).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{name}: input gradient differs for in-flight sample {i}"
        );
    }
    for (pa, pb) in layer_a.grads().iter().zip(layer_b.grads()) {
        assert_eq!(
            pa.as_slice(),
            pb.as_slice(),
            "{name}: parameter gradients differ"
        );
    }
}

#[test]
fn conv2d_supports_in_flight_samples() {
    check_fifo(
        "conv2d",
        || {
            let mut rng = StdRng::seed_from_u64(1);
            Box::new(Conv2d::new(2, 3, 3, 1, 1, true, &mut rng))
        },
        &[1, 2, 5, 5],
    );
}

#[test]
fn ws_conv2d_supports_in_flight_samples() {
    check_fifo(
        "ws_conv2d",
        || {
            let mut rng = StdRng::seed_from_u64(2);
            Box::new(WsConv2d::new(2, 2, 3, 1, 1, &mut rng))
        },
        &[1, 2, 5, 5],
    );
}

#[test]
fn linear_supports_in_flight_samples() {
    check_fifo(
        "linear",
        || {
            let mut rng = StdRng::seed_from_u64(3);
            Box::new(Linear::new(6, 4, true, &mut rng))
        },
        &[1, 6],
    );
}

#[test]
fn relu_supports_in_flight_samples() {
    check_fifo("relu", || Box::new(Relu::new()), &[1, 8]);
}

#[test]
fn groupnorm_supports_in_flight_samples() {
    check_fifo(
        "groupnorm",
        || Box::new(GroupNorm::new(2, 4)),
        &[1, 4, 3, 3],
    );
}

#[test]
fn frn_and_tlu_support_in_flight_samples() {
    check_fifo(
        "frn",
        || Box::new(FilterResponseNorm::new(3)),
        &[1, 3, 4, 4],
    );
    check_fifo("tlu", || Box::new(Tlu::new(3)), &[1, 3, 4, 4]);
}

#[test]
fn pools_support_in_flight_samples() {
    check_fifo("maxpool", || Box::new(MaxPool2d::new(2, 2)), &[1, 2, 4, 4]);
    check_fifo("avgpool", || Box::new(AvgPool2d::new(2, 2)), &[1, 2, 4, 4]);
    check_fifo("gap", || Box::new(GlobalAvgPool2d::new()), &[1, 2, 4, 4]);
    check_fifo("flatten", || Box::new(Flatten::new()), &[1, 2, 3, 3]);
}

#[test]
fn dropout_supports_in_flight_samples() {
    // Dropout draws a fresh mask per forward from its own RNG, so the two
    // schedules see identical mask sequences (forward order is the same).
    check_fifo("dropout", || Box::new(Dropout::new(0.4, 7)), &[1, 32]);
}

#[test]
fn stateful_norms_support_in_flight_samples() {
    check_fifo("batchnorm", || Box::new(BatchNorm2d::new(2)), &[2, 2, 3, 3]);
    check_fifo(
        "online_norm",
        || Box::new(OnlineNorm::new(2)),
        &[1, 2, 4, 4],
    );
}
