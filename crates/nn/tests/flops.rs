//! Hand-computed FLOP counts for the layers whose `flops_per_sample`
//! feeds the MFU report (pbp-trace) and the threaded engine's core
//! division. Each expected value is derived from the layer's arithmetic,
//! not from the implementation.

use pbp_nn::layers::{Conv2d, Linear, WsConv2d};
use pbp_nn::Layer;
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn linear_flops_are_two_per_mac_plus_bias_adds() {
    let mut rng = StdRng::seed_from_u64(0);
    // y = x·Wᵀ + b with in=5, out=7: 5·7 multiply-adds (2 FLOPs each)
    // plus 7 bias adds = 70 + 7.
    let with_bias = Linear::new(5, 7, true, &mut rng);
    assert_eq!(with_bias.flops_per_sample(), 77);
    // Without the bias the adds disappear but the matmul stays.
    let no_bias = Linear::new(5, 7, false, &mut rng);
    assert_eq!(no_bias.flops_per_sample(), 70);
}

#[test]
fn conv_flops_count_weight_reuse_across_pixels() {
    let mut rng = StdRng::seed_from_u64(1);
    // 2→3 channels, 3×3 kernel, stride 1, pad 1: weight has 3·2·3·3 = 54
    // entries. Before any forward the layer cannot know the spatial size,
    // so it reports the parameter-based default: 2·(54 + 3 bias) = 114.
    let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
    assert_eq!(conv.flops_per_sample(), 114);
    // A 4×4 input (stride 1, pad 1) keeps the spatial size: 16 output
    // pixels per channel. Each output element costs 2·(2·3·3) FLOPs of
    // convolution plus 1 bias add:
    //   2·54·16 + 3·16 = 1728 + 48 = 1776.
    let x = Tensor::zeros(&[1, 2, 4, 4]);
    let mut stack = vec![x];
    conv.forward(&mut stack);
    assert_eq!(conv.flops_per_sample(), 1776);
}

#[test]
fn wsconv_flops_match_conv_without_bias() {
    let mut rng = StdRng::seed_from_u64(2);
    // 3→4 channels, 3×3 kernel, stride 1, pad 1 on a 5×5 input: weight
    // has 4·3·3·3 = 108 entries, 25 output pixels, no bias (weight
    // standardization removes the mean): 2·108·25 = 5400.
    let mut ws = WsConv2d::new(3, 4, 3, 1, 1, &mut rng);
    let x = Tensor::zeros(&[1, 3, 5, 5]);
    let mut stack = vec![x];
    ws.forward(&mut stack);
    assert_eq!(ws.flops_per_sample(), 5400);
}

#[test]
fn strided_conv_counts_the_reduced_output_grid() {
    let mut rng = StdRng::seed_from_u64(3);
    // 1→2 channels, 3×3 kernel, stride 2, pad 1 on 8×8: out size is
    // ⌊(8 + 2·1 − 3)/2⌋ + 1 = 4, so 16 output pixels. Weight has
    // 2·1·3·3 = 18 entries, no bias: 2·18·16 = 576.
    let mut conv = Conv2d::new(1, 2, 3, 2, 1, false, &mut rng);
    let x = Tensor::zeros(&[1, 1, 8, 8]);
    let mut stack = vec![x];
    conv.forward(&mut stack);
    assert_eq!(conv.flops_per_sample(), 576);
}
