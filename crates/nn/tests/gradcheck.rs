//! Randomized finite-difference gradient checks over layer configurations.
//!
//! For every layer kind, random geometry and random inputs: the analytic
//! input gradient and parameter gradients must match central finite
//! differences of a random linear functional of the output.

use pbp_nn::layer::Layer;
use pbp_nn::layers::{
    Conv2d, FilterResponseNorm, GroupNorm, Linear, OnlineNorm, Relu, Tlu, WsConv2d,
};
use pbp_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Loss = <probe, layer(x)>; returns loss and resets the stash.
fn loss_of(layer: &mut dyn Layer, x: &Tensor, probe: &Tensor) -> f64 {
    let mut s = vec![x.clone()];
    layer.forward(&mut s);
    let y = s.pop().expect("output");
    layer.clear_stash();
    y.as_slice()
        .iter()
        .zip(probe.as_slice())
        .map(|(a, b)| (*a as f64) * (*b as f64))
        .sum()
}

/// Checks dL/dx and dL/dθ against central differences at a few random
/// coordinates.
fn gradcheck(layer: &mut dyn Layer, x: &Tensor, seed: u64, tol: f64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Output shape probe.
    let mut s = vec![x.clone()];
    layer.forward(&mut s);
    let y_shape = s.pop().expect("output").shape().to_vec();
    layer.clear_stash();
    let probe = pbp_tensor::normal(&y_shape, 0.0, 1.0, &mut rng);

    // Analytic gradients.
    layer.zero_grads();
    let mut s = vec![x.clone()];
    layer.forward(&mut s);
    let _ = s.pop();
    let mut g = vec![probe.clone()];
    layer.backward(&mut g);
    let gx = g.pop().expect("input grad");
    let param_grads: Vec<Tensor> = layer.grads().into_iter().cloned().collect();

    let eps = 1e-2f32;
    // Input coordinates.
    for _ in 0..4 {
        let idx = (rng.next_u64() as usize) % x.len();
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let num = (loss_of(layer, &xp, &probe) - loss_of(layer, &xm, &probe)) / (2.0 * eps as f64);
        let ana = gx.as_slice()[idx] as f64;
        if (num - ana).abs() > tol * (1.0 + ana.abs()) {
            return Err(format!(
                "{}: input grad at {idx}: fd {num} vs analytic {ana}",
                layer.name()
            ));
        }
    }
    // Parameter coordinates.
    for (p_i, param_grad) in param_grads.iter().enumerate() {
        if param_grad.is_empty() {
            continue;
        }
        let idx = (rng.next_u64() as usize) % param_grad.len();
        let orig = layer.params()[p_i].as_slice()[idx];
        layer.params_mut()[p_i].as_mut_slice()[idx] = orig + eps;
        let lp = loss_of(layer, x, &probe);
        layer.params_mut()[p_i].as_mut_slice()[idx] = orig - eps;
        let lm = loss_of(layer, x, &probe);
        layer.params_mut()[p_i].as_mut_slice()[idx] = orig;
        let num = (lp - lm) / (2.0 * eps as f64);
        let ana = param_grad.as_slice()[idx] as f64;
        if (num - ana).abs() > tol * (1.0 + ana.abs()) {
            return Err(format!(
                "{}: param {p_i} grad at {idx}: fd {num} vs analytic {ana}",
                layer.name()
            ));
        }
    }
    Ok(())
}

fn rand_input(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    pbp_tensor::normal(shape, 0.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv2d_gradcheck(
        in_c in 1usize..4,
        out_c in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Conv2d::new(in_c, out_c, 3, stride, 1, true, &mut rng);
        let x = rand_input(&[1, in_c, 6, 6], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.05).map_err(TestCaseError::fail)?;
    }

    /// Conv gradients across the full geometry grid the GEMM-lowered
    /// backward supports: kernels 1–4, strides up to 3, paddings up to 2
    /// (including padding > kernel/2, where whole taps fall outside), and
    /// non-square inputs.
    #[test]
    fn conv2d_strided_padded_gradcheck(
        kernel in 1usize..5,
        stride in 1usize..4,
        padding in 0usize..3,
        extra_h in 0usize..4,
        extra_w in 0usize..4,
        seed in 0u64..500,
    ) {
        let (h, w) = (kernel + extra_h, kernel + extra_w);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Conv2d::new(2, 3, kernel, stride, padding, true, &mut rng);
        let x = rand_input(&[1, 2, h, w], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.06).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn ws_conv2d_gradcheck(
        in_c in 2usize..4,
        out_c in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = WsConv2d::new(in_c, out_c, 3, 1, 1, &mut rng);
        let x = rand_input(&[1, in_c, 5, 5], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }

    /// Weight-standardized conv under stride and padding variation: the
    /// standardization backward must compose with the GEMM-lowered conv
    /// backward at every geometry.
    #[test]
    fn ws_conv2d_strided_padded_gradcheck(
        stride in 1usize..3,
        padding in 0usize..3,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = WsConv2d::new(2, 3, 3, stride, padding, &mut rng);
        let x = rand_input(&[1, 2, 6, 5], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn linear_gradcheck(
        n_in in 1usize..8,
        n_out in 1usize..8,
        batch in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(n_in, n_out, true, &mut rng);
        let x = rand_input(&[batch, n_in], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.05).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn groupnorm_gradcheck(
        groups in 1usize..3,
        seed in 0u64..500,
    ) {
        let channels = groups * 2;
        let mut layer = GroupNorm::new(groups, channels);
        let x = rand_input(&[1, channels, 3, 3], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn frn_gradcheck(channels in 1usize..4, seed in 0u64..500) {
        let mut layer = FilterResponseNorm::new(channels);
        let x = rand_input(&[1, channels, 4, 4], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn tlu_gradcheck(channels in 1usize..4, seed in 0u64..500) {
        let mut layer = Tlu::new(channels);
        // Keep inputs away from the threshold kink (fd is invalid there).
        let mut x = rand_input(&[1, channels, 4, 4], seed ^ 1);
        x.map_in_place(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn relu_gradcheck(seed in 0u64..500) {
        let mut layer = Relu::new();
        let mut x = rand_input(&[1, 12], seed ^ 1);
        // Avoid the kink at zero.
        x.map_in_place(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
        gradcheck(&mut layer, &x, seed ^ 2, 0.05).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn online_norm_eval_gradcheck(channels in 1usize..3, seed in 0u64..500) {
        // In training mode ON's statistics move during the fd probes, so
        // gradcheck is run in eval mode (frozen statistics, control process
        // frozen too) where the layer is a fixed affine-normalizing map.
        let mut layer = OnlineNorm::new(channels);
        layer.set_training(false);
        let x = rand_input(&[1, channels, 3, 3], seed ^ 1);
        gradcheck(&mut layer, &x, seed ^ 2, 0.08).map_err(TestCaseError::fail)?;
    }
}
