//! Network ⇄ snapshot-container bridging.
//!
//! Two sections describe a network completely:
//!
//! * `"net"` — the parameters, stored as the legacy `PBPCKPT1` byte
//!   stream verbatim. Old checkpoints stay loadable and the embedded
//!   section can be extracted and read by [`crate::checkpoint::load`]
//!   directly.
//! * `"net.state"` — per-layer non-parameter state (batch-norm running
//!   statistics, online-norm streaming control variables, dropout RNG
//!   position), keyed positionally: stage count, then per stage the
//!   layer count and one optional byte buffer per layer.
//!
//! Activation stashes are deliberately absent: snapshots are only taken
//! with an empty pipeline (nothing in flight), which every engine
//! guarantees between training calls.

use crate::checkpoint;
use crate::network::Network;
use pbp_snapshot::{SnapshotArchive, SnapshotBuilder, SnapshotError, StateReader, StateWriter};

/// Section holding the legacy `PBPCKPT1` parameter checkpoint.
pub const SECTION_NET: &str = "net";

/// Section holding per-layer non-parameter state.
pub const SECTION_NET_STATE: &str = "net.state";

/// Adds the `"net"` and `"net.state"` sections for `net` to a builder.
pub fn write_network(net: &Network, snap: &mut SnapshotBuilder) {
    let mut params = Vec::new();
    checkpoint::save(net, &mut params).expect("in-memory checkpoint write cannot fail");
    snap.add_section(SECTION_NET, params);

    let mut w = StateWriter::new();
    w.put_u32(net.num_stages() as u32);
    for stage in net.stages() {
        w.put_u32(stage.layers().len() as u32);
        for layer in stage.layers() {
            match layer.state_bytes() {
                Some(bytes) => {
                    w.put_bool(true);
                    w.put_bytes(&bytes);
                }
                None => w.put_bool(false),
            }
        }
    }
    snap.add_section(SECTION_NET_STATE, w.into_bytes());
}

/// Restores parameters and per-layer state for `net` from an archive.
///
/// The network must have the same architecture the snapshot was taken
/// from; layout disagreements are reported as typed errors.
pub fn read_network(net: &mut Network, archive: &SnapshotArchive) -> Result<(), SnapshotError> {
    let mut params = archive.section(SECTION_NET)?;
    checkpoint::load(net, &mut params).map_err(|e| match e {
        checkpoint::CheckpointError::Io(io) => SnapshotError::from(io),
        checkpoint::CheckpointError::BadMagic => {
            SnapshotError::Corrupt("net section is not a PBPCKPT1 checkpoint".into())
        }
        checkpoint::CheckpointError::LayoutMismatch(what) => SnapshotError::Mismatch(what),
    })?;

    let mut r = StateReader::new(archive.section(SECTION_NET_STATE)?);
    let stages = r.take_u32()? as usize;
    if stages != net.num_stages() {
        return Err(SnapshotError::Mismatch(format!(
            "net state has {stages} stages, network has {}",
            net.num_stages()
        )));
    }
    for s in 0..stages {
        let stage = net.stage_mut(s);
        let layers = r.take_u32()? as usize;
        if layers != stage.layers().len() {
            return Err(SnapshotError::Mismatch(format!(
                "stage {s}: state has {layers} layers, stage has {}",
                stage.layers().len()
            )));
        }
        for (l, layer) in stage.layers_mut().iter_mut().enumerate() {
            let has_state = r.take_bool()?;
            let stored = has_state.then(|| r.take_bytes()).transpose()?;
            match (stored, layer.state_bytes().is_some()) {
                (Some(bytes), true) => layer.load_state_bytes(bytes)?,
                (None, false) => {}
                (stored, expects) => {
                    return Err(SnapshotError::Mismatch(format!(
                        "stage {s} layer {l} ({}): stored state {}, layer expects {}",
                        layer.name(),
                        if stored.is_some() {
                            "present"
                        } else {
                            "absent"
                        },
                        if expects { "present" } else { "absent" },
                    )))
                }
            }
        }
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Dropout, Linear, OnlineNorm, Relu};
    use crate::network::Stage;
    use pbp_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stateful_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Stage::new(
                "conv-ish",
                vec![
                    Box::new(Linear::new(8, 8, true, &mut rng)),
                    Box::new(Dropout::new(0.3, 99)),
                ],
            ),
            Stage::new(
                "norms",
                vec![
                    Box::new(BatchNorm2d::new(2)),
                    Box::new(OnlineNorm::new(2)),
                    Box::new(Relu::new()),
                ],
            ),
        ])
    }

    fn drive_stateful_layers(net: &mut Network) {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            // Stage 0 path: vector through linear + dropout.
            let mut stack = vec![pbp_tensor::normal(&[1, 8], 0.0, 1.0, &mut rng)];
            net.stage_mut(0).forward(&mut stack);
            net.stage_mut(0).clear_stash();
            // Stage 1 path: NCHW image through the norm layers.
            let mut stack = vec![pbp_tensor::normal(&[1, 2, 3, 3], 1.0, 2.0, &mut rng)];
            net.stage_mut(1).forward(&mut stack);
            net.stage_mut(1).clear_stash();
        }
    }

    #[test]
    fn layer_state_round_trips_through_the_container() {
        let mut net = stateful_net(1);
        drive_stateful_layers(&mut net);

        let mut builder = SnapshotBuilder::new();
        write_network(&net, &mut builder);
        let archive = SnapshotArchive::from_bytes(&builder.to_bytes()).unwrap();

        let mut restored = stateful_net(1);
        read_network(&mut restored, &archive).unwrap();

        // Every stateful layer must report byte-identical state, and the
        // restored dropout RNG must continue the original's sequence.
        for s in 0..net.num_stages() {
            for (a, b) in net.stage(s).layers().iter().zip(restored.stage(s).layers()) {
                assert_eq!(a.state_bytes(), b.state_bytes(), "stage {s}");
            }
        }
        drive_stateful_layers(&mut net);
        drive_stateful_layers(&mut restored);
        for s in 0..net.num_stages() {
            for (a, b) in net.stage(s).layers().iter().zip(restored.stage(s).layers()) {
                assert_eq!(a.state_bytes(), b.state_bytes(), "post-drive stage {s}");
            }
        }
    }

    #[test]
    fn embedded_net_section_is_a_loadable_legacy_checkpoint() {
        let mut net = stateful_net(2);
        drive_stateful_layers(&mut net);
        let mut builder = SnapshotBuilder::new();
        write_network(&net, &mut builder);
        let archive = SnapshotArchive::from_bytes(&builder.to_bytes()).unwrap();

        // The "net" section bytes ARE a PBPCKPT1 checkpoint.
        let mut legacy = stateful_net(3);
        let mut bytes = archive.section(SECTION_NET).unwrap();
        checkpoint::load(&mut legacy, &mut bytes).unwrap();
        for s in 0..net.num_stages() {
            for (p, q) in net.stage(s).params().iter().zip(legacy.stage(s).params()) {
                assert_eq!(p.as_slice(), q.as_slice());
            }
        }
    }

    #[test]
    fn architecture_mismatch_is_typed_error() {
        let net = stateful_net(4);
        let mut builder = SnapshotBuilder::new();
        write_network(&net, &mut builder);
        let archive = SnapshotArchive::from_bytes(&builder.to_bytes()).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let mut other = crate::models::mlp(&[4, 6, 2], &mut rng);
        let err = read_network(&mut other, &archive).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_sections_are_typed_errors() {
        let archive = SnapshotArchive::from_bytes(&SnapshotBuilder::new().to_bytes()).unwrap();
        let mut net = stateful_net(6);
        let err = read_network(&mut net, &archive).unwrap_err();
        assert!(matches!(err, SnapshotError::MissingSection(_)), "{err}");
    }

    #[test]
    fn stateless_layer_rejects_unexpected_state_buffer() {
        let mut relu = Relu::new();
        let err = crate::Layer::load_state_bytes(&mut relu, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
        let _ = Tensor::zeros(&[1]);
    }
}
