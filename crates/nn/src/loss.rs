//! Softmax cross-entropy loss and classification metrics.
//!
//! In the paper's pipeline the softmax/loss computation is the final
//! pipeline stage; here it is a free function the training engines call
//! after the last network stage.

use pbp_tensor::Tensor;

/// Mean softmax cross-entropy over a batch of logits `[N, C]`.
///
/// Returns the scalar loss and the gradient with respect to the logits
/// (`(softmax − onehot) / N`), ready to feed into the network backward
/// pass.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len() != N`, or if a label
/// is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "labels length must match batch size");
    let ls = logits.as_slice();
    let mut grad = Tensor::zeros(&[n, c]);
    let gs = grad.as_mut_slice();
    let mut loss = 0.0f64;
    for ni in 0..n {
        let row = &ls[ni * c..(ni + 1) * c];
        let label = labels[ni];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += ((v - max) as f64).exp();
        }
        let log_denom = denom.ln();
        loss += log_denom - (row[label] - max) as f64;
        let inv_n = 1.0 / n as f32;
        for ci in 0..c {
            let p = (((row[ci] - max) as f64).exp() / denom) as f32;
            gs[ni * c + ci] = (p - if ci == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Per-sample softmax cross-entropy losses for logits `[N, C]`, in `f64`.
///
/// Element `i` is exactly the per-row term `softmax_cross_entropy` sums
/// before taking the batch mean (`ln Σ exp(x − max) − (x[label] − max)`,
/// computed per row in `f64`). Because each value depends only on its own
/// row, the vector is identical however the same samples are grouped into
/// batches — which is what lets [`accuracy`]-style dataset metrics be
/// accumulated batch-size-invariantly (see `pbp_pipeline`'s `evaluate`).
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len() != N`, or a label is
/// out of range.
pub fn softmax_cross_entropy_losses(logits: &Tensor, labels: &[usize]) -> Vec<f64> {
    assert_eq!(logits.rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "labels length must match batch size");
    let ls = logits.as_slice();
    let mut losses = Vec::with_capacity(n);
    for ni in 0..n {
        let row = &ls[ni * c..(ni + 1) * c];
        let label = labels[ni];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += ((v - max) as f64).exp();
        }
        losses.push(denom.ln() - (row[label] - max) as f64);
    }
    losses
}

/// Number of rows whose argmax matches the label (first maximum wins on
/// ties, matching [`accuracy`]).
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len()` differs from the
/// batch size.
pub fn correct_count(logits: &Tensor, labels: &[usize]) -> usize {
    assert_eq!(logits.rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n);
    let ls = logits.as_slice();
    let mut correct = 0usize;
    for ni in 0..n {
        let row = &ls[ni * c..(ni + 1) * c];
        let mut best = 0usize;
        for ci in 1..c {
            if row[ci] > row[best] {
                best = ci;
            }
        }
        if best == labels[ni] {
            correct += 1;
        }
    }
    correct
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len()` differs from the
/// batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let correct = correct_count(logits, labels);
    let n = labels.len();
    if n == 0 {
        return 0.0;
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn perfect_logits_give_near_zero_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 1], 100.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        for ni in 0..2 {
            let s: f32 = grad.as_slice()[ni * 3..(ni + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &[1]);
            let (fm, _) = softmax_cross_entropy(&lm, &[1]);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn loss_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }

    #[test]
    fn per_sample_losses_match_batch_and_singleton_calls() {
        let logits =
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 3.0, 0.0, -2.0, 0.1, 0.2, 0.3], &[3, 3]).unwrap();
        let labels = [2usize, 0, 1];
        let losses = softmax_cross_entropy_losses(&logits, &labels);
        // The mean of the per-sample values reproduces the batch loss bit
        // for bit (same f64 accumulation order, same final rounding)...
        let (batch_loss, _) = softmax_cross_entropy(&logits, &labels);
        let mean = (losses.iter().sum::<f64>() / 3.0) as f32;
        assert_eq!(mean.to_bits(), batch_loss.to_bits());
        // ...and each value matches its own one-row batch bit for bit.
        for (i, &l) in losses.iter().enumerate() {
            let row =
                Tensor::from_vec(logits.as_slice()[i * 3..(i + 1) * 3].to_vec(), &[1, 3]).unwrap();
            let (solo, _) = softmax_cross_entropy(&row, &[labels[i]]);
            assert_eq!((l as f32).to_bits(), solo.to_bits());
        }
    }

    #[test]
    fn correct_count_matches_accuracy() {
        let logits =
            Tensor::from_vec(vec![1.0, 2.0, 0.0, 5.0, 1.0, 1.0, 0.0, 0.0, 3.0], &[3, 3]).unwrap();
        assert_eq!(correct_count(&logits, &[1, 0, 2]), 3);
        assert_eq!(correct_count(&logits, &[0, 0, 2]), 2);
        assert_eq!(correct_count(&logits, &[0, 1, 0]), 0);
    }

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits =
            Tensor::from_vec(vec![1.0, 2.0, 0.0, 5.0, 1.0, 1.0, 0.0, 0.0, 3.0], &[3, 3]).unwrap();
        assert!((accuracy(&logits, &[1, 0, 2]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[0, 0, 2]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
