//! The [`Layer`] trait: explicit, stack-based forward/backward passes.

use pbp_tensor::Tensor;

/// The activation "stack" flowing between pipeline stages.
///
/// For plain feed-forward networks it holds a single tensor. Residual
/// networks push the skip connection onto an extra lane with
/// [`crate::layers::Dup`] and merge it back with [`crate::layers::AddLanes`].
pub type LaneStack = Vec<Tensor>;

/// A network layer with an explicit backward pass.
///
/// ## Contract
///
/// * [`Layer::forward`] pops its inputs from the top of the stack, pushes
///   its outputs, and **stashes** whatever it needs for the corresponding
///   backward pass in an internal FIFO.
/// * [`Layer::backward`] pops the gradients for its forward *outputs* from
///   the gradient stack (same positions), pushes the gradients for its
///   forward *inputs*, pops the oldest stashed activation, and accumulates
///   parameter gradients internally.
/// * Calls must be FIFO-consistent: the `k`-th backward call consumes the
///   stash of the `k`-th outstanding forward call. This is exactly the
///   discipline pipelined backpropagation imposes — several samples may be
///   in flight through a stage at once, and gradients return in order.
///
/// Parameter access ([`Layer::params`]/[`Layer::params_mut`]) is positional
/// and stable, which the pipeline engines rely on to snapshot, predict and
/// restore weight versions.
pub trait Layer: Send {
    /// Human-readable layer name (used in stage listings and diagnostics).
    fn name(&self) -> String;

    /// Runs the forward transformation in place on the lane stack.
    fn forward(&mut self, stack: &mut LaneStack);

    /// Runs the backward transformation in place on the gradient stack.
    fn backward(&mut self, grad_stack: &mut LaneStack);

    /// Input-gradient half of the backward pass, for schedules that split
    /// backward into grad-input and grad-weight (2BP): pops the output
    /// gradients, pushes the input gradients, and *defers* the parameter
    /// gradients — each call enqueues one unit of pending weight-gradient
    /// work that a later [`Layer::backward_weight`] call retires.
    ///
    /// The default runs the fused [`Layer::backward`] (parameter gradients
    /// accumulate immediately), leaving nothing deferred — correct for
    /// parameterless layers and for layers whose parameter gradients depend
    /// on intermediate values the fused pass computes anyway. Callers must
    /// pair every `backward_input` with exactly one `backward_weight`, in
    /// FIFO order, before the next [`Layer::zero_grads`].
    fn backward_input(&mut self, grad_stack: &mut LaneStack) {
        self.backward(grad_stack);
    }

    /// Retires the oldest pending weight-gradient unit deferred by
    /// [`Layer::backward_input`], accumulating into the parameter-gradient
    /// buffers. The gradients it produces depend only on values stashed at
    /// `backward_input` time (never on the current weights), which is what
    /// makes deferring them to the update boundary exact. Default: no-op
    /// (the fused default of `backward_input` left nothing pending).
    fn backward_weight(&mut self) {}

    /// Borrows the trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutably borrows the trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Borrows the accumulated parameter gradients, aligned with
    /// [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Simultaneously borrows every parameter mutably together with its
    /// accumulated gradient, in [`Layer::params`] order.
    ///
    /// This is the optimizer-facing access path: it lets an engine step the
    /// weights of a stage directly against the freshly accumulated gradients
    /// without cloning them first. The split borrow across a layer's
    /// parameter and gradient fields is only expressible inside the layer,
    /// so every layer with parameters must override this.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        assert!(
            self.params().is_empty(),
            "layer {} has parameters but does not override params_and_grads",
            self.name()
        );
        Vec::new()
    }

    /// Resets the accumulated parameter gradients to zero.
    fn zero_grads(&mut self) {}

    /// Switches between training and evaluation behaviour (dropout,
    /// batch-norm statistics). Default: no-op.
    fn set_training(&mut self, _training: bool) {}

    /// Drops all stashed activations (e.g. when a pipeline is flushed).
    fn clear_stash(&mut self) {}

    /// Number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Estimated forward-pass multiply-add FLOPs for one sample, used by
    /// the threaded engine to divide cores between stage workers and the
    /// kernel pool. The default — two FLOPs per parameter — is exact for
    /// dense matmuls and a deliberate *underestimate* for convolutions
    /// (which reuse each weight across every output pixel); conv layers
    /// override this with their spatially-resolved cost once a forward
    /// pass has told them the input size. Only relative magnitudes
    /// between stages matter, so a rough estimate is fine.
    fn flops_per_sample(&self) -> u64 {
        2 * self.param_count() as u64
    }

    /// Serialized non-parameter state: running statistics, streaming
    /// normalizer control variables, RNG positions — anything besides the
    /// parameters that influences future computation. `None` (the
    /// default) marks the layer stateless; activation stashes are *not*
    /// state, because snapshots are only taken with empty pipelines.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`Layer::state_bytes`].
    ///
    /// Stateless layers (the default) accept only an absent buffer; the
    /// caller passes each stored buffer to the layer at the same position.
    fn load_state_bytes(&mut self, _bytes: &[u8]) -> Result<(), pbp_snapshot::SnapshotError> {
        Err(pbp_snapshot::SnapshotError::Mismatch(format!(
            "layer {} is stateless but a state buffer was stored for it",
            self.name()
        )))
    }
}

/// Copies the parameter tensors of a layer into owned snapshots.
pub fn snapshot_params(layer: &dyn Layer) -> Vec<Tensor> {
    layer.params().into_iter().cloned().collect()
}

/// Restores parameter tensors from snapshots taken by [`snapshot_params`].
///
/// # Panics
///
/// Panics if the snapshot does not match the layer's parameter layout.
pub fn load_params(layer: &mut dyn Layer, snapshot: &[Tensor]) {
    let mut params = layer.params_mut();
    assert_eq!(
        params.len(),
        snapshot.len(),
        "snapshot has {} tensors but layer {} has {} parameters",
        snapshot.len(),
        "?",
        params.len()
    );
    for (p, s) in params.iter_mut().zip(snapshot) {
        assert_eq!(p.shape(), s.shape(), "snapshot shape mismatch");
        p.as_mut_slice().copy_from_slice(s.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_and_load_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let snap = snapshot_params(&layer);
        assert_eq!(snap.len(), 2); // weight + bias
                                   // Perturb, then restore.
        for p in layer.params_mut() {
            p.map_in_place(|x| x + 1.0);
        }
        load_params(&mut layer, &snap);
        for (p, s) in layer.params().iter().zip(&snap) {
            assert_eq!(p.as_slice(), s.as_slice());
        }
    }

    #[test]
    fn param_count_sums_tensors() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(3, 2, true, &mut rng);
        assert_eq!(layer.param_count(), 3 * 2 + 2);
    }
}
