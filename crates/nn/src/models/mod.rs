//! Network architectures used in the paper's experiments.
//!
//! Stage partitioning follows Section 4 and reproduces the stage counts of
//! Table 1 exactly (including the final softmax/loss stage counted by
//! [`crate::Network::pipeline_stage_count`]):
//!
//! | network | stages | accounting |
//! |---------|--------|------------|
//! | VGG11   | 29     | 8×(conv, relu) + 5 pool + 7 classifier + loss |
//! | VGG13   | 33     | 10×(conv, relu) + 5 pool + 7 classifier + loss |
//! | VGG16   | 39     | 13×(conv, relu) + 5 pool + 7 classifier + loss |
//! | RN20    | 34     | stem + 18 conv + 9 sum + 2 proj + tail(3) + loss |
//! | RN32    | 52     | stem + 30 conv + 15 sum + 2 proj + tail(3) + loss |
//! | RN44    | 70     | stem + 42 conv + 21 sum + 2 proj + tail(3) + loss |
//! | RN56    | 88     | stem + 54 conv + 27 sum + 2 proj + tail(3) + loss |
//! | RN110   | 169    | stem + 108 conv + 54 sum + 2 proj + tail(3) + loss |
//! | RN50    | 78     | stem(2) + 48 conv + 16 sum + 4×2 proj + tail(3) + loss |
//!
//! ResNets fuse `groupnorm → relu → conv` into one stage (pre-activation
//! blocks, He et al. 2016b) and give each residual sum node its own stage;
//! VGG keeps every module a separate stage (no normalization, matching the
//! CIFAR VGG recipe of Fu 2019 that the paper adopts).

mod mlp;
mod resnet;
mod vgg;

pub use mlp::{mlp, simple_cnn, simple_cnn_ws, vgg_cnn};
pub use resnet::{resnet50_like, resnet_cifar, ResNetConfig};
pub use vgg::{vgg, vgg_gn, VggVariant};
