//! Pre-activation residual networks (He et al., 2016b) with group
//! normalization, stage-partitioned as in the paper.

use crate::layer::Layer;
use crate::layers::{
    AddLanes, Conv2d, Dup, Flatten, GlobalAvgPool2d, GroupNorm, Linear, MapLane, MaxPool2d, Relu,
};
use crate::network::{Network, Stage};
use rand::Rng;

/// Configuration for a CIFAR-style pre-activation ResNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Network depth; must satisfy `depth = 6n + 2` (20, 32, 44, 56, 110…).
    pub depth: usize,
    /// Base channel width of the first group (16 in the paper; smaller
    /// values give CPU-sized models with the same stage structure).
    pub base_width: usize,
    /// Number of input channels (3 for RGB images).
    pub in_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ResNetConfig {
    /// Number of residual blocks per group (`n` in `depth = 6n + 2`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not of the form `6n + 2`.
    pub fn blocks_per_group(&self) -> usize {
        assert!(
            self.depth >= 8 && (self.depth - 2).is_multiple_of(6),
            "CIFAR ResNet depth must be 6n+2, got {}",
            self.depth
        );
        (self.depth - 2) / 6
    }

    /// Pipeline stage count this config will produce (including the loss
    /// stage), matching Table 1 of the paper:
    /// `1 stem + 6n conv + 3n sum + 2 proj + 3 tail + 1 loss`.
    pub fn expected_stage_count(&self) -> usize {
        let n = self.blocks_per_group();
        1 + 6 * n + 3 * n + 2 + 3 + 1
    }
}

fn gn(channels: usize) -> Box<dyn Layer> {
    Box::new(GroupNorm::with_group_size_two(channels))
}

/// Builds one pre-activation residual block as a sequence of stages.
///
/// Stage layout (matching the paper's fusing of conv+norm+relu and the sum
/// node as its own stage):
///
/// 1. `convA`: `[Dup, GN, ReLU, Conv3x3(stride)]`
/// 2. `convB`: `[GN, ReLU, Conv3x3(1)]`
/// 3. `proj` (only when shape changes): `[MapLane(skip, Conv1x1(stride))]`
/// 4. `sum`: `[AddLanes]`
fn residual_block(
    stages: &mut Vec<Stage>,
    name: &str,
    in_c: usize,
    out_c: usize,
    stride: usize,
    rng: &mut impl Rng,
) {
    stages.push(Stage::new(
        format!("{name}.convA"),
        vec![
            Box::new(Dup::new()) as Box<dyn Layer>,
            gn(in_c),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(in_c, out_c, 3, stride, 1, false, rng)),
        ],
    ));
    stages.push(Stage::new(
        format!("{name}.convB"),
        vec![
            gn(out_c) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(Conv2d::new(out_c, out_c, 3, 1, 1, false, rng)),
        ],
    ));
    if stride != 1 || in_c != out_c {
        stages.push(Stage::new(
            format!("{name}.proj"),
            vec![Box::new(MapLane::new(
                1,
                Box::new(Conv2d::new(in_c, out_c, 1, stride, 0, false, rng)),
            )) as Box<dyn Layer>],
        ));
    }
    stages.push(Stage::new(
        format!("{name}.sum"),
        vec![Box::new(AddLanes::new()) as Box<dyn Layer>],
    ));
}

/// Builds a CIFAR-style pre-activation ResNet (RN20/32/44/56/110).
///
/// The returned network's [`Network::pipeline_stage_count`] equals
/// [`ResNetConfig::expected_stage_count`], reproducing the stage counts of
/// Table 1 (34 for RN20 … 169 for RN110).
///
/// # Panics
///
/// Panics if the depth is not `6n + 2`.
pub fn resnet_cifar(config: ResNetConfig, rng: &mut impl Rng) -> Network {
    let n = config.blocks_per_group();
    let w = config.base_width;
    let widths = [w, 2 * w, 4 * w];
    let mut stages = Vec::new();
    // Stem: plain conv (normalization happens inside the first pre-act block).
    stages.push(Stage::new(
        "stem",
        vec![Box::new(Conv2d::new(config.in_channels, w, 3, 1, 1, false, rng)) as Box<dyn Layer>],
    ));
    let mut in_c = w;
    for (g, &out_c) in widths.iter().enumerate() {
        for b in 0..n {
            let stride = if g > 0 && b == 0 { 2 } else { 1 };
            residual_block(&mut stages, &format!("g{g}b{b}"), in_c, out_c, stride, rng);
            in_c = out_c;
        }
    }
    // Tail: final pre-activation, global pooling, classifier.
    stages.push(Stage::new(
        "tail.gnrelu",
        vec![gn(in_c), Box::new(Relu::new()) as Box<dyn Layer>],
    ));
    stages.push(Stage::single(Box::new(GlobalAvgPool2d::new())));
    stages.push(Stage::new(
        "tail.fc",
        vec![
            Box::new(Flatten::new()) as Box<dyn Layer>,
            Box::new(Linear::new(in_c, config.num_classes, true, rng)),
        ],
    ));
    Network::new(stages)
}

/// Builds an ImageNet-style bottleneck pre-activation ResNet50 analogue.
///
/// Groups of [3, 4, 6, 3] bottleneck blocks (1×1 → 3×3 → 1×1 convs), each
/// conv fused with its normalization and non-linearity into one stage, sum
/// nodes as stages, and two-stage projections (conv + norm) on each group's
/// first block. Total pipeline stage count (incl. loss):
/// `2 stem + 48 conv + 16 sum + 8 proj + 3 tail + 1 loss = 78`,
/// matching the 78 stages the paper reports for ImageNet ResNet50.
pub fn resnet50_like(
    base_width: usize,
    in_channels: usize,
    num_classes: usize,
    rng: &mut impl Rng,
) -> Network {
    let w = base_width;
    let group_blocks = [3usize, 4, 6, 3];
    let mut stages: Vec<Stage> = Vec::new();
    // Stem: conv + maxpool (two stages).
    stages.push(Stage::new(
        "stem.conv",
        vec![Box::new(Conv2d::new(in_channels, w, 3, 1, 1, false, rng)) as Box<dyn Layer>],
    ));
    stages.push(Stage::single(Box::new(MaxPool2d::new(2, 2))));
    let mut in_c = w;
    for (g, &blocks) in group_blocks.iter().enumerate() {
        let mid_c = w << g;
        let out_c = 4 * mid_c;
        for b in 0..blocks {
            let stride = if g > 0 && b == 0 { 2 } else { 1 };
            let name = format!("g{g}b{b}");
            stages.push(Stage::new(
                format!("{name}.conv1"),
                vec![
                    Box::new(Dup::new()) as Box<dyn Layer>,
                    gn(in_c),
                    Box::new(Relu::new()),
                    Box::new(Conv2d::new(in_c, mid_c, 1, 1, 0, false, rng)),
                ],
            ));
            stages.push(Stage::new(
                format!("{name}.conv2"),
                vec![
                    gn(mid_c) as Box<dyn Layer>,
                    Box::new(Relu::new()),
                    Box::new(Conv2d::new(mid_c, mid_c, 3, stride, 1, false, rng)),
                ],
            ));
            stages.push(Stage::new(
                format!("{name}.conv3"),
                vec![
                    gn(mid_c) as Box<dyn Layer>,
                    Box::new(Relu::new()),
                    Box::new(Conv2d::new(mid_c, out_c, 1, 1, 0, false, rng)),
                ],
            ));
            if b == 0 {
                // Projection shortcut: conv stage + norm stage.
                stages.push(Stage::new(
                    format!("{name}.proj.conv"),
                    vec![Box::new(MapLane::new(
                        1,
                        Box::new(Conv2d::new(in_c, out_c, 1, stride, 0, false, rng)),
                    )) as Box<dyn Layer>],
                ));
                stages.push(Stage::new(
                    format!("{name}.proj.norm"),
                    vec![Box::new(MapLane::new(1, gn(out_c))) as Box<dyn Layer>],
                ));
            }
            stages.push(Stage::new(
                format!("{name}.sum"),
                vec![Box::new(AddLanes::new()) as Box<dyn Layer>],
            ));
            in_c = out_c;
        }
    }
    stages.push(Stage::new(
        "tail.gnrelu",
        vec![gn(in_c), Box::new(Relu::new()) as Box<dyn Layer>],
    ));
    stages.push(Stage::single(Box::new(GlobalAvgPool2d::new())));
    stages.push(Stage::new(
        "tail.fc",
        vec![
            Box::new(Flatten::new()) as Box<dyn Layer>,
            Box::new(Linear::new(in_c, num_classes, true, rng)),
        ],
    ));
    Network::new(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(depth: usize) -> ResNetConfig {
        ResNetConfig {
            depth,
            base_width: 4,
            in_channels: 3,
            num_classes: 10,
        }
    }

    #[test]
    fn stage_counts_match_table1() {
        let mut rng = StdRng::seed_from_u64(0);
        for (depth, expected) in [(20, 34), (32, 52), (44, 70), (56, 88), (110, 169)] {
            let config = cfg(depth);
            assert_eq!(
                config.expected_stage_count(),
                expected,
                "formula for RN{depth}"
            );
            if depth <= 44 {
                let net = resnet_cifar(config, &mut rng);
                assert_eq!(net.pipeline_stage_count(), expected, "built RN{depth}");
            }
        }
    }

    #[test]
    fn resnet50_like_has_78_stages() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = resnet50_like(4, 3, 10, &mut rng);
        assert_eq!(net.pipeline_stage_count(), 78);
    }

    #[test]
    fn rn20_forward_backward_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = resnet_cifar(cfg(20), &mut rng);
        let x = pbp_tensor::normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[1, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[5]);
        assert!(loss.is_finite());
        let gx = net.backward(&grad);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
    }

    #[test]
    fn rn50_like_forward_backward_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = resnet50_like(2, 3, 10, &mut rng);
        let x = pbp_tensor::normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[1, 10]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let gx = net.backward(&grad);
        assert!(gx.all_finite());
    }

    #[test]
    #[should_panic(expected = "6n+2")]
    fn rejects_bad_depth() {
        cfg(21).blocks_per_group();
    }
}
