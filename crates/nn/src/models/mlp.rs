//! Small reference models used by tests and cheap experiments.

use crate::layers::{Conv2d, Flatten, GlobalAvgPool2d, GroupNorm, Linear, Relu};
use crate::network::{Network, Stage};
use rand::Rng;

/// Multi-layer perceptron: one stage per linear layer (ReLU fused, except
/// after the final layer).
///
/// `sizes` lists the layer widths including input and output, e.g.
/// `[784, 128, 10]`.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn mlp(sizes: &[usize], rng: &mut impl Rng) -> Network {
    assert!(
        sizes.len() >= 2,
        "mlp needs at least input and output sizes"
    );
    let mut stages = Vec::new();
    for (i, pair) in sizes.windows(2).enumerate() {
        let last = i + 2 == sizes.len();
        let linear = Box::new(Linear::new(pair[0], pair[1], true, rng));
        if last {
            stages.push(Stage::new(format!("fc{i}"), vec![linear]));
        } else {
            stages.push(Stage::new(
                format!("fc{i}+relu"),
                vec![linear, Box::new(Relu::new())],
            ));
        }
    }
    Network::new(stages)
}

/// Small convolutional classifier: `depth` fused `conv3x3+gn+relu` stages
/// followed by global average pooling and a linear head.
///
/// Used by the delayed-gradient simulation experiments (Figures 10, 13, 14)
/// where the paper trains ResNet20-class networks; this keeps the same
/// normalization and fused-stage structure at a budget that runs on CPU.
pub fn simple_cnn(
    in_channels: usize,
    width: usize,
    depth: usize,
    num_classes: usize,
    rng: &mut impl Rng,
) -> Network {
    assert!(depth >= 1, "simple_cnn needs at least one conv stage");
    let mut stages = Vec::new();
    let mut c = in_channels;
    for i in 0..depth {
        // Downsample every other stage to keep spatial cost bounded.
        let stride = if i > 0 && i % 2 == 0 { 2 } else { 1 };
        stages.push(Stage::new(
            format!("conv{i}"),
            vec![
                Box::new(Conv2d::new(c, width, 3, stride, 1, false, rng)) as Box<dyn crate::Layer>,
                Box::new(GroupNorm::with_group_size_two(width)),
                Box::new(Relu::new()),
            ],
        ));
        c = width;
    }
    stages.push(Stage::single(Box::new(GlobalAvgPool2d::new())));
    stages.push(Stage::new(
        "head",
        vec![
            Box::new(Flatten::new()) as Box<dyn crate::Layer>,
            Box::new(Linear::new(width, num_classes, true, rng)),
        ],
    ));
    Network::new(stages)
}

/// VGG-style convolutional classifier: `depth` fused `conv3x3+gn+relu`
/// stages followed by a flatten and a two-layer fully-connected head,
/// like the paper's CIFAR VGG networks (conv trunk, wide fc head).
///
/// `image` is the input side length, needed to size the flatten; `hidden`
/// is the width of the first fc layer. Unlike [`simple_cnn`]'s global
/// average pool, the wide fc head makes batch-1 inference memory-bound on
/// the fc weight matrix — the shape where batched evaluation (one matrix
/// product for the whole batch) pays off most, which is why the serving
/// benchmarks use this family.
///
/// # Panics
///
/// Panics if `depth < 1` or the downsampled feature map collapses to zero.
pub fn vgg_cnn(
    in_channels: usize,
    width: usize,
    depth: usize,
    image: usize,
    hidden: usize,
    num_classes: usize,
    rng: &mut impl Rng,
) -> Network {
    assert!(depth >= 1, "vgg_cnn needs at least one conv stage");
    let mut stages = Vec::new();
    let mut c = in_channels;
    let mut side = image;
    for i in 0..depth {
        let stride = if i > 0 && i % 2 == 0 { 2 } else { 1 };
        stages.push(Stage::new(
            format!("conv{i}"),
            vec![
                Box::new(Conv2d::new(c, width, 3, stride, 1, false, rng)) as Box<dyn crate::Layer>,
                Box::new(GroupNorm::with_group_size_two(width)),
                Box::new(Relu::new()),
            ],
        ));
        c = width;
        side = (side + 2 - 3) / stride + 1;
        assert!(side > 0, "feature map collapsed at stage {i}");
    }
    stages.push(Stage::new(
        "fc0",
        vec![
            Box::new(Flatten::new()) as Box<dyn crate::Layer>,
            Box::new(Linear::new(width * side * side, hidden, true, rng)),
            Box::new(Relu::new()),
        ],
    ));
    stages.push(Stage::single(Box::new(Linear::new(
        hidden,
        num_classes,
        true,
        rng,
    ))));
    Network::new(stages)
}

/// [`simple_cnn`] with weight-standardized convolutions (Qiao et al.,
/// 2019) — the Discussion-section variant expected to tolerate gradient
/// delay better than plain conv+GN.
pub fn simple_cnn_ws(
    in_channels: usize,
    width: usize,
    depth: usize,
    num_classes: usize,
    rng: &mut impl Rng,
) -> Network {
    use crate::layers::WsConv2d;
    assert!(depth >= 1, "simple_cnn_ws needs at least one conv stage");
    let mut stages = Vec::new();
    let mut c = in_channels;
    for i in 0..depth {
        let stride = if i > 0 && i % 2 == 0 { 2 } else { 1 };
        stages.push(Stage::new(
            format!("ws_conv{i}"),
            vec![
                Box::new(WsConv2d::new(c, width, 3, stride, 1, rng)) as Box<dyn crate::Layer>,
                Box::new(GroupNorm::with_group_size_two(width)),
                Box::new(Relu::new()),
            ],
        ));
        c = width;
    }
    stages.push(Stage::single(Box::new(GlobalAvgPool2d::new())));
    stages.push(Stage::new(
        "head",
        vec![
            Box::new(Flatten::new()) as Box<dyn crate::Layer>,
            Box::new(Linear::new(width, num_classes, true, rng)),
        ],
    ));
    Network::new(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use pbp_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_stage_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = mlp(&[10, 20, 5], &mut rng);
        assert_eq!(net.num_stages(), 2);
    }

    #[test]
    fn simple_cnn_forward_backward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = simple_cnn(3, 8, 4, 10, &mut rng);
        let x = pbp_tensor::normal(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[1, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[3]);
        assert!(loss.is_finite());
        let gx = net.backward(&grad);
        assert_eq!(gx.shape(), &[1, 3, 8, 8]);
        assert!(gx.all_finite());
    }

    #[test]
    fn vgg_cnn_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = vgg_cnn(3, 8, 3, 16, 32, 10, &mut rng);
        let x = pbp_tensor::normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[2, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[3, 1]);
        assert!(loss.is_finite());
        let gx = net.backward(&grad);
        assert_eq!(gx.shape(), &[2, 3, 16, 16]);
        assert!(gx.all_finite());
    }

    #[test]
    fn simple_cnn_learns_a_constant_mapping() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = simple_cnn(1, 4, 2, 2, &mut rng);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let mut losses = Vec::new();
        for _ in 0..40 {
            net.zero_grads();
            let logits = net.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
            net.backward(&grad);
            for s in 0..net.num_stages() {
                let stage = net.stage_mut(s);
                let grads: Vec<Tensor> = stage.grads().into_iter().cloned().collect();
                for (p, g) in stage.params_mut().into_iter().zip(&grads) {
                    pbp_tensor::ops::axpy(-0.2, g, p);
                }
            }
            losses.push(loss);
        }
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {:?}",
            losses.last()
        );
    }
}
