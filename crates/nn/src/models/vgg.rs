//! VGG networks for CIFAR-scale inputs (Simonyan & Zisserman, 2014), using
//! the CIFAR-10 recipe of Fu (2019) that the paper adopts: plain
//! conv/ReLU features (Fu's baseline VGG has no normalization) and dropout
//! in the classifier.
//!
//! Stage partitioning: each convolution is two pipeline stages (conv, then
//! relu — optionally with a group norm fused into the relu stage via
//! [`vgg_gn`]), one stage per max-pool, and a seven-stage classifier. This
//! reproduces Table 1's counts exactly (VGG11 = 29, VGG13 = 33, VGG16 = 39
//! including the loss stage).

use crate::layer::Layer;
use crate::layers::{Conv2d, Dropout, Flatten, GroupNorm, Linear, MaxPool2d, Relu};
use crate::network::{Network, Stage};
use rand::Rng;

/// VGG depth variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VggVariant {
    /// 8 convolutions, 29 pipeline stages.
    Vgg11,
    /// 10 convolutions, 33 pipeline stages.
    Vgg13,
    /// 13 convolutions, 39 pipeline stages.
    Vgg16,
}

impl VggVariant {
    /// Feature-extractor plan: `Some(c)` is a conv to `c` channels,
    /// `None` is a 2×2 max-pool.
    fn plan(&self) -> Vec<Option<usize>> {
        use VggVariant::*;
        let spec: &[isize] = match self {
            Vgg11 => &[64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1],
            Vgg13 => &[
                64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1,
            ],
            Vgg16 => &[
                64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1,
            ],
        };
        spec.iter()
            .map(|&v| if v < 0 { None } else { Some(v as usize) })
            .collect()
    }

    /// Number of convolution layers.
    pub fn conv_count(&self) -> usize {
        self.plan().iter().filter(|p| p.is_some()).count()
    }

    /// Pipeline stage count (incl. the loss stage) this variant produces:
    /// `2·convs (conv, gn+relu) + 5 pools + 7 classifier + 1 loss`,
    /// matching Table 1 (29 / 33 / 39).
    pub fn expected_stage_count(&self) -> usize {
        2 * self.conv_count() + 5 + 7 + 1
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            VggVariant::Vgg11 => "VGG11",
            VggVariant::Vgg13 => "VGG13",
            VggVariant::Vgg16 => "VGG16",
        }
    }
}

/// Builds a CIFAR-style VGG network.
///
/// `width_divisor` scales all channel counts down (1 = paper width, 8 =
/// one-eighth width for CPU budgets); the stage structure and counts are
/// unchanged. Input images must be 32×32 (five 2× pools reduce them to
/// 1×1).
///
/// Stage layout: each conv is followed by its own `relu` stage, each
/// max-pool is a stage, and the classifier is `dropout → fc → relu →
/// dropout → fc → relu → fc` (seven stages, flatten fused into the first
/// dropout stage).
///
/// # Panics
///
/// Panics if `width_divisor == 0` or it does not divide the base widths.
pub fn vgg(
    variant: VggVariant,
    width_divisor: usize,
    in_channels: usize,
    num_classes: usize,
    dropout_p: f32,
    rng: &mut impl Rng,
) -> Network {
    vgg_impl(
        variant,
        width_divisor,
        in_channels,
        num_classes,
        dropout_p,
        false,
        rng,
    )
}

/// [`vgg`] with a group normalization fused into each post-conv stage —
/// the batch-size-one-friendly variant. Same stage counts.
///
/// # Panics
///
/// Panics if `width_divisor == 0` or it does not divide the base widths.
pub fn vgg_gn(
    variant: VggVariant,
    width_divisor: usize,
    in_channels: usize,
    num_classes: usize,
    dropout_p: f32,
    rng: &mut impl Rng,
) -> Network {
    vgg_impl(
        variant,
        width_divisor,
        in_channels,
        num_classes,
        dropout_p,
        true,
        rng,
    )
}

fn vgg_impl(
    variant: VggVariant,
    width_divisor: usize,
    in_channels: usize,
    num_classes: usize,
    dropout_p: f32,
    group_norm: bool,
    rng: &mut impl Rng,
) -> Network {
    assert!(width_divisor > 0, "width divisor must be positive");
    let mut stages: Vec<Stage> = Vec::new();
    let mut c = in_channels;
    let mut conv_idx = 0usize;
    for step in variant.plan() {
        match step {
            Some(base_out) => {
                assert_eq!(
                    base_out % width_divisor,
                    0,
                    "width divisor {width_divisor} must divide {base_out}"
                );
                let out = base_out / width_divisor;
                stages.push(Stage::new(
                    format!("conv{conv_idx}"),
                    vec![Box::new(Conv2d::new(c, out, 3, 1, 1, true, rng)) as Box<dyn Layer>],
                ));
                if group_norm {
                    stages.push(Stage::new(
                        format!("gnrelu{conv_idx}"),
                        vec![
                            Box::new(GroupNorm::with_group_size_two(out)) as Box<dyn Layer>,
                            Box::new(Relu::new()),
                        ],
                    ));
                } else {
                    stages.push(Stage::new(
                        format!("relu{conv_idx}"),
                        vec![Box::new(Relu::new()) as Box<dyn Layer>],
                    ));
                }
                c = out;
                conv_idx += 1;
            }
            None => {
                stages.push(Stage::single(Box::new(MaxPool2d::new(2, 2))));
            }
        }
    }
    // Classifier: 512/div features after the last pool (1×1 spatial).
    let feat = c;
    let hidden = 512 / width_divisor;
    let seed = rng.gen::<u64>();
    stages.push(Stage::new(
        "cls.drop0",
        vec![
            Box::new(Flatten::new()) as Box<dyn Layer>,
            Box::new(Dropout::new(dropout_p, seed)),
        ],
    ));
    stages.push(Stage::new(
        "cls.fc0",
        vec![Box::new(Linear::new(feat, hidden, true, rng)) as Box<dyn Layer>],
    ));
    stages.push(Stage::new(
        "cls.relu0",
        vec![Box::new(Relu::new()) as Box<dyn Layer>],
    ));
    stages.push(Stage::new(
        "cls.drop1",
        vec![Box::new(Dropout::new(dropout_p, seed.wrapping_add(1))) as Box<dyn Layer>],
    ));
    stages.push(Stage::new(
        "cls.fc1",
        vec![Box::new(Linear::new(hidden, hidden, true, rng)) as Box<dyn Layer>],
    ));
    stages.push(Stage::new(
        "cls.relu1",
        vec![Box::new(Relu::new()) as Box<dyn Layer>],
    ));
    stages.push(Stage::new(
        "cls.fc2",
        vec![Box::new(Linear::new(hidden, num_classes, true, rng)) as Box<dyn Layer>],
    ));
    Network::new(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stage_counts_match_table1() {
        let mut rng = StdRng::seed_from_u64(0);
        for (variant, expected) in [
            (VggVariant::Vgg11, 29),
            (VggVariant::Vgg13, 33),
            (VggVariant::Vgg16, 39),
        ] {
            assert_eq!(
                variant.expected_stage_count(),
                expected,
                "{}",
                variant.name()
            );
            let net = vgg(variant, 16, 3, 10, 0.3, &mut rng);
            assert_eq!(net.pipeline_stage_count(), expected, "{}", variant.name());
        }
    }

    #[test]
    fn vgg11_forward_backward_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = vgg(VggVariant::Vgg11, 16, 3, 10, 0.3, &mut rng);
        let x = pbp_tensor::normal(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[1, 10]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[7]);
        assert!(loss.is_finite());
        let gx = net.backward(&grad);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
    }

    #[test]
    fn eval_mode_disables_dropout_determinism() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = vgg(VggVariant::Vgg11, 16, 3, 10, 0.5, &mut rng);
        net.set_training(false);
        let x = pbp_tensor::normal(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let a = net.forward(&x);
        net.clear_stash();
        let b = net.forward(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
