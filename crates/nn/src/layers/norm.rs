//! Normalization layers.
//!
//! The paper trains at a per-worker batch size of one, which rules out batch
//! normalization; it substitutes group normalization (Wu & He, 2018).
//! [`BatchNorm2d`] is still provided for the delayed-gradient simulation
//! experiments that run at batch size > 1 and for the discussion-section
//! comparison (BN appears to mask delay effects relative to GN).

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;
use std::collections::VecDeque;

/// Per-sample stash: normalized activations plus per-group inverse stds.
type NormStash = (Tensor, Vec<f32>);

/// Group normalization over `[N, C, H, W]`.
///
/// Channels are split into `groups` groups; mean and variance are computed
/// per sample per group over `(C/groups, H, W)`. Works at batch size one.
#[derive(Debug)]
pub struct GroupNorm {
    groups: usize,
    channels: usize,
    eps: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    /// FIFO of (normalized activations, per-group inverse std, input shape).
    stash: VecDeque<NormStash>,
}

impl GroupNorm {
    /// Creates a group-norm layer with `gamma = 1`, `beta = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not divisible by `groups` or `groups == 0`.
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert_eq!(
            channels % groups,
            0,
            "channels {channels} must be divisible by groups {groups}"
        );
        GroupNorm {
            groups,
            channels,
            eps: 1e-5,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            stash: VecDeque::new(),
        }
    }

    /// Group-norm with the paper's "initial group size of two" rule
    /// (Wu & He, 2018): the number of groups is `channels / 2` capped at
    /// 32 groups, always dividing `channels`.
    pub fn with_group_size_two(channels: usize) -> Self {
        let mut groups = (channels / 2).clamp(1, 32);
        while !channels.is_multiple_of(groups) {
            groups -= 1;
        }
        GroupNorm::new(groups, channels)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }
}

impl Layer for GroupNorm {
    fn name(&self) -> String {
        format!("groupnorm(g={},c={})", self.groups, self.channels)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("groupnorm: empty stack");
        assert_eq!(x.rank(), 4, "groupnorm expects NCHW");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        assert_eq!(c, self.channels, "groupnorm channel mismatch");
        let cg = c / self.groups;
        let group_len = cg * h * w;
        let hw = h * w;
        let xs = x.as_slice();
        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        let mut inv_stds = Vec::with_capacity(n * self.groups);
        {
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            let gs = self.gamma.as_slice();
            let bs = self.beta.as_slice();
            for ni in 0..n {
                for g in 0..self.groups {
                    let start = ni * c * hw + g * group_len;
                    let seg = &xs[start..start + group_len];
                    let mean = seg.iter().map(|&v| v as f64).sum::<f64>() / group_len as f64;
                    let var = (seg
                        .iter()
                        .map(|&v| {
                            let d = v as f64 - mean;
                            d * d
                        })
                        .sum::<f64>()
                        / group_len as f64)
                        .max(0.0);
                    let inv_std = 1.0 / (var + self.eps as f64).sqrt();
                    inv_stds.push(inv_std as f32);
                    let (mean, inv_std) = (mean as f32, inv_std as f32);
                    for ci in 0..cg {
                        let ch = g * cg + ci;
                        let (gam, bet) = (gs[ch], bs[ch]);
                        let cbase = start + ci * hw;
                        for p in 0..hw {
                            let xn = (xs[cbase + p] - mean) * inv_std;
                            xh[cbase + p] = xn;
                            ys[cbase + p] = gam * xn + bet;
                        }
                    }
                }
            }
        }
        self.stash.push_back((xhat, inv_stds));
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("groupnorm: empty grad stack");
        let (xhat, inv_stds) = self.stash.pop_front().expect("groupnorm: no stash");
        let [n, c, h, w] = [g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]];
        let cg = c / self.groups;
        let group_len = cg * h * w;
        let hw = h * w;
        let gs = g.as_slice();
        let xh = xhat.as_slice();
        let gam = self.gamma.as_slice();
        // Input gradient per group:
        // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat))
        // The per-channel sums Σg and Σg·xhat serve double duty: they are the
        // parameter gradients, and weighted by gamma they give the two group
        // means above — so one pass over the data replaces three.
        let mut gx = Tensor::zeros(g.shape());
        {
            let gxs = gx.as_mut_slice();
            let gg = self.grad_gamma.as_mut_slice();
            let gb = self.grad_beta.as_mut_slice();
            for ni in 0..n {
                for grp in 0..self.groups {
                    let start = ni * c * hw + grp * group_len;
                    let inv_std = inv_stds[ni * self.groups + grp];
                    let mut sum_dxhat = 0.0f64;
                    let mut sum_dxhat_xhat = 0.0f64;
                    for ci in 0..cg {
                        let ch = grp * cg + ci;
                        let cbase = start + ci * hw;
                        let mut sg = 0.0f32;
                        let mut sb = 0.0f32;
                        for p in 0..hw {
                            sg += gs[cbase + p] * xh[cbase + p];
                            sb += gs[cbase + p];
                        }
                        gg[ch] += sg;
                        gb[ch] += sb;
                        sum_dxhat += (gam[ch] * sb) as f64;
                        sum_dxhat_xhat += (gam[ch] * sg) as f64;
                    }
                    let mean_dxhat = (sum_dxhat / group_len as f64) as f32;
                    let mean_dxhat_xhat = (sum_dxhat_xhat / group_len as f64) as f32;
                    for ci in 0..cg {
                        let ch = grp * cg + ci;
                        let scale = inv_std * gam[ch];
                        let shift = inv_std * mean_dxhat;
                        let coeff = inv_std * mean_dxhat_xhat;
                        let cbase = start + ci * hw;
                        for p in 0..hw {
                            gxs[cbase + p] = scale * gs[cbase + p] - shift - coeff * xh[cbase + p];
                        }
                    }
                }
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.gamma, &self.grad_gamma),
            (&mut self.beta, &self.grad_beta),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

/// Batch normalization over `[N, C, H, W]` (statistics over N, H, W per
/// channel). Requires batch parallelism; provided for reference experiments.
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    training: bool,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    stash: VecDeque<NormStash>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with default momentum 0.1.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            training: true,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            stash: VecDeque::new(),
        }
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("batchnorm(c={})", self.channels)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("batchnorm: empty stack");
        assert_eq!(x.rank(), 4, "batchnorm expects NCHW");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let m = n * h * w;
        let xs = x.as_slice();
        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        {
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            for ch in 0..c {
                let (mean, var) = if self.training {
                    let mut mean = 0.0f64;
                    for ni in 0..n {
                        let base = (ni * c + ch) * h * w;
                        for p in 0..h * w {
                            mean += xs[base + p] as f64;
                        }
                    }
                    mean /= m as f64;
                    let mut var = 0.0f64;
                    for ni in 0..n {
                        let base = (ni * c + ch) * h * w;
                        for p in 0..h * w {
                            let d = xs[base + p] as f64 - mean;
                            var += d * d;
                        }
                    }
                    var /= m as f64;
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean as f32;
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var as f32;
                    (mean, var)
                } else {
                    (self.running_mean[ch] as f64, self.running_var[ch] as f64)
                };
                let inv_std = 1.0 / (var + self.eps as f64).sqrt();
                inv_stds[ch] = inv_std as f32;
                let (gam, bet) = (self.gamma.as_slice()[ch], self.beta.as_slice()[ch]);
                for ni in 0..n {
                    let base = (ni * c + ch) * h * w;
                    for p in 0..h * w {
                        let xn = ((xs[base + p] as f64 - mean) * inv_std) as f32;
                        xh[base + p] = xn;
                        ys[base + p] = gam * xn + bet;
                    }
                }
            }
        }
        self.stash.push_back((xhat, inv_stds));
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("batchnorm: empty grad stack");
        let (xhat, inv_stds) = self.stash.pop_front().expect("batchnorm: no stash");
        let [n, c, h, w] = [g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]];
        let m = n * h * w;
        let gs = g.as_slice();
        let xh = xhat.as_slice();
        let mut gx = Tensor::zeros(g.shape());
        {
            let gxs = gx.as_mut_slice();
            let gg = self.grad_gamma.as_mut_slice();
            let gb = self.grad_beta.as_mut_slice();
            for ch in 0..c {
                let gam = self.gamma.as_slice()[ch];
                let mut sum_dy = 0.0f64;
                let mut sum_dy_xhat = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ch) * h * w;
                    for p in 0..h * w {
                        sum_dy += gs[base + p] as f64;
                        sum_dy_xhat += gs[base + p] as f64 * xh[base + p] as f64;
                    }
                }
                gg[ch] += sum_dy_xhat as f32;
                gb[ch] += sum_dy as f32;
                let mean_dxhat = gam as f64 * sum_dy / m as f64;
                let mean_dxhat_xhat = gam as f64 * sum_dy_xhat / m as f64;
                for ni in 0..n {
                    let base = (ni * c + ch) * h * w;
                    for p in 0..h * w {
                        let dxhat = gs[base + p] as f64 * gam as f64;
                        gxs[base + p] = (inv_stds[ch] as f64
                            * (dxhat - mean_dxhat - xh[base + p] as f64 * mean_dxhat_xhat))
                            as f32;
                    }
                }
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.gamma, &self.grad_gamma),
            (&mut self.beta, &self.grad_beta),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }

    fn state_bytes(&self) -> Option<Vec<u8>> {
        let mut w = pbp_snapshot::StateWriter::new();
        w.put_f32_slice(&self.running_mean);
        w.put_f32_slice(&self.running_var);
        Some(w.into_bytes())
    }

    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<(), pbp_snapshot::SnapshotError> {
        let mut r = pbp_snapshot::StateReader::new(bytes);
        let mean = r.take_f32_vec()?;
        let var = r.take_f32_vec()?;
        r.finish()?;
        if mean.len() != self.channels || var.len() != self.channels {
            return Err(pbp_snapshot::SnapshotError::Mismatch(format!(
                "batchnorm state for {} channels, layer has {}",
                mean.len(),
                self.channels
            )));
        }
        self.running_mean = mean;
        self.running_var = var;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn groupnorm_output_is_normalized_per_group() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = pbp_tensor::normal(&[2, 4, 3, 3], 5.0, 3.0, &mut rng);
        let mut gn = GroupNorm::new(2, 4);
        let mut s = vec![x];
        gn.forward(&mut s);
        let y = s.pop().unwrap();
        // With gamma=1, beta=0 each (n, group) block has mean≈0 var≈1.
        let group_len = 2 * 9;
        for ni in 0..2 {
            for g in 0..2 {
                let start = ni * 4 * 9 + g * group_len;
                let seg = &y.as_slice()[start..start + group_len];
                let mean: f32 = seg.iter().sum::<f32>() / group_len as f32;
                let var: f32 =
                    seg.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
                assert!(mean.abs() < 1e-4, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "var {var}");
            }
        }
    }

    #[test]
    fn groupnorm_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = pbp_tensor::normal(&[1, 4, 2, 2], 0.0, 1.0, &mut rng);
        let mut gn = GroupNorm::new(2, 4);
        // Use a non-trivial scalar loss: sum(y * k) with varying k.
        let k = pbp_tensor::normal(&[1, 4, 2, 2], 0.0, 1.0, &mut rng);
        let run = |gn: &mut GroupNorm, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            gn.forward(&mut s);
            let y = s.pop().unwrap();
            gn.clear_stash();
            y.as_slice()
                .iter()
                .zip(k.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let mut s = vec![x.clone()];
        gn.forward(&mut s);
        let _ = s.pop();
        let mut g = vec![k.clone()];
        gn.backward(&mut g);
        let gx = g.pop().unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (run(&mut gn, &xp) - run(&mut gn, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 3e-2,
                "input grad {idx}: {num} vs {}",
                gx.as_slice()[idx]
            );
        }
        // gamma / beta gradients.
        let gg = gn.grads()[0].clone();
        let gb = gn.grads()[1].clone();
        for ch in 0..4 {
            let orig = gn.gamma.as_slice()[ch];
            gn.gamma.as_mut_slice()[ch] = orig + eps;
            let lp = run(&mut gn, &x);
            gn.gamma.as_mut_slice()[ch] = orig - eps;
            let lm = run(&mut gn, &x);
            gn.gamma.as_mut_slice()[ch] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gg.as_slice()[ch]).abs() < 3e-2, "gamma grad {ch}");
            let origb = gn.beta.as_slice()[ch];
            gn.beta.as_mut_slice()[ch] = origb + eps;
            let lp = run(&mut gn, &x);
            gn.beta.as_mut_slice()[ch] = origb - eps;
            let lm = run(&mut gn, &x);
            gn.beta.as_mut_slice()[ch] = origb;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gb.as_slice()[ch]).abs() < 3e-2, "beta grad {ch}");
        }
    }

    #[test]
    fn groupnorm_works_at_batch_size_one() {
        let x = pbp_tensor::normal(&[1, 8, 4, 4], 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let mut gn = GroupNorm::with_group_size_two(8);
        assert_eq!(gn.groups(), 4);
        let mut s = vec![x];
        gn.forward(&mut s);
        assert!(s[0].all_finite());
    }

    #[test]
    fn batchnorm_train_normalizes_per_channel() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = pbp_tensor::normal(&[8, 3, 4, 4], 2.0, 2.0, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        let mut s = vec![x];
        bn.forward(&mut s);
        let y = s.pop().unwrap();
        for ch in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..8 {
                let base = (ni * 3 + ch) * 16;
                vals.extend_from_slice(&y.as_slice()[base..base + 16]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut bn = BatchNorm2d::new(2);
        // Train on several batches so running stats move toward N(3, 1).
        for _ in 0..200 {
            let x = pbp_tensor::normal(&[16, 2, 2, 2], 3.0, 1.0, &mut rng);
            let mut s = vec![x];
            bn.forward(&mut s);
            bn.clear_stash();
        }
        bn.set_training(false);
        let x = Tensor::full(&[1, 2, 2, 2], 3.0);
        let mut s = vec![x];
        bn.forward(&mut s);
        // Input at the running mean should map to roughly zero.
        assert!(s[0].as_slice().iter().all(|v| v.abs() < 0.2));
    }

    #[test]
    fn groupnorm_rejects_indivisible_channels() {
        let result = std::panic::catch_unwind(|| GroupNorm::new(3, 4));
        assert!(result.is_err());
    }
}
