//! Pointwise activation layers: ReLU and (inverted) dropout.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    /// FIFO of masks (1.0 where input > 0) for in-flight samples.
    stash: VecDeque<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "relu".to_string()
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("relu: empty stack");
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let y = x.mul(&mask).expect("same shape");
        self.stash.push_back(mask);
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("relu: empty grad stack");
        let mask = self.stash.pop_front().expect("relu: no stashed mask");
        grad_stack.push(g.mul(&mask).expect("same shape"));
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

/// Inverted dropout: at train time zeroes activations with probability `p`
/// and scales survivors by `1/(1-p)`; at eval time it is the identity.
///
/// The RNG is owned and seeded so training runs are reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: SmallRng,
    stash: VecDeque<Option<Tensor>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Dropout {
            p,
            training: true,
            rng: SmallRng::seed_from_u64(seed),
            stash: VecDeque::new(),
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout(p={})", self.p)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("dropout: empty stack");
        if !self.training || self.p == 0.0 {
            self.stash.push_back(None);
            stack.push(x);
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(x.shape(), |_| {
            if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let y = x.mul(&mask).expect("same shape");
        self.stash.push_back(Some(mask));
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("dropout: empty grad stack");
        match self.stash.pop_front().expect("dropout: no stashed mask") {
            Some(mask) => grad_stack.push(g.mul(&mask).expect("same shape")),
            None => grad_stack.push(g),
        }
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }

    // Mask state is per-sample and lives in the stash (empty at snapshot
    // points); the mask *generator* position is the durable state.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        let mut w = pbp_snapshot::StateWriter::new();
        for word in self.rng.state() {
            w.put_u64(word);
        }
        Some(w.into_bytes())
    }

    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<(), pbp_snapshot::SnapshotError> {
        let mut r = pbp_snapshot::StateReader::new(bytes);
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.take_u64()?;
        }
        r.finish()?;
        if state.iter().all(|&word| word == 0) {
            return Err(pbp_snapshot::SnapshotError::Corrupt(
                "all-zero dropout rng state".into(),
            ));
        }
        self.rng = SmallRng::from_state(state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_and_routes_grads() {
        let mut relu = Relu::new();
        let mut s = vec![Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0])];
        relu.forward(&mut s);
        assert_eq!(s[0].as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let mut g = vec![Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0])];
        relu.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_grad_at_zero_is_zero() {
        let mut relu = Relu::new();
        let mut s = vec![Tensor::from_slice(&[0.0])];
        relu.forward(&mut s);
        let mut g = vec![Tensor::from_slice(&[5.0])];
        relu.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[0.0]);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let mut s = vec![x.clone()];
        d.forward(&mut s);
        assert_eq!(s[0].as_slice(), x.as_slice());
        let mut g = vec![Tensor::ones(&[3])];
        d.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn dropout_preserves_expected_value_roughly() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[10_000]);
        let mut s = vec![x];
        d.forward(&mut s);
        let mean = s[0].mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let mut s = vec![Tensor::ones(&[64])];
        d.forward(&mut s);
        let y = s.pop().unwrap();
        let mut g = vec![Tensor::ones(&[64])];
        d.backward(&mut g);
        // Gradient must be zero exactly where the output was zeroed.
        for (yv, gv) in y.as_slice().iter().zip(g[0].as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }
}
