//! Structural layers for expressing residual topologies as linear stage
//! chains: lane duplication, lane summation and per-lane mapping.
//!
//! The paper's pipeline treats the sum nodes between residual blocks as
//! pipeline stages of their own; [`AddLanes`] is exactly that stage.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;

/// Duplicates the top lane: `[.., x] → [.., x, x]`.
///
/// Used to fork a residual-block input onto the skip lane. Backward sums
/// the gradients of both copies.
#[derive(Debug, Default)]
pub struct Dup;

impl Dup {
    /// Creates a duplication op.
    pub fn new() -> Self {
        Dup
    }
}

impl Layer for Dup {
    fn name(&self) -> String {
        "dup".to_string()
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.last().expect("dup: empty stack").clone();
        stack.push(x);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g_top = grad_stack.pop().expect("dup: empty grad stack");
        let g_below = grad_stack.last_mut().expect("dup: grad stack underflow");
        g_below
            .add_assign(&g_top)
            .expect("dup grads must be same shape");
    }
}

/// Sums the two top lanes: `[.., a, b] → [.., a + b]` — the residual
/// "sum node", which is its own pipeline stage in the paper.
///
/// Backward duplicates the incoming gradient onto both lanes.
#[derive(Debug, Default)]
pub struct AddLanes;

impl AddLanes {
    /// Creates a lane-summation op.
    pub fn new() -> Self {
        AddLanes
    }
}

impl Layer for AddLanes {
    fn name(&self) -> String {
        "add".to_string()
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let b = stack.pop().expect("add: empty stack");
        let a = stack.pop().expect("add: stack underflow");
        stack.push(a.add(&b).expect("add lanes must be same shape"));
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("add: empty grad stack");
        grad_stack.push(g.clone());
        grad_stack.push(g);
    }
}

/// Applies an inner layer to the lane `depth` positions below the top
/// (`depth == 0` is the top lane).
///
/// Used for projection shortcuts: the skip lane of a down-sampling residual
/// block passes through a 1×1 strided convolution.
pub struct MapLane {
    depth: usize,
    inner: Box<dyn Layer>,
}

impl MapLane {
    /// Wraps `inner` so it transforms the lane `depth` below the top.
    pub fn new(depth: usize, inner: Box<dyn Layer>) -> Self {
        MapLane { depth, inner }
    }
}

impl std::fmt::Debug for MapLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MapLane(depth={}, inner={})",
            self.depth,
            self.inner.name()
        )
    }
}

impl Layer for MapLane {
    fn name(&self) -> String {
        format!("lane[-{}]:{}", self.depth, self.inner.name())
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let idx = stack
            .len()
            .checked_sub(1 + self.depth)
            .expect("maplane: underflow");
        let x = stack.remove(idx);
        let mut sub = vec![x];
        self.inner.forward(&mut sub);
        stack.insert(idx, sub.pop().expect("inner layer must produce output"));
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let idx = grad_stack
            .len()
            .checked_sub(1 + self.depth)
            .expect("maplane: underflow");
        let g = grad_stack.remove(idx);
        let mut sub = vec![g];
        self.inner.backward(&mut sub);
        grad_stack.insert(idx, sub.pop().expect("inner layer must produce gradient"));
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.params_mut()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.inner.grads()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        self.inner.params_and_grads()
    }

    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn set_training(&mut self, training: bool) {
        self.inner.set_training(training);
    }

    fn clear_stash(&mut self) {
        self.inner.clear_stash();
    }
}

/// Flattens `[N, C, H, W] → [N, C*H*W]`.
#[derive(Debug, Default)]
pub struct Flatten {
    stash: std::collections::VecDeque<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten op.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("flatten: empty stack");
        let n = x.shape()[0];
        let rest = x.len() / n;
        self.stash.push_back(x.shape().to_vec());
        stack.push(x.reshape(&[n, rest]).expect("same volume"));
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("flatten: empty grad stack");
        let shape = self.stash.pop_front().expect("flatten: no stash");
        grad_stack.push(g.reshape(&shape).expect("same volume"));
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Relu;

    #[test]
    fn dup_forwards_copy_and_sums_grads() {
        let mut dup = Dup::new();
        let mut s = vec![Tensor::from_slice(&[1.0, 2.0])];
        dup.forward(&mut s);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].as_slice(), s[1].as_slice());
        let mut g = vec![
            Tensor::from_slice(&[1.0, 1.0]),
            Tensor::from_slice(&[2.0, 3.0]),
        ];
        dup.backward(&mut g);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn add_lanes_sums_and_fans_out_grad() {
        let mut add = AddLanes::new();
        let mut s = vec![Tensor::from_slice(&[1.0]), Tensor::from_slice(&[2.0])];
        add.forward(&mut s);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].as_slice(), &[3.0]);
        let mut g = vec![Tensor::from_slice(&[5.0])];
        add.backward(&mut g);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].as_slice(), &[5.0]);
        assert_eq!(g[1].as_slice(), &[5.0]);
    }

    #[test]
    fn residual_identity_block_doubles_gradient() {
        // y = x + x through Dup/AddLanes: dy/dx = 2.
        let mut dup = Dup::new();
        let mut add = AddLanes::new();
        let mut s = vec![Tensor::from_slice(&[3.0])];
        dup.forward(&mut s);
        add.forward(&mut s);
        assert_eq!(s[0].as_slice(), &[6.0]);
        let mut g = vec![Tensor::from_slice(&[1.0])];
        add.backward(&mut g);
        dup.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[2.0]);
    }

    #[test]
    fn maplane_transforms_lower_lane() {
        let mut map = MapLane::new(1, Box::new(Relu::new()));
        let mut s = vec![
            Tensor::from_slice(&[-1.0, 1.0]),
            Tensor::from_slice(&[9.0, 9.0]),
        ];
        map.forward(&mut s);
        // Lane below top got ReLU'd; top untouched.
        assert_eq!(s[0].as_slice(), &[0.0, 1.0]);
        assert_eq!(s[1].as_slice(), &[9.0, 9.0]);
        let mut g = vec![
            Tensor::from_slice(&[1.0, 1.0]),
            Tensor::from_slice(&[1.0, 1.0]),
        ];
        map.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[0.0, 1.0]);
        assert_eq!(g[1].as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let mut s = vec![Tensor::ones(&[2, 3, 2, 2])];
        f.forward(&mut s);
        assert_eq!(s[0].shape(), &[2, 12]);
        let mut g = vec![Tensor::ones(&[2, 12])];
        f.backward(&mut g);
        assert_eq!(g[0].shape(), &[2, 3, 2, 2]);
    }
}
