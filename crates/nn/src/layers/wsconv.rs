//! Weight-standardized convolution (Qiao et al., 2019).
//!
//! The paper's Discussion section lists Weight Standardization among the
//! batch-free normalization techniques that "may boost delay tolerance".
//! This layer standardizes the kernel of each output channel to zero mean
//! and unit variance before convolving, and back-propagates through the
//! standardization, so it composes with group normalization at batch size
//! one.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::ops::{
    conv2d_backward, conv2d_batched_reusing, conv2d_reusing, Conv2dSpec, ConvBatchScratch,
};
use pbp_tensor::{he_normal, Tensor};
use rand::Rng;
use std::collections::VecDeque;

/// Per-sample stash: im2col buffers, input spatial size, and the
/// standardized weight used on the forward pass (needed to back-propagate
/// through the standardization).
type WsStash = (Vec<Vec<f32>>, (usize, usize), Tensor);

/// 2-D convolution whose effective kernel is standardized per output
/// channel: `ŵ_o = (w_o − μ_o) / (σ_o + ε)`.
#[derive(Debug)]
pub struct WsConv2d {
    spec: Conv2dSpec,
    weight: Tensor,
    grad_weight: Tensor,
    eps: f32,
    stash: VecDeque<WsStash>,
    /// Retired im2col buffers recycled by later forwards.
    spare: Vec<Vec<f32>>,
    /// Recycled wide-lowering buffers for the eval-mode batched path.
    batch_scratch: ConvBatchScratch,
    /// Input spatial size seen by the most recent forward pass; lets
    /// [`Layer::flops_per_sample`] report the spatially-resolved cost.
    last_hw: Option<(usize, usize)>,
    /// In eval mode no backward will consume the stash, so forward lowers
    /// the whole batch into one wide GEMM over the standardized weight
    /// (see [`Conv2d`] — bit-identical to the per-sample path).
    ///
    /// [`Conv2d`]: crate::layers::Conv2d
    training: bool,
}

impl WsConv2d {
    /// Creates a He-initialized weight-standardized convolution (no bias —
    /// standardization removes the mean anyway; pair with a normalization
    /// layer that has an affine part).
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding)
            .expect("valid conv2d geometry");
        WsConv2d {
            weight: he_normal(&spec.weight_shape(), spec.fan_in(), rng),
            grad_weight: Tensor::zeros(&spec.weight_shape()),
            eps: 1e-5,
            spec,
            stash: VecDeque::new(),
            spare: Vec::new(),
            batch_scratch: ConvBatchScratch::default(),
            last_hw: None,
            training: true,
        }
    }

    /// Standardizes the raw weight per output channel, returning
    /// `(ŵ, per-row inverse std)`.
    fn standardized(&self) -> (Tensor, Vec<f32>) {
        let rows = self.spec.out_channels;
        let cols = self.spec.fan_in();
        let w = self.weight.as_slice();
        let mut out = Tensor::zeros(self.weight.shape());
        let mut inv_stds = Vec::with_capacity(rows);
        {
            let os = out.as_mut_slice();
            for r in 0..rows {
                let seg = &w[r * cols..(r + 1) * cols];
                let mean = seg.iter().map(|&v| v as f64).sum::<f64>() / cols as f64;
                let var = seg
                    .iter()
                    .map(|&v| {
                        let d = v as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / cols as f64;
                let inv = 1.0 / (var.sqrt() + self.eps as f64);
                inv_stds.push(inv as f32);
                for (j, &v) in seg.iter().enumerate() {
                    os[r * cols + j] = ((v as f64 - mean) * inv) as f32;
                }
            }
        }
        (out, inv_stds)
    }
}

impl Layer for WsConv2d {
    fn name(&self) -> String {
        format!(
            "ws_conv{}x{}({}→{},s{})",
            self.spec.kernel,
            self.spec.kernel,
            self.spec.in_channels,
            self.spec.out_channels,
            self.spec.stride
        )
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("ws_conv: empty stack");
        let (h, w) = (x.shape()[2], x.shape()[3]);
        self.last_hw = Some((h, w));
        let (what, _) = self.standardized();
        let y = if self.training {
            let (y, cols) =
                conv2d_reusing(&x, &what, &self.spec, &mut self.spare).expect("ws_conv shapes");
            self.stash.push_back((cols, (h, w), what));
            y
        } else {
            conv2d_batched_reusing(&x, &what, &self.spec, &mut self.batch_scratch)
                .expect("ws_conv shapes")
        };
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("ws_conv: empty grad stack");
        let (cols, hw, what) = self.stash.pop_front().expect("ws_conv: no stash");
        let (gx, g_what) =
            conv2d_backward(&g, &what, &cols, hw, &self.spec).expect("ws_conv grad shapes");
        self.spare.extend(cols);
        // Back-propagate through ŵ = (w − μ)/(σ + ε), per output channel:
        // dw = inv·(dŵ − mean(dŵ) − ŵ·mean(dŵ ⊙ ŵ)·σ/(σ+ε)). For ε ≪ σ we
        // use the standard normalization backward (σ/(σ+ε) ≈ 1).
        let rows = self.spec.out_channels;
        let ncols = self.spec.fan_in();
        // Recompute inverse stds from the *current* raw weight (identical
        // to forward-time values because the weight is untouched between
        // our forward and backward within one stash entry).
        let (_, inv_stds) = self.standardized();
        let gw_hat = g_what.as_slice();
        let ws = what.as_slice();
        let gwr = self.grad_weight.as_mut_slice();
        for r in 0..rows {
            let seg_g = &gw_hat[r * ncols..(r + 1) * ncols];
            let seg_w = &ws[r * ncols..(r + 1) * ncols];
            let mean_g = seg_g.iter().map(|&v| v as f64).sum::<f64>() / ncols as f64;
            let mean_gw = seg_g
                .iter()
                .zip(seg_w)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum::<f64>()
                / ncols as f64;
            let inv = inv_stds[r] as f64;
            for j in 0..ncols {
                gwr[r * ncols + j] +=
                    (inv * (seg_g[j] as f64 - mean_g - seg_w[j] as f64 * mean_gw)) as f32;
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![(&mut self.weight, &self.grad_weight)]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }

    fn flops_per_sample(&self) -> u64 {
        match self.last_hw {
            // Each standardized weight is reused across every output pixel.
            Some((h, w)) => {
                let pixels = (self.spec.out_size(h) * self.spec.out_size(w)) as u64;
                2 * self.weight.len() as u64 * pixels
            }
            // No forward seen yet: fall back to the parameter-based default.
            None => 2 * self.param_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn effective_kernel_is_standardized() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = WsConv2d::new(3, 4, 3, 1, 1, &mut rng);
        let (what, _) = conv.standardized();
        let cols = conv.spec.fan_in();
        for r in 0..4 {
            let seg = &what.as_slice()[r * cols..(r + 1) * cols];
            let mean: f32 = seg.iter().sum::<f32>() / cols as f32;
            let var: f32 = seg.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = WsConv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = pbp_tensor::normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let k = pbp_tensor::normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);

        let run = |layer: &mut WsConv2d, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            layer.forward(&mut s);
            let y = s.pop().unwrap();
            layer.clear_stash();
            y.as_slice()
                .iter()
                .zip(k.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let mut s = vec![x.clone()];
        layer.forward(&mut s);
        let _ = s.pop();
        let mut g = vec![k.clone()];
        layer.backward(&mut g);
        let gx = g.pop().unwrap();
        let gw = layer.grads()[0].clone();

        let eps = 1e-2f32;
        for idx in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (run(&mut layer, &xp) - run(&mut layer, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 3e-2,
                "input grad {idx}: {num} vs {}",
                gx.as_slice()[idx]
            );
        }
        for idx in [0usize, 7, 18, 29] {
            let orig = layer.weight.as_slice()[idx];
            layer.weight.as_mut_slice()[idx] = orig + eps;
            let lp = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig - eps;
            let lm = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gw.as_slice()[idx]).abs() < 5e-2,
                "weight grad {idx}: {num} vs {}",
                gw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn eval_batched_forward_matches_training_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = WsConv2d::new(2, 4, 3, 1, 1, &mut rng);
        for n in [1usize, 3, 5] {
            let x = pbp_tensor::normal(&[n, 2, 6, 6], 0.0, 1.0, &mut rng);
            let mut s = vec![x.clone()];
            layer.forward(&mut s);
            let y_train = s.pop().unwrap();
            layer.clear_stash();
            layer.set_training(false);
            let mut s = vec![x];
            layer.forward(&mut s);
            let y_eval = s.pop().unwrap();
            layer.set_training(true);
            for (a, b) in y_train.as_slice().iter().zip(y_eval.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {n}");
            }
        }
    }

    #[test]
    fn forward_is_invariant_to_weight_scale_and_shift() {
        // Standardization makes the conv invariant to per-channel affine
        // changes of the raw weight — the property that stabilizes updates.
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = WsConv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = pbp_tensor::normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let mut s = vec![x.clone()];
        layer.forward(&mut s);
        let y1 = s.pop().unwrap();
        layer.clear_stash();
        layer.weight.map_in_place(|v| 3.0 * v + 0.7);
        let mut s = vec![x];
        layer.forward(&mut s);
        let y2 = s.pop().unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
