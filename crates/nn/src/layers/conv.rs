//! Convolutional layer.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::ops::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_batched_reusing, conv2d_reusing,
    Conv2dSpec, ConvBatchScratch,
};
use pbp_tensor::{he_normal, Tensor};
use rand::Rng;
use std::collections::VecDeque;

/// Per-sample stash: im2col buffers plus the input spatial size.
type ConvStash = (Vec<Vec<f32>>, (usize, usize));

/// 2-D convolution layer (NCHW) with optional bias.
#[derive(Debug)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Tensor,
    bias: Option<Tensor>,
    grad_weight: Tensor,
    grad_bias: Option<Tensor>,
    /// Per-in-flight-sample stash: im2col buffers + input spatial size.
    stash: VecDeque<ConvStash>,
    /// `(g, cols)` pairs deferred by [`Layer::backward_input`], retired in
    /// FIFO order by [`Layer::backward_weight`] (2BP split backward).
    wgrad_pending: VecDeque<(Tensor, Vec<Vec<f32>>)>,
    /// Retired im2col buffers recycled by later forwards.
    spare: Vec<Vec<f32>>,
    /// Recycled wide-lowering buffers for the eval-mode batched path.
    batch_scratch: ConvBatchScratch,
    /// Input spatial size seen by the most recent forward pass; lets
    /// [`Layer::flops_per_sample`] report the spatially-resolved cost.
    last_hw: Option<(usize, usize)>,
    /// In eval mode no backward will consume the stash, so forward lowers
    /// the whole batch into one wide GEMM via
    /// [`conv2d_batched_reusing`] (bit-identical to the per-sample path)
    /// instead of stashing per-sample column buffers.
    training: bool,
}

impl Conv2d {
    /// Creates a He-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if the spec geometry is degenerate (zero kernel/stride).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = Conv2dSpec::new(in_channels, out_channels, kernel, stride, padding)
            .expect("valid conv2d geometry");
        Conv2d {
            weight: he_normal(&spec.weight_shape(), spec.fan_in(), rng),
            bias: bias.then(|| Tensor::zeros(&[out_channels])),
            grad_weight: Tensor::zeros(&spec.weight_shape()),
            grad_bias: bias.then(|| Tensor::zeros(&[out_channels])),
            stash: VecDeque::new(),
            wgrad_pending: VecDeque::new(),
            spare: Vec::new(),
            batch_scratch: ConvBatchScratch::default(),
            last_hw: None,
            training: true,
            spec,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Accumulates `grad_weight += dY·colsᵀ` and the bias gradient — the
    /// weight half shared by the fused backward and
    /// [`Layer::backward_weight`]. Reads no current weights, so running it
    /// at the update boundary instead of backward time is exact.
    fn accumulate_weight_grads(&mut self, g: &Tensor, cols: &[Vec<f32>]) {
        let gw = conv2d_backward_weight(g, cols, &self.spec).expect("conv2d grad shapes");
        pbp_tensor::ops::axpy(1.0, &gw, &mut self.grad_weight);
        if let Some(gb) = &mut self.grad_bias {
            let [n, oc, oh, ow] = [g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]];
            let gs = g.as_slice();
            let gbs = gb.as_mut_slice();
            for ni in 0..n {
                for c in 0..oc {
                    let base = (ni * oc + c) * oh * ow;
                    let mut acc = 0.0f32;
                    for p in 0..oh * ow {
                        acc += gs[base + p];
                    }
                    gbs[c] += acc;
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv{}x{}({}→{},s{})",
            self.spec.kernel,
            self.spec.kernel,
            self.spec.in_channels,
            self.spec.out_channels,
            self.spec.stride
        )
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("conv2d: empty stack");
        let (h, w) = (x.shape()[2], x.shape()[3]);
        self.last_hw = Some((h, w));
        let mut y = if self.training {
            let (y, cols) = conv2d_reusing(&x, &self.weight, &self.spec, &mut self.spare)
                .expect("conv2d shapes");
            self.stash.push_back((cols, (h, w)));
            y
        } else {
            conv2d_batched_reusing(&x, &self.weight, &self.spec, &mut self.batch_scratch)
                .expect("conv2d shapes")
        };
        if let Some(b) = &self.bias {
            let [n, oc, oh, ow] = [y.shape()[0], y.shape()[1], y.shape()[2], y.shape()[3]];
            let ys = y.as_mut_slice();
            let bs = b.as_slice();
            for ni in 0..n {
                for c in 0..oc {
                    let base = (ni * oc + c) * oh * ow;
                    for p in 0..oh * ow {
                        ys[base + p] += bs[c];
                    }
                }
            }
        }
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("conv2d: empty grad stack");
        let (cols, hw) = self.stash.pop_front().expect("conv2d: no stashed input");
        let gx = conv2d_backward_input(&g, &self.weight, hw, &self.spec).expect("conv2d shapes");
        self.accumulate_weight_grads(&g, &cols);
        self.spare.extend(cols);
        grad_stack.push(gx);
    }

    fn backward_input(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("conv2d: empty grad stack");
        let (cols, hw) = self.stash.pop_front().expect("conv2d: no stashed input");
        // The input gradient reads the *current* weights, so it stays on
        // the critical path; the weight half depends only on (g, cols) and
        // is deferred (cols return to `spare` once it retires).
        let gx = conv2d_backward_input(&g, &self.weight, hw, &self.spec).expect("conv2d shapes");
        grad_stack.push(gx);
        self.wgrad_pending.push_back((g, cols));
    }

    fn backward_weight(&mut self) {
        let (g, cols) = self
            .wgrad_pending
            .pop_front()
            .expect("conv2d: no deferred weight-gradient work");
        self.accumulate_weight_grads(&g, &cols);
        self.spare.extend(cols);
    }

    fn params(&self) -> Vec<&Tensor> {
        match &self.bias {
            Some(b) => vec![&self.weight, b],
            None => vec![&self.weight],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match &mut self.bias {
            Some(b) => vec![&mut self.weight, b],
            None => vec![&mut self.weight],
        }
    }

    fn grads(&self) -> Vec<&Tensor> {
        match &self.grad_bias {
            Some(gb) => vec![&self.grad_weight, gb],
            None => vec![&self.grad_weight],
        }
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        match (&mut self.bias, &self.grad_bias) {
            (Some(b), Some(gb)) => vec![(&mut self.weight, &self.grad_weight), (b, gb)],
            _ => vec![(&mut self.weight, &self.grad_weight)],
        }
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        if let Some(gb) = &mut self.grad_bias {
            gb.fill(0.0);
        }
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_stash(&mut self) {
        // Deferred weight-gradient work survives: under 2BP an update
        // window (and its pending `backward_weight` halves) can span an
        // evaluation pause, which flushes activation stashes.
        self.stash.clear();
    }

    fn flops_per_sample(&self) -> u64 {
        match self.last_hw {
            // Each weight is reused across every output pixel; the bias
            // adds one FLOP per output element.
            Some((h, w)) => {
                let pixels = (self.spec.out_size(h) * self.spec.out_size(w)) as u64;
                let bias = self.bias.as_ref().map_or(0, |b| b.len() as u64) * pixels;
                2 * self.weight.len() as u64 * pixels + bias
            }
            // No forward seen yet: fall back to the parameter-based default.
            None => 2 * self.param_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_layer_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = pbp_tensor::normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);

        let run = |layer: &mut Conv2d, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            layer.forward(&mut s);
            let y = s.pop().unwrap();
            layer.clear_stash();
            y.as_slice().iter().sum()
        };

        let mut s = vec![x.clone()];
        layer.forward(&mut s);
        let y = s.pop().unwrap();
        let mut g = vec![Tensor::ones(y.shape())];
        layer.backward(&mut g);
        let gx = g.pop().unwrap();
        let gw = layer.grads()[0].clone();
        let gb = layer.grads()[1].clone();

        let eps = 1e-2f32;
        for idx in [0usize, 9, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (run(&mut layer, &xp) - run(&mut layer, &xm)) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 2e-2, "input grad {idx}");
        }
        for idx in [0usize, 13, 40] {
            let orig = layer.weight.as_slice()[idx];
            layer.weight.as_mut_slice()[idx] = orig + eps;
            let lp = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig - eps;
            let lm = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 2e-2, "weight grad {idx}");
        }
        // Bias gradient: dL/db_c = number of output pixels per channel.
        let [_, _, oh, ow] = [1usize, 3, 4, 4];
        for c in 0..3 {
            assert!((gb.as_slice()[c] - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn split_backward_is_bit_identical_to_fused() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut fused = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let mut rng = StdRng::seed_from_u64(6);
        let mut split = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let mut data_rng = StdRng::seed_from_u64(7);
        let xs: Vec<Tensor> = (0..2)
            .map(|_| pbp_tensor::normal(&[1, 2, 5, 5], 0.0, 1.0, &mut data_rng))
            .collect();
        let gs: Vec<Tensor> = (0..2)
            .map(|_| pbp_tensor::normal(&[1, 3, 5, 5], 0.0, 1.0, &mut data_rng))
            .collect();
        let mut fused_gx = Vec::new();
        let mut split_gx = Vec::new();
        for x in &xs {
            let mut s = vec![x.clone()];
            fused.forward(&mut s);
            let mut s = vec![x.clone()];
            split.forward(&mut s);
        }
        // Two samples in flight: backward_input twice, then retire both
        // deferred weight-gradient units — the 2BP call pattern.
        for g in &gs {
            let mut gs1 = vec![g.clone()];
            fused.backward(&mut gs1);
            fused_gx.push(gs1.pop().unwrap());
            let mut gs2 = vec![g.clone()];
            split.backward_input(&mut gs2);
            split_gx.push(gs2.pop().unwrap());
        }
        split.backward_weight();
        split.backward_weight();
        for (a, b) in fused_gx.iter().zip(&split_gx) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "input grads differ");
            }
        }
        for (a, b) in fused.grads().iter().zip(split.grads()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "weight grads differ");
            }
        }
    }

    #[test]
    fn eval_batched_forward_matches_training_forward_bitwise() {
        // Eval mode lowers the whole batch into one wide GEMM; training
        // mode lowers per sample. Same bits either way — batched lowering
        // only widens the GEMM output, never re-associates a k chain.
        let mut rng = StdRng::seed_from_u64(8);
        let mut layer = Conv2d::new(3, 5, 3, 2, 1, true, &mut rng);
        for n in [1usize, 2, 6] {
            let x = pbp_tensor::normal(&[n, 3, 7, 7], 0.0, 1.0, &mut rng);
            let mut s = vec![x.clone()];
            layer.forward(&mut s);
            let y_train = s.pop().unwrap();
            layer.clear_stash();
            layer.set_training(false);
            let mut s = vec![x];
            layer.forward(&mut s);
            let y_eval = s.pop().unwrap();
            layer.set_training(true);
            assert_eq!(y_train.shape(), y_eval.shape());
            for (a, b) in y_train.as_slice().iter().zip(y_eval.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {n}");
            }
        }
    }

    #[test]
    fn stash_is_fifo() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        let x1 = Tensor::ones(&[1, 1, 3, 3]);
        let x2 = Tensor::zeros(&[1, 1, 3, 3]);
        let mut s = vec![x1];
        layer.forward(&mut s);
        let y1_shape = s.pop().unwrap().shape().to_vec();
        let mut s2 = vec![x2];
        layer.forward(&mut s2);
        // First backward consumes x1's stash: weight grad must be nonzero.
        let mut g = vec![Tensor::ones(&y1_shape)];
        layer.backward(&mut g);
        assert!(layer.grads()[0].norm() > 0.0);
        layer.zero_grads();
        // Second backward consumes x2 (zeros): weight grad stays zero.
        let mut g2 = vec![Tensor::ones(&y1_shape)];
        layer.backward(&mut g2);
        assert_eq!(layer.grads()[0].norm(), 0.0);
    }
}
