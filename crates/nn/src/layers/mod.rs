//! Concrete layers.
//!
//! Every layer implements [`crate::Layer`] with an explicit backward pass
//! and a FIFO activation stash so that several samples can be in flight
//! through the same layer, as happens in pipelined backpropagation.

mod activation;
mod conv;
mod frn;
mod linear;
mod norm;
mod online_norm;
mod pool;
mod structure;
mod wsconv;

pub use activation::{Dropout, Relu};
pub use conv::Conv2d;
pub use frn::{FilterResponseNorm, Tlu};
pub use linear::Linear;
pub use norm::{BatchNorm2d, GroupNorm};
pub use online_norm::OnlineNorm;
pub use pool::{AvgPool2d, GlobalAvgPool2d, MaxPool2d};
pub use structure::{AddLanes, Dup, Flatten, MapLane};
pub use wsconv::WsConv2d;
