//! Online Normalization (Chiley et al., 2019).
//!
//! The paper's own prior work, cited in its Discussion as a batch-size-one
//! alternative to group normalization that "may boost delay tolerance".
//! Unlike GN, Online Normalization normalizes each channel with *streaming*
//! statistics accumulated across samples (exponential moving average with
//! decay `α_f`), and keeps its backward pass well-behaved with a *control
//! process*: the outgoing gradient is projected so that, under exponential
//! averaging with decay `α_b`, it stays orthogonal to the normalized
//! output and zero-mean — the two conditions a true normalizer's gradient
//! satisfies exactly.
//!
//! This implements Algorithm 1 of the ON paper per channel, plus the usual
//! affine (γ, β) output transform.
//!
//! Note: because the statistics are streaming, ON is *stateful across
//! samples* — exactly like its reference implementation — so unlike
//! GroupNorm its outputs depend on sample order. Evaluation freezes the
//! statistics.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;
use std::collections::VecDeque;

/// Online Normalization over `[N, C, H, W]` with per-channel streaming
/// statistics and a gradient control process.
#[derive(Debug)]
pub struct OnlineNorm {
    channels: usize,
    /// Forward statistics decay (the ON paper's `α_f`).
    alpha_f: f32,
    /// Backward control-process decay (`α_b`).
    alpha_b: f32,
    eps: f32,
    training: bool,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    /// Streaming per-channel mean.
    mu: Vec<f32>,
    /// Streaming per-channel variance.
    var: Vec<f32>,
    /// Control process: running estimate of `E[g ⊙ y]` per channel.
    ctrl_gy: Vec<f32>,
    /// Control process: running estimate of `E[g]` per channel.
    ctrl_g: Vec<f32>,
    /// FIFO of (normalized output ŷ, per-channel inverse std) stashes.
    stash: VecDeque<(Tensor, Vec<f32>)>,
}

impl OnlineNorm {
    /// Creates an ON layer with the reference decays `α_f = 0.999`,
    /// `α_b = 0.99`.
    pub fn new(channels: usize) -> Self {
        OnlineNorm::with_decays(channels, 0.999, 0.99)
    }

    /// Creates an ON layer with explicit decays.
    ///
    /// # Panics
    ///
    /// Panics unless both decays are in `[0, 1)`.
    pub fn with_decays(channels: usize, alpha_f: f32, alpha_b: f32) -> Self {
        assert!((0.0..1.0).contains(&alpha_f), "alpha_f must be in [0,1)");
        assert!((0.0..1.0).contains(&alpha_b), "alpha_b must be in [0,1)");
        OnlineNorm {
            channels,
            alpha_f,
            alpha_b,
            eps: 1e-5,
            training: true,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            mu: vec![0.0; channels],
            var: vec![1.0; channels],
            ctrl_gy: vec![0.0; channels],
            ctrl_g: vec![0.0; channels],
            stash: VecDeque::new(),
        }
    }
}

impl Layer for OnlineNorm {
    fn name(&self) -> String {
        format!("online_norm(c={})", self.channels)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("online_norm: empty stack");
        assert_eq!(x.rank(), 4, "online_norm expects NCHW");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        assert_eq!(c, self.channels, "online_norm channel mismatch");
        let hw = h * w;
        let xs = x.as_slice();
        let mut yhat = Tensor::zeros(x.shape());
        let mut out = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        {
            let yh = yhat.as_mut_slice();
            let os = out.as_mut_slice();
            let gam = self.gamma.as_slice();
            let bet = self.beta.as_slice();
            for ch in 0..c {
                // Normalize with the *incoming* streaming statistics.
                let inv = 1.0 / (self.var[ch] + self.eps).sqrt();
                inv_stds[ch] = inv;
                for ni in 0..n {
                    let base = (ni * c + ch) * hw;
                    for p in 0..hw {
                        let v = (xs[base + p] - self.mu[ch]) * inv;
                        yh[base + p] = v;
                        os[base + p] = gam[ch] * v + bet[ch];
                    }
                }
                if self.training {
                    // Streaming update from this sample's (batch's) own
                    // per-channel moments (ON paper Eq. 5-6 style).
                    let m = (n * hw) as f64;
                    let mut mean = 0.0f64;
                    for ni in 0..n {
                        let base = (ni * c + ch) * hw;
                        for p in 0..hw {
                            mean += xs[base + p] as f64;
                        }
                    }
                    mean /= m;
                    let mut var = 0.0f64;
                    for ni in 0..n {
                        let base = (ni * c + ch) * hw;
                        for p in 0..hw {
                            let d = xs[base + p] as f64 - mean;
                            var += d * d;
                        }
                    }
                    var /= m;
                    let af = self.alpha_f as f64;
                    let old_mu = self.mu[ch] as f64;
                    self.mu[ch] = (af * old_mu + (1.0 - af) * mean) as f32;
                    self.var[ch] = (af * self.var[ch] as f64
                        + (1.0 - af) * var
                        + af * (1.0 - af) * (mean - old_mu) * (mean - old_mu))
                        as f32;
                }
            }
        }
        self.stash.push_back((yhat, inv_stds));
        stack.push(out);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("online_norm: empty grad stack");
        let (yhat, inv_stds) = self.stash.pop_front().expect("online_norm: no stash");
        let [n, c, h, w] = [g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]];
        let hw = h * w;
        let gs = g.as_slice();
        let yh = yhat.as_slice();
        let mut gx = Tensor::zeros(g.shape());
        {
            let gxs = gx.as_mut_slice();
            let gam = self.gamma.as_slice();
            let gg = self.grad_gamma.as_mut_slice();
            let gb = self.grad_beta.as_mut_slice();
            let m = (n * hw) as f64;
            for ch in 0..c {
                // Affine part.
                let mut sum_g = 0.0f64;
                let mut sum_gy = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ch) * hw;
                    for p in 0..hw {
                        sum_g += gs[base + p] as f64;
                        sum_gy += gs[base + p] as f64 * yh[base + p] as f64;
                    }
                }
                gg[ch] += sum_gy as f32;
                gb[ch] += sum_g as f32;
                // Control process (ON Algorithm 1): subtract the running
                // projections so the outgoing gradient is decorrelated from
                // ŷ and zero-mean under exponential averaging.
                let ab = self.alpha_b as f64;
                let mean_g = sum_g / m;
                let mean_gy = sum_gy / m;
                if self.training {
                    self.ctrl_gy[ch] = (ab * self.ctrl_gy[ch] as f64 + (1.0 - ab) * mean_gy) as f32;
                    self.ctrl_g[ch] = (ab * self.ctrl_g[ch] as f64 + (1.0 - ab) * mean_g) as f32;
                }
                let proj_y = self.ctrl_gy[ch];
                let proj_1 = self.ctrl_g[ch];
                let inv = inv_stds[ch];
                for ni in 0..n {
                    let base = (ni * c + ch) * hw;
                    for p in 0..hw {
                        let gp = gs[base + p] * gam[ch];
                        let controlled = gp - proj_y * gam[ch] * yh[base + p] - proj_1 * gam[ch];
                        gxs[base + p] = controlled * inv;
                    }
                }
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.gamma, &self.grad_gamma),
            (&mut self.beta, &self.grad_beta),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }

    // Online normalization is stateful *across samples* (that is its
    // point — Section 4 of the paper pairs it with batch-size-1 PB), so
    // every streaming statistic and control variable must travel.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        let mut w = pbp_snapshot::StateWriter::new();
        w.put_f32_slice(&self.mu);
        w.put_f32_slice(&self.var);
        w.put_f32_slice(&self.ctrl_gy);
        w.put_f32_slice(&self.ctrl_g);
        Some(w.into_bytes())
    }

    fn load_state_bytes(&mut self, bytes: &[u8]) -> Result<(), pbp_snapshot::SnapshotError> {
        let mut r = pbp_snapshot::StateReader::new(bytes);
        let mu = r.take_f32_vec()?;
        let var = r.take_f32_vec()?;
        let ctrl_gy = r.take_f32_vec()?;
        let ctrl_g = r.take_f32_vec()?;
        r.finish()?;
        for (name, v) in [
            ("mu", &mu),
            ("var", &var),
            ("ctrl_gy", &ctrl_gy),
            ("ctrl_g", &ctrl_g),
        ] {
            if v.len() != self.channels {
                return Err(pbp_snapshot::SnapshotError::Mismatch(format!(
                    "online-norm {name} state for {} channels, layer has {}",
                    v.len(),
                    self.channels
                )));
            }
        }
        self.mu = mu;
        self.var = var;
        self.ctrl_gy = ctrl_gy;
        self.ctrl_g = ctrl_g;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn streaming_statistics_converge_to_input_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut on = OnlineNorm::with_decays(2, 0.95, 0.99);
        for _ in 0..300 {
            let x = pbp_tensor::normal(&[1, 2, 4, 4], 3.0, 2.0, &mut rng);
            let mut s = vec![x];
            on.forward(&mut s);
            on.clear_stash();
        }
        for ch in 0..2 {
            assert!((on.mu[ch] - 3.0).abs() < 0.5, "mu {}", on.mu[ch]);
            assert!((on.var[ch] - 4.0).abs() < 1.5, "var {}", on.var[ch]);
        }
        // After convergence, outputs are near standard normal.
        let x = pbp_tensor::normal(&[1, 2, 16, 16], 3.0, 2.0, &mut rng);
        let mut s = vec![x];
        on.forward(&mut s);
        let y = s.pop().unwrap();
        assert!(y.mean().abs() < 0.3, "mean {}", y.mean());
        assert!((y.variance() - 1.0).abs() < 0.4, "var {}", y.variance());
    }

    #[test]
    fn eval_mode_freezes_statistics() {
        let mut on = OnlineNorm::new(1);
        on.set_training(false);
        let mu0 = on.mu[0];
        let x = Tensor::full(&[1, 1, 2, 2], 100.0);
        let mut s = vec![x];
        on.forward(&mut s);
        assert_eq!(on.mu[0], mu0, "eval must not move statistics");
    }

    #[test]
    fn control_process_removes_gradient_mean_over_time() {
        // Feed a constant gradient; the control process should learn to
        // subtract its mean, shrinking the outgoing gradient mean.
        let mut rng = StdRng::seed_from_u64(1);
        let mut on = OnlineNorm::with_decays(1, 0.99, 0.5);
        let mut first_mean = None;
        let mut last_mean = 0.0f64;
        for _ in 0..100 {
            let x = pbp_tensor::normal(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
            let mut s = vec![x];
            on.forward(&mut s);
            let mut g = vec![Tensor::ones(&[1, 1, 4, 4])];
            on.backward(&mut g);
            let gout = g.pop().unwrap();
            last_mean = gout.mean().abs();
            first_mean.get_or_insert(last_mean);
        }
        assert!(
            last_mean < first_mean.unwrap() * 0.2 + 1e-6,
            "gradient mean should shrink: {} → {last_mean}",
            first_mean.unwrap()
        );
    }

    #[test]
    fn trains_a_small_net_at_batch_size_one() {
        use crate::layers::{Conv2d, Flatten, GlobalAvgPool2d, Linear, Relu};
        use crate::loss::softmax_cross_entropy;
        use crate::{Network, Stage};
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(vec![
            Stage::new(
                "conv",
                vec![
                    Box::new(Conv2d::new(1, 6, 3, 1, 1, false, &mut rng)) as Box<dyn Layer>,
                    Box::new(OnlineNorm::new(6)),
                    Box::new(Relu::new()),
                ],
            ),
            Stage::single(Box::new(GlobalAvgPool2d::new())),
            Stage::new(
                "head",
                vec![
                    Box::new(Flatten::new()) as Box<dyn Layer>,
                    Box::new(Linear::new(6, 2, true, &mut rng)),
                ],
            ),
        ]);
        // Two distinguishable constant inputs.
        let a = Tensor::full(&[1, 1, 6, 6], 1.0);
        let b = Tensor::full(&[1, 1, 6, 6], -1.0);
        let mut last = 0.0;
        for i in 0..120 {
            let (x, label) = if i % 2 == 0 { (&a, 0usize) } else { (&b, 1) };
            net.zero_grads();
            let logits = net.forward(x);
            let (loss, grad) = softmax_cross_entropy(&logits, &[label]);
            net.backward(&grad);
            for s in 0..net.num_stages() {
                let stage = net.stage_mut(s);
                let grads: Vec<Tensor> = stage.grads().into_iter().cloned().collect();
                for (p, g) in stage.params_mut().into_iter().zip(&grads) {
                    pbp_tensor::ops::axpy(-0.05, g, p);
                }
            }
            last = loss as f64;
        }
        assert!(last < 0.3, "final loss {last}");
    }

    #[test]
    #[should_panic(expected = "alpha_f")]
    fn rejects_bad_decay() {
        OnlineNorm::with_decays(1, 1.0, 0.5);
    }
}
