//! Filter Response Normalization with a Thresholded Linear Unit
//! (Singh & Krishnan, 2019).
//!
//! Cited by the paper's Discussion as a batch-independence alternative to
//! group normalization that "may boost delay tolerance". FRN normalizes
//! each channel of each sample by its root mean square over the spatial
//! dimensions — no batch statistics, no mean subtraction — and replaces
//! ReLU with a learned-threshold TLU.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;
use std::collections::VecDeque;

/// Filter Response Normalization: `y = γ·x/√(ν² + ε) + β` with
/// `ν² = mean_{H,W}(x²)` per (sample, channel).
#[derive(Debug)]
pub struct FilterResponseNorm {
    channels: usize,
    eps: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    /// FIFO of (input, per-(n,c) inverse rms) for in-flight samples.
    stash: VecDeque<(Tensor, Vec<f32>)>,
}

impl FilterResponseNorm {
    /// Creates an FRN layer with `γ = 1`, `β = 0`.
    pub fn new(channels: usize) -> Self {
        FilterResponseNorm {
            channels,
            eps: 1e-6,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            stash: VecDeque::new(),
        }
    }
}

impl Layer for FilterResponseNorm {
    fn name(&self) -> String {
        format!("frn(c={})", self.channels)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("frn: empty stack");
        assert_eq!(x.rank(), 4, "frn expects NCHW");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        assert_eq!(c, self.channels, "frn channel mismatch");
        let hw = h * w;
        let xs = x.as_slice();
        let mut y = Tensor::zeros(x.shape());
        let mut inv_rms = Vec::with_capacity(n * c);
        {
            let ys = y.as_mut_slice();
            let gam = self.gamma.as_slice();
            let bet = self.beta.as_slice();
            for ni in 0..n {
                for ch in 0..c {
                    let base = (ni * c + ch) * hw;
                    let nu2 = xs[base..base + hw]
                        .iter()
                        .map(|&v| (v as f64) * (v as f64))
                        .sum::<f64>()
                        / hw as f64;
                    let inv = 1.0 / (nu2 + self.eps as f64).sqrt();
                    inv_rms.push(inv as f32);
                    for p in 0..hw {
                        ys[base + p] = gam[ch] * (xs[base + p] as f64 * inv) as f32 + bet[ch];
                    }
                }
            }
        }
        self.stash.push_back((x, inv_rms));
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("frn: empty grad stack");
        let (x, inv_rms) = self.stash.pop_front().expect("frn: no stash");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let hw = h * w;
        let xs = x.as_slice();
        let gs = g.as_slice();
        let mut gx = Tensor::zeros(x.shape());
        {
            let gxs = gx.as_mut_slice();
            let gam = self.gamma.as_slice();
            let gg = self.grad_gamma.as_mut_slice();
            let gb = self.grad_beta.as_mut_slice();
            for ni in 0..n {
                for ch in 0..c {
                    let base = (ni * c + ch) * hw;
                    let inv = inv_rms[ni * c + ch] as f64;
                    // x̂ = x·inv;  y = γ·x̂ + β
                    // dγ += Σ g·x̂,  dβ += Σ g
                    // dx = γ·inv·(g − x̂·mean(g ⊙ x̂))
                    let mut sum_g = 0.0f64;
                    let mut sum_g_xhat = 0.0f64;
                    for p in 0..hw {
                        let xhat = xs[base + p] as f64 * inv;
                        sum_g += gs[base + p] as f64;
                        sum_g_xhat += gs[base + p] as f64 * xhat;
                    }
                    gg[ch] += sum_g_xhat as f32;
                    gb[ch] += sum_g as f32;
                    let mean_g_xhat = sum_g_xhat / hw as f64;
                    for p in 0..hw {
                        let xhat = xs[base + p] as f64 * inv;
                        gxs[base + p] =
                            (gam[ch] as f64 * inv * (gs[base + p] as f64 - xhat * mean_g_xhat))
                                as f32;
                    }
                }
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.gamma, &self.grad_gamma),
            (&mut self.beta, &self.grad_beta),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

/// Thresholded Linear Unit: `y = max(x, τ)` with a learned per-channel
/// threshold τ — FRN's companion activation.
#[derive(Debug)]
pub struct Tlu {
    channels: usize,
    tau: Tensor,
    grad_tau: Tensor,
    stash: VecDeque<Tensor>,
}

impl Tlu {
    /// Creates a TLU with `τ = 0` (initially equivalent to ReLU).
    pub fn new(channels: usize) -> Self {
        Tlu {
            channels,
            tau: Tensor::zeros(&[channels]),
            grad_tau: Tensor::zeros(&[channels]),
            stash: VecDeque::new(),
        }
    }
}

impl Layer for Tlu {
    fn name(&self) -> String {
        format!("tlu(c={})", self.channels)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("tlu: empty stack");
        assert_eq!(x.rank(), 4, "tlu expects NCHW");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let hw = h * w;
        let xs = x.as_slice();
        let taus = self.tau.as_slice();
        let mut y = Tensor::zeros(x.shape());
        // Mask: 1 where x > τ (gradient flows to x), else 0 (flows to τ).
        let mut mask = Tensor::zeros(x.shape());
        {
            let ys = y.as_mut_slice();
            let ms = mask.as_mut_slice();
            for ni in 0..n {
                for ch in 0..c {
                    let base = (ni * c + ch) * hw;
                    let tau = taus[ch];
                    for p in 0..hw {
                        if xs[base + p] > tau {
                            ys[base + p] = xs[base + p];
                            ms[base + p] = 1.0;
                        } else {
                            ys[base + p] = tau;
                        }
                    }
                }
            }
        }
        self.stash.push_back(mask);
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("tlu: empty grad stack");
        let mask = self.stash.pop_front().expect("tlu: no stash");
        let [n, c, h, w] = [g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]];
        let hw = h * w;
        let gs = g.as_slice();
        let ms = mask.as_slice();
        let mut gx = Tensor::zeros(g.shape());
        {
            let gxs = gx.as_mut_slice();
            let gt = self.grad_tau.as_mut_slice();
            for ni in 0..n {
                for ch in 0..c {
                    let base = (ni * c + ch) * hw;
                    for p in 0..hw {
                        if ms[base + p] > 0.5 {
                            gxs[base + p] = gs[base + p];
                        } else {
                            gt[ch] += gs[base + p];
                        }
                    }
                }
            }
        }
        grad_stack.push(gx);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.tau]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.tau]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_tau]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![(&mut self.tau, &self.grad_tau)]
    }

    fn zero_grads(&mut self) {
        self.grad_tau.fill(0.0);
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frn_normalizes_rms_per_channel() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = pbp_tensor::normal(&[2, 3, 4, 4], 1.0, 2.0, &mut rng);
        let mut frn = FilterResponseNorm::new(3);
        let mut s = vec![x];
        frn.forward(&mut s);
        let y = s.pop().unwrap();
        for ni in 0..2 {
            for ch in 0..3 {
                let base = (ni * 3 + ch) * 16;
                let rms: f32 = (y.as_slice()[base..base + 16]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f32>()
                    / 16.0)
                    .sqrt();
                assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
            }
        }
    }

    #[test]
    fn frn_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = pbp_tensor::normal(&[1, 2, 3, 3], 0.0, 1.0, &mut rng);
        let k = pbp_tensor::normal(&[1, 2, 3, 3], 0.0, 1.0, &mut rng);
        let mut frn = FilterResponseNorm::new(2);
        let run = |frn: &mut FilterResponseNorm, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            frn.forward(&mut s);
            let y = s.pop().unwrap();
            frn.clear_stash();
            y.as_slice()
                .iter()
                .zip(k.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let mut s = vec![x.clone()];
        frn.forward(&mut s);
        let _ = s.pop();
        let mut g = vec![k.clone()];
        frn.backward(&mut g);
        let gx = g.pop().unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 9, 17] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (run(&mut frn, &xp) - run(&mut frn, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 3e-2,
                "grad {idx}: {num} vs {}",
                gx.as_slice()[idx]
            );
        }
        // gamma/beta grads.
        let gg = frn.grads()[0].clone();
        let gb = frn.grads()[1].clone();
        for ch in 0..2 {
            let orig = frn.gamma.as_slice()[ch];
            frn.gamma.as_mut_slice()[ch] = orig + eps;
            let lp = run(&mut frn, &x);
            frn.gamma.as_mut_slice()[ch] = orig - eps;
            let lm = run(&mut frn, &x);
            frn.gamma.as_mut_slice()[ch] = orig;
            assert!(((lp - lm) / (2.0 * eps) - gg.as_slice()[ch]).abs() < 3e-2);
            let origb = frn.beta.as_slice()[ch];
            frn.beta.as_mut_slice()[ch] = origb + eps;
            let lp = run(&mut frn, &x);
            frn.beta.as_mut_slice()[ch] = origb - eps;
            let lm = run(&mut frn, &x);
            frn.beta.as_mut_slice()[ch] = origb;
            assert!(((lp - lm) / (2.0 * eps) - gb.as_slice()[ch]).abs() < 3e-2);
        }
    }

    #[test]
    fn tlu_with_zero_tau_acts_like_relu() {
        let mut tlu = Tlu::new(1);
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut s = vec![x];
        tlu.forward(&mut s);
        assert_eq!(s[0].as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn tlu_threshold_gradient_accumulates_where_clamped() {
        let mut tlu = Tlu::new(1);
        tlu.tau.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![0.0, 2.0, 0.5, 3.0], &[1, 1, 2, 2]).unwrap();
        let mut s = vec![x];
        tlu.forward(&mut s);
        assert_eq!(s[0].as_slice(), &[1.0, 2.0, 1.0, 3.0]);
        let mut g = vec![Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]).unwrap()];
        tlu.backward(&mut g);
        // Two clamped positions: dτ = 2; pass-through positions get dx = 1.
        assert_eq!(tlu.grads()[0].as_slice(), &[2.0]);
        assert_eq!(g[0].as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn tlu_finite_difference_on_tau() {
        let mut tlu = Tlu::new(1);
        tlu.tau.as_mut_slice()[0] = 0.5;
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.1, 3.0], &[1, 1, 2, 2]).unwrap();
        let run = |tlu: &mut Tlu, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            tlu.forward(&mut s);
            tlu.clear_stash();
            s.pop().unwrap().as_slice().iter().sum()
        };
        let mut s = vec![x.clone()];
        tlu.forward(&mut s);
        let mut g = vec![Tensor::ones(&[1, 1, 2, 2])];
        tlu.backward(&mut g);
        let gt = tlu.grads()[0].as_slice()[0];
        let eps = 1e-3f32;
        tlu.tau.as_mut_slice()[0] = 0.5 + eps;
        let lp = run(&mut tlu, &x);
        tlu.tau.as_mut_slice()[0] = 0.5 - eps;
        let lm = run(&mut tlu, &x);
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - gt).abs() < 1e-2, "{num} vs {gt}");
    }
}
