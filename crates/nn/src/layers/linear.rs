//! Fully connected layer.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::{he_normal, Tensor};
use rand::Rng;
use std::collections::VecDeque;

/// Fully connected layer: `y = x·Wᵀ + b`.
///
/// Weight shape is `[out_features, in_features]`; inputs are
/// `[batch, in_features]`.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    grad_weight: Tensor,
    grad_bias: Option<Tensor>,
    stash: VecDeque<Tensor>,
    /// `(g, x)` pairs deferred by [`Layer::backward_input`], retired in
    /// FIFO order by [`Layer::backward_weight`] (2BP split backward).
    wgrad_pending: VecDeque<(Tensor, Tensor)>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a He-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        Linear {
            weight: he_normal(&[out_features, in_features], in_features, rng),
            bias: bias.then(|| Tensor::zeros(&[out_features])),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: bias.then(|| Tensor::zeros(&[out_features])),
            stash: VecDeque::new(),
            wgrad_pending: VecDeque::new(),
            in_features,
            out_features,
        }
    }

    /// Accumulates `grad_weight += gᵀ·x` and the bias gradient — the
    /// weight half shared by the fused backward and [`Layer::backward_weight`].
    /// Reads no current weights, so running it at the update boundary
    /// instead of backward time is exact.
    fn accumulate_weight_grads(&mut self, g: &Tensor, x: &Tensor) {
        // grad_weight += gᵀ · x  ([out,N]ᵀ·[N,in] → [out,in]), accumulated
        // in place by the tiled transpose-A GEMM — no temporary.
        pbp_tensor::ops::matmul_tn_acc(g, x, &mut self.grad_weight).expect("linear grad shapes");
        if let Some(gb) = &mut self.grad_bias {
            let (n, o) = (g.shape()[0], self.out_features);
            let gs = g.as_slice();
            let gbs = gb.as_mut_slice();
            for ni in 0..n {
                for oi in 0..o {
                    gbs[oi] += gs[ni * o + oi];
                }
            }
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("linear({}→{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("linear: empty stack");
        let x2 = if x.rank() == 2 {
            x.clone()
        } else {
            // Accept [N, C, H, W] or [features]; flatten to [N, features].
            let n = if x.rank() >= 2 { x.shape()[0] } else { 1 };
            x.reshape(&[n, x.len() / n]).expect("flattenable input")
        };
        let mut y = x2.matmul_transpose_b(&self.weight).expect("linear shapes");
        if let Some(b) = &self.bias {
            let (n, o) = (y.shape()[0], self.out_features);
            let ys = y.as_mut_slice();
            let bs = b.as_slice();
            for ni in 0..n {
                for oi in 0..o {
                    ys[ni * o + oi] += bs[oi];
                }
            }
        }
        self.stash.push_back(x2);
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("linear: empty grad stack");
        let x = self.stash.pop_front().expect("linear: no stashed input");
        self.accumulate_weight_grads(&g, &x);
        let gx = g.matmul(&self.weight).expect("linear grad shapes");
        grad_stack.push(gx);
    }

    fn backward_input(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("linear: empty grad stack");
        let x = self.stash.pop_front().expect("linear: no stashed input");
        // The input gradient reads the *current* weights, so it stays on
        // the critical path; the weight half depends only on (g, x) and is
        // deferred.
        let gx = g.matmul(&self.weight).expect("linear grad shapes");
        grad_stack.push(gx);
        self.wgrad_pending.push_back((g, x));
    }

    fn backward_weight(&mut self) {
        let (g, x) = self
            .wgrad_pending
            .pop_front()
            .expect("linear: no deferred weight-gradient work");
        self.accumulate_weight_grads(&g, &x);
    }

    fn params(&self) -> Vec<&Tensor> {
        match &self.bias {
            Some(b) => vec![&self.weight, b],
            None => vec![&self.weight],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match &mut self.bias {
            Some(b) => vec![&mut self.weight, b],
            None => vec![&mut self.weight],
        }
    }

    fn grads(&self) -> Vec<&Tensor> {
        match &self.grad_bias {
            Some(gb) => vec![&self.grad_weight, gb],
            None => vec![&self.grad_weight],
        }
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        match (&mut self.bias, &self.grad_bias) {
            (Some(b), Some(gb)) => vec![(&mut self.weight, &self.grad_weight), (b, gb)],
            _ => vec![(&mut self.weight, &self.grad_weight)],
        }
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        if let Some(gb) = &mut self.grad_bias {
            gb.fill(0.0);
        }
    }

    fn flops_per_sample(&self) -> u64 {
        // x·Wᵀ is in·out multiply-adds (2 FLOPs each); the bias is one add
        // per output feature, not two per parameter as the default counts.
        let matmul = 2 * (self.in_features * self.out_features) as u64;
        matmul
            + if self.bias.is_some() {
                self.out_features as u64
            } else {
                0
            }
    }

    fn clear_stash(&mut self) {
        // Deferred weight-gradient work survives: under 2BP an update
        // window (and its pending `backward_weight` halves) can span an
        // evaluation pause, which flushes activation stashes.
        self.stash.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check(bias: bool) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(4, 3, bias, &mut rng);
        let x = pbp_tensor::normal(&[2, 4], 0.0, 1.0, &mut rng);
        // Loss = sum(y); grad wrt y is ones.
        let mut stack = vec![x.clone()];
        layer.forward(&mut stack);
        let y = stack.pop().unwrap();
        let mut gstack = vec![Tensor::ones(y.shape())];
        layer.backward(&mut gstack);
        let gx = gstack.pop().unwrap();

        let eps = 1e-2f32;
        let run = |layer: &mut Linear, x: &Tensor| -> f32 {
            let mut s = vec![x.clone()];
            layer.forward(&mut s);
            let y = s.pop().unwrap();
            layer.clear_stash();
            y.as_slice().iter().sum()
        };
        // Input gradient.
        for idx in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (run(&mut layer, &xp) - run(&mut layer, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 1e-2,
                "input grad {idx}: {num} vs {}",
                gx.as_slice()[idx]
            );
        }
        // Weight gradient.
        let gw = layer.grads()[0].clone();
        for idx in [0usize, 7, 11] {
            let orig = layer.weight.as_slice()[idx];
            layer.weight.as_mut_slice()[idx] = orig + eps;
            let lp = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig - eps;
            let lm = run(&mut layer, &x);
            layer.weight.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gw.as_slice()[idx]).abs() < 1e-2,
                "weight grad {idx}: {num} vs {}",
                gw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences_with_bias() {
        finite_diff_check(true);
    }

    #[test]
    fn gradients_match_finite_differences_without_bias() {
        finite_diff_check(false);
    }

    #[test]
    fn fifo_stash_supports_two_in_flight_samples() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        let x1 = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        let x2 = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let mut s1 = vec![x1.clone()];
        layer.forward(&mut s1);
        let mut s2 = vec![x2.clone()];
        layer.forward(&mut s2);
        // Backward in FIFO order: first backward must use x1's stash.
        let mut g = vec![Tensor::ones(&[1, 2])];
        layer.backward(&mut g);
        let gw_after_first = layer.grads()[0].clone();
        // dW from sample 1 alone: gᵀ·x1 puts mass only in column 0.
        assert!(gw_after_first.as_slice()[0] != 0.0);
        assert_eq!(gw_after_first.as_slice()[1], 0.0);
        let mut g2 = vec![Tensor::ones(&[1, 2])];
        layer.backward(&mut g2);
    }

    #[test]
    fn split_backward_is_bit_identical_to_fused() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut fused = Linear::new(5, 3, true, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let mut split = Linear::new(5, 3, true, &mut rng);
        // Two samples in flight: backward_input twice, then retire both
        // deferred weight-gradient units — the 2BP call pattern.
        let xs: Vec<Tensor> = (0..2)
            .map(|i| pbp_tensor::normal(&[1, 5], 0.0, 1.0, &mut StdRng::seed_from_u64(10 + i)))
            .collect();
        let gs: Vec<Tensor> = (0..2)
            .map(|i| pbp_tensor::normal(&[1, 3], 0.0, 1.0, &mut StdRng::seed_from_u64(20 + i)))
            .collect();
        let mut fused_gx = Vec::new();
        let mut split_gx = Vec::new();
        for x in &xs {
            let mut s = vec![x.clone()];
            fused.forward(&mut s);
            let mut s = vec![x.clone()];
            split.forward(&mut s);
        }
        for g in &gs {
            let mut gs1 = vec![g.clone()];
            fused.backward(&mut gs1);
            fused_gx.push(gs1.pop().unwrap());
            let mut gs2 = vec![g.clone()];
            split.backward_input(&mut gs2);
            split_gx.push(gs2.pop().unwrap());
        }
        split.backward_weight();
        split.backward_weight();
        for (a, b) in fused_gx.iter().zip(&split_gx) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "input grads differ");
            }
        }
        for (a, b) in fused.grads().iter().zip(split.grads()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "weight grads differ");
            }
        }
    }

    #[test]
    fn zero_grads_resets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(2, 2, true, &mut rng);
        let mut s = vec![Tensor::ones(&[1, 2])];
        layer.forward(&mut s);
        let mut g = vec![Tensor::ones(&[1, 2])];
        layer.backward(&mut g);
        assert!(layer.grads()[0].norm() > 0.0);
        layer.zero_grads();
        assert_eq!(layer.grads()[0].norm(), 0.0);
        assert_eq!(layer.grads()[1].norm(), 0.0);
    }
}
