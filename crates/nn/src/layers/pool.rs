//! Pooling layers.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::ops::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolSpec};
use pbp_tensor::Tensor;
use std::collections::VecDeque;

/// Max pooling layer.
#[derive(Debug)]
pub struct MaxPool2d {
    spec: PoolSpec,
    stash: VecDeque<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    ///
    /// # Panics
    ///
    /// Panics on zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: PoolSpec::new(kernel, stride).expect("valid pool geometry"),
            stash: VecDeque::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool({}x{})", self.spec.kernel, self.spec.kernel)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("maxpool: empty stack");
        let (y, argmax) = max_pool2d(&x, &self.spec).expect("maxpool shapes");
        self.stash.push_back((argmax, x.shape().to_vec()));
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("maxpool: empty grad stack");
        let (argmax, shape) = self.stash.pop_front().expect("maxpool: no stash");
        grad_stack.push(max_pool2d_backward(&g, &argmax, &shape).expect("maxpool grad shapes"));
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

/// Average pooling layer.
#[derive(Debug)]
pub struct AvgPool2d {
    spec: PoolSpec,
    stash: VecDeque<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square window.
    ///
    /// # Panics
    ///
    /// Panics on zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: PoolSpec::new(kernel, stride).expect("valid pool geometry"),
            stash: VecDeque::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("avgpool({}x{})", self.spec.kernel, self.spec.kernel)
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("avgpool: empty stack");
        let y = avg_pool2d(&x, &self.spec).expect("avgpool shapes");
        self.stash.push_back(x.shape().to_vec());
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("avgpool: empty grad stack");
        let shape = self.stash.pop_front().expect("avgpool: no stash");
        grad_stack.push(avg_pool2d_backward(&g, &self.spec, &shape).expect("avgpool grad shapes"));
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    stash: VecDeque<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool2d::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn name(&self) -> String {
        "global_avgpool".to_string()
    }

    fn forward(&mut self, stack: &mut LaneStack) {
        let x = stack.pop().expect("gap: empty stack");
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let mut y = Tensor::zeros(&[n, c]);
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let inv = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ch in 0..c {
                let base = (ni * c + ch) * h * w;
                ys[ni * c + ch] = xs[base..base + h * w].iter().sum::<f32>() * inv;
            }
        }
        self.stash.push_back(x.shape().to_vec());
        stack.push(y);
    }

    fn backward(&mut self, grad_stack: &mut LaneStack) {
        let g = grad_stack.pop().expect("gap: empty grad stack");
        let shape = self.stash.pop_front().expect("gap: no stash");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let mut gx = Tensor::zeros(&shape);
        let gs = g.as_slice();
        let gxs = gx.as_mut_slice();
        let inv = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ch in 0..c {
                let val = gs[ni * c + ch] * inv;
                let base = (ni * c + ch) * h * w;
                for p in 0..h * w {
                    gxs[base + p] = val;
                }
            }
        }
        grad_stack.push(gx);
    }

    fn clear_stash(&mut self) {
        self.stash.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_round_trip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut s = vec![x];
        p.forward(&mut s);
        assert_eq!(s[0].as_slice(), &[4.0]);
        let mut g = vec![Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap()];
        p.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn global_avgpool_reduces_spatial_dims() {
        let mut p = GlobalAvgPool2d::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let mut s = vec![x];
        p.forward(&mut s);
        assert_eq!(s[0].shape(), &[1, 2]);
        assert_eq!(s[0].as_slice(), &[2.5, 25.0]);
        let mut g = vec![Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap()];
        p.backward(&mut g);
        assert_eq!(g[0].as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_layer_backward_shape() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let mut s = vec![x];
        p.forward(&mut s);
        assert_eq!(s[0].shape(), &[1, 1, 2, 2]);
        let mut g = vec![Tensor::ones(&[1, 1, 2, 2])];
        p.backward(&mut g);
        assert_eq!(g[0].shape(), &[1, 1, 4, 4]);
    }
}
