//! Stage-partitioned network container.

use crate::layer::{LaneStack, Layer};
use pbp_tensor::Tensor;

/// One pipeline stage: a named, ordered group of fused layers.
///
/// The paper fuses each convolution with its normalization and
/// non-linearity into one stage for ResNets, keeps every module its own
/// stage for VGG, and gives residual sum nodes their own stages. A `Stage`
/// is the unit the pipeline engines schedule, delay and version weights
/// for.
pub struct Stage {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stage({}, {} layers)", self.name, self.layers.len())
    }
}

impl Stage {
    /// Creates a stage from fused layers.
    pub fn new(name: impl Into<String>, layers: Vec<Box<dyn Layer>>) -> Self {
        Stage {
            name: name.into(),
            layers,
        }
    }

    /// Creates a stage holding a single layer, named after it.
    pub fn single(layer: Box<dyn Layer>) -> Self {
        let name = layer.name();
        Stage {
            name,
            layers: vec![layer],
        }
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the stage's forward transformation on the lane stack.
    pub fn forward(&mut self, stack: &mut LaneStack) {
        for layer in &mut self.layers {
            layer.forward(stack);
        }
    }

    /// Runs the stage's backward transformation on the gradient stack.
    pub fn backward(&mut self, grad_stack: &mut LaneStack) {
        for layer in self.layers.iter_mut().rev() {
            layer.backward(grad_stack);
        }
    }

    /// Input-gradient half of the backward pass (2BP split backward):
    /// propagates gradients through every layer in reverse order while each
    /// layer defers its parameter-gradient work. Pair with exactly one
    /// [`Stage::backward_weight`] per call, in FIFO order.
    pub fn backward_input(&mut self, grad_stack: &mut LaneStack) {
        for layer in self.layers.iter_mut().rev() {
            layer.backward_input(grad_stack);
        }
    }

    /// Retires one deferred weight-gradient unit per layer (the oldest).
    /// Layer order is irrelevant for the result — parameter-gradient
    /// buffers are disjoint per layer — but reverse order mirrors
    /// [`Stage::backward_input`].
    pub fn backward_weight(&mut self) {
        for layer in self.layers.iter_mut().rev() {
            layer.backward_weight();
        }
    }

    /// Borrows all trainable parameters of the stage, in a stable order.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutably borrows all trainable parameters of the stage.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Borrows the accumulated gradients, aligned with [`Stage::params`].
    pub fn grads(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    /// Simultaneously borrows the parameters mutably and their gradients,
    /// both in [`Stage::params`] order. This is what optimizers consume:
    /// it allows stepping a stage in place without cloning the gradients.
    pub fn params_and_grads(&mut self) -> (Vec<&mut Tensor>, Vec<&Tensor>) {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .unzip()
    }

    /// Zeroes the accumulated gradients of every layer in the stage.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Switches training/eval behaviour for every layer in the stage.
    pub fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// Drops all stashed activations.
    pub fn clear_stash(&mut self) {
        for layer in &mut self.layers {
            layer.clear_stash();
        }
    }

    /// Number of scalar parameters in the stage.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Estimated forward-pass FLOPs for one sample (sum of the stage's
    /// layers — see [`Layer::flops_per_sample`]). The threaded engine uses
    /// the *relative* magnitudes to decide how many cores its stage
    /// workers deserve versus the kernel pool.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_per_sample()).sum()
    }

    /// Borrows the stage's layers in order (for per-layer state capture).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrows the stage's layers in order.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Copies the stage's parameters into owned snapshots.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params().into_iter().cloned().collect()
    }

    /// Restores parameters from a snapshot taken by [`Stage::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot layout disagrees with the stage.
    pub fn load(&mut self, snapshot: &[Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snapshot.len(), "snapshot layout mismatch");
        for (p, s) in params.iter_mut().zip(snapshot) {
            assert_eq!(p.shape(), s.shape(), "snapshot shape mismatch");
            p.as_mut_slice().copy_from_slice(s.as_slice());
        }
    }
}

/// A network as an ordered list of pipeline [`Stage`]s.
///
/// `Network` supports two modes of use:
///
/// * **Sequential** — [`Network::forward`]/[`Network::backward`] run all
///   stages back-to-back, giving an exact mini-batch SGD reference.
/// * **Staged** — the pipeline engines drive individual stages via
///   [`Network::stage_mut`], interleaving samples and weight versions.
pub struct Network {
    stages: Vec<Stage>,
    /// Mirrors the last [`Network::set_training`] call (networks start in
    /// training mode). Layers keep their own behaviour switches; this flag
    /// exists so callers like `evaluate` can save and restore the mode.
    training: bool,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network({} stages, {} params)",
            self.stages.len(),
            self.param_count()
        )
    }
}

impl Network {
    /// Creates a network from stages, in training mode.
    pub fn new(stages: Vec<Stage>) -> Self {
        Network {
            stages,
            training: true,
        }
    }

    /// Consumes the network, yielding its stages — used by the threaded
    /// pipeline runtime, which moves each stage into its own worker thread.
    pub fn into_stages(self) -> Vec<Stage> {
        self.stages
    }

    /// Number of layer stages (excluding the loss stage).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of pipeline stages as counted in the paper's tables, which
    /// include the final softmax/loss computation as its own stage.
    pub fn pipeline_stage_count(&self) -> usize {
        self.stages.len() + 1
    }

    /// Borrows a stage.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn stage(&self, index: usize) -> &Stage {
        &self.stages[index]
    }

    /// Mutably borrows a stage.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn stage_mut(&mut self, index: usize) -> &mut Stage {
        &mut self.stages[index]
    }

    /// Iterates over stages.
    pub fn stages(&self) -> impl Iterator<Item = &Stage> {
        self.stages.iter()
    }

    /// Full forward pass: single input tensor to logits.
    ///
    /// # Panics
    ///
    /// Panics if the network does not reduce the lane stack back to a
    /// single tensor (a malformed residual topology).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut stack: LaneStack = vec![input.clone()];
        for stage in &mut self.stages {
            stage.forward(&mut stack);
        }
        assert_eq!(stack.len(), 1, "network must end with a single lane");
        stack.pop().expect("non-empty stack")
    }

    /// Full backward pass from the loss gradient; parameter gradients
    /// accumulate inside the layers.
    ///
    /// # Panics
    ///
    /// Panics if backward does not reduce back to a single input gradient.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut stack: LaneStack = vec![grad_logits.clone()];
        for stage in self.stages.iter_mut().rev() {
            stage.backward(&mut stack);
        }
        assert_eq!(stack.len(), 1, "backward must end with a single lane");
        stack.pop().expect("non-empty stack")
    }

    /// Input-gradient half of the backward pass (2BP split): propagates
    /// the loss gradient through every stage via
    /// [`Stage::backward_input`], leaving each layer's weight-gradient
    /// work pending until [`Network::backward_weight`].
    ///
    /// # Panics
    ///
    /// Panics if backward does not reduce back to a single input gradient.
    pub fn backward_input(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut stack: LaneStack = vec![grad_logits.clone()];
        for stage in self.stages.iter_mut().rev() {
            stage.backward_input(&mut stack);
        }
        assert_eq!(stack.len(), 1, "backward must end with a single lane");
        stack.pop().expect("non-empty stack")
    }

    /// Weight-gradient half of the backward pass (2BP split): retires the
    /// oldest pending weight-gradient computation in every stage,
    /// accumulating parameter gradients inside the layers. Must be called
    /// once per preceding [`Network::backward_input`], in FIFO order.
    pub fn backward_weight(&mut self) {
        for stage in self.stages.iter_mut().rev() {
            stage.backward_weight();
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for stage in &mut self.stages {
            stage.zero_grads();
        }
    }

    /// Switches training/eval behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
        for stage in &mut self.stages {
            stage.set_training(training);
        }
    }

    /// Whether the network is in training mode (the default) — i.e. the
    /// value of the last [`Network::set_training`] call.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Drops all stashed activations in every stage.
    pub fn clear_stash(&mut self) {
        for stage in &mut self.stages {
            stage.clear_stash();
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.stages.iter().map(|s| s.param_count()).sum()
    }

    /// Names of all stages, in order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.name().to_string()).collect()
    }

    /// Copies all parameters into per-stage snapshots.
    pub fn snapshot(&self) -> Vec<Vec<Tensor>> {
        self.stages.iter().map(Stage::snapshot).collect()
    }

    /// Restores all parameters from snapshots taken by
    /// [`Network::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch.
    pub fn load(&mut self, snapshot: &[Vec<Tensor>]) {
        assert_eq!(snapshot.len(), self.stages.len(), "stage count mismatch");
        for (stage, snap) in self.stages.iter_mut().zip(snapshot) {
            stage.load(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{AddLanes, Dup, Linear, Relu};
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Stage::new(
                "fc1",
                vec![
                    Box::new(Linear::new(4, 8, true, &mut rng)),
                    Box::new(Relu::new()),
                ],
            ),
            Stage::single(Box::new(Linear::new(8, 3, true, &mut rng))),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = tiny_net(0);
        let x = Tensor::ones(&[2, 4]);
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        let gx = net.backward(&grad);
        assert_eq!(gx.shape(), &[2, 4]);
    }

    #[test]
    fn snapshot_load_round_trip() {
        let mut net = tiny_net(1);
        let snap = net.snapshot();
        let x = Tensor::ones(&[1, 4]);
        let before = net.forward(&x);
        // Train a step-ish: perturb weights.
        for s in 0..net.num_stages() {
            for p in net.stage_mut(s).params_mut() {
                p.map_in_place(|v| v * 1.5 + 0.1);
            }
        }
        net.clear_stash();
        let perturbed = net.forward(&x);
        assert_ne!(before.as_slice(), perturbed.as_slice());
        net.load(&snap);
        net.clear_stash();
        let after = net.forward(&x);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn residual_topology_reduces_to_single_lane() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(vec![
            Stage::single(Box::new(Dup::new())),
            Stage::single(Box::new(Linear::new(4, 4, false, &mut rng))),
            Stage::single(Box::new(AddLanes::new())),
        ]);
        let x = Tensor::ones(&[1, 4]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[1, 4]);
        let gx = net.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(gx.shape(), &[1, 4]);
    }

    #[test]
    fn pipeline_stage_count_includes_loss_stage() {
        let net = tiny_net(3);
        assert_eq!(net.pipeline_stage_count(), net.num_stages() + 1);
    }

    #[test]
    fn gradient_descent_reduces_loss_on_tiny_problem() {
        let mut net = tiny_net(4);
        let x = Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0], &[1, 4]).unwrap();
        let labels = [2usize];
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..50 {
            net.zero_grads();
            let logits = net.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            for s in 0..net.num_stages() {
                let stage = net.stage_mut(s);
                let grads: Vec<Tensor> = stage.grads().into_iter().cloned().collect();
                for (p, g) in stage.params_mut().into_iter().zip(&grads) {
                    pbp_tensor::ops::axpy(-0.1, g, p);
                }
            }
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.2, "loss did not drop");
    }
}
