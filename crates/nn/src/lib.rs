//! # pbp-nn
//!
//! Neural-network substrate for the reproduction of *"Pipelined
//! Backpropagation at Scale"* (Kosson et al., MLSYS 2021): layers with
//! explicit forward/backward passes, a stage-partitioned [`Network`]
//! container, the softmax cross-entropy loss, and the paper's architectures
//! (VGG11/13/16 and pre-activation ResNet20/32/44/56/110 plus an
//! ImageNet-style ResNet50 analogue).
//!
//! ## Why no autograd?
//!
//! Fine-grained pipelined backpropagation assigns every layer (or small
//! fused group of layers) to its own pipeline stage. Each stage must be able
//! to run its forward and backward transformations *independently*, against
//! *different weight versions*, with multiple samples in flight. A taped
//! autograd hides exactly the state this needs to expose, so layers here
//! implement [`Layer::forward`]/[`Layer::backward`] explicitly and stash
//! per-sample activations in an internal FIFO — mirroring how the paper's
//! GProp framework stores activations per in-flight input.
//!
//! ## Multi-lane activations
//!
//! Residual networks are expressed as a *linear chain* of stages operating
//! on a small stack of tensors ("lanes"): [`layers::Dup`] forks the
//! activation onto a skip lane, ordinary layers transform the top lane, and
//! [`layers::AddLanes`] implements the sum nodes that the paper also treats
//! as pipeline stages.
//!
//! # Example
//!
//! ```
//! use pbp_nn::models::mlp;
//! use pbp_nn::loss::softmax_cross_entropy;
//! use pbp_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = mlp(&[4, 16, 3], &mut rng);
//! let x = Tensor::ones(&[1, 4]);
//! let logits = net.forward(&x);
//! let (loss, grad) = pbp_nn::loss::softmax_cross_entropy(&logits, &[2]);
//! net.backward(&grad);
//! assert!(loss > 0.0);
//! ```

// Numeric kernels in this crate iterate with explicit indices when several
// parallel buffers are walked in lockstep; clippy's iterator-chain
// suggestion obscures the stride arithmetic there.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod network;
pub mod snapshot;

pub use layer::{LaneStack, Layer};
pub use network::{Network, Stage};
