//! Weight checkpointing: save/load a network's parameters to a simple,
//! versioned binary format.
//!
//! The format is deliberately minimal and self-describing:
//!
//! ```text
//! magic   "PBPCKPT1"                                   (8 bytes)
//! u32     number of stages
//! per stage:
//!   u32   number of parameter tensors
//!   per tensor:
//!     u32         rank
//!     u32 × rank  shape
//!     f32 × len   data (little-endian)
//! ```
//!
//! Only parameters are stored; optimizer state (velocities, weight-version
//! queues) is reconstructed by the training engines. Loading validates the
//! full layout against the target network.
//!
//! **Deprecation note:** for fault-tolerant runs this params-only format
//! is not enough — mid-training state (per-stage velocities, weight-stash
//! queues, delayed gradients in flight, RNG cursors) cannot be
//! reconstructed and resuming from a bare `PBPCKPT1` file is *not*
//! bit-identical. New code should capture full training state with
//! `pbp-snapshot` (see [`crate::snapshot`]), whose container embeds this
//! exact byte stream as its `"net"` section, so existing `PBPCKPT1` files
//! remain loadable and a snapshot's parameter section can always be read
//! by this module.

use crate::Network;
use pbp_tensor::Tensor;
use std::fmt;
use std::io::{Read, Write};

/// Errors from checkpoint serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The data is not a checkpoint or is from an unknown version.
    BadMagic,
    /// The checkpoint's layout does not match the target network.
    LayoutMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a pbp checkpoint (bad magic)"),
            CheckpointError::LayoutMismatch(msg) => {
                write!(f, "checkpoint layout mismatch: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"PBPCKPT1";

fn write_u32(w: &mut impl Write, v: u32) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes the network's parameters to `w`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save(net: &Network, w: &mut impl Write) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    write_u32(w, net.num_stages() as u32)?;
    for s in 0..net.num_stages() {
        let params = net.stage(s).params();
        write_u32(w, params.len() as u32)?;
        for p in params {
            write_u32(w, p.rank() as u32)?;
            for &dim in p.shape() {
                write_u32(w, dim as u32)?;
            }
            for &v in p.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Reads parameters from `r` into the network, validating the layout.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] for foreign data,
/// [`CheckpointError::LayoutMismatch`] if stage/parameter/shape counts
/// disagree with `net`, or [`CheckpointError::Io`] on read failure.
pub fn load(net: &mut Network, r: &mut impl Read) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let stages = read_u32(r)? as usize;
    if stages != net.num_stages() {
        return Err(CheckpointError::LayoutMismatch(format!(
            "checkpoint has {stages} stages, network has {}",
            net.num_stages()
        )));
    }
    for s in 0..stages {
        let n_params = read_u32(r)? as usize;
        let expected = net.stage(s).params().len();
        if n_params != expected {
            return Err(CheckpointError::LayoutMismatch(format!(
                "stage {s}: checkpoint has {n_params} tensors, network has {expected}"
            )));
        }
        let mut new_params: Vec<Tensor> = Vec::with_capacity(n_params);
        for (i, current) in net.stage(s).params().iter().enumerate() {
            let rank = read_u32(r)? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u32(r)? as usize);
            }
            if shape != current.shape() {
                return Err(CheckpointError::LayoutMismatch(format!(
                    "stage {s} param {i}: checkpoint shape {shape:?} vs network {:?}",
                    current.shape()
                )));
            }
            let len: usize = shape.iter().product();
            let mut data = vec![0f32; len];
            let mut buf = [0u8; 4];
            for v in &mut data {
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            new_params.push(Tensor::from_vec(data, &shape).expect("shape/volume consistent"));
        }
        net.stage_mut(s).load(&new_params);
    }
    Ok(())
}

/// Saves the network to a file path.
///
/// # Errors
///
/// See [`save`].
pub fn save_to_path(
    net: &Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(net, &mut file)
}

/// Loads the network from a file path.
///
/// # Errors
///
/// See [`load`].
pub fn load_from_path(
    net: &mut Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    load(net, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mlp, simple_cnn};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_weights_exactly() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = simple_cnn(3, 6, 3, 4, &mut rng);
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        let mut rng = StdRng::seed_from_u64(999); // different init
        let mut other = simple_cnn(3, 6, 3, 4, &mut rng);
        load(&mut other, &mut buf.as_slice()).unwrap();
        for s in 0..net.num_stages() {
            for (p, q) in net.stage(s).params().iter().zip(other.stage(s).params()) {
                assert_eq!(p.as_slice(), q.as_slice(), "stage {s}");
            }
        }
    }

    #[test]
    fn rejects_foreign_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(&[2, 4, 2], &mut rng);
        let garbage = b"definitely not a checkpoint".to_vec();
        match load(&mut net, &mut garbage.as_slice()) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_layout_mismatch() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = mlp(&[2, 4, 2], &mut rng);
        let mut big = mlp(&[2, 8, 2], &mut rng);
        let mut buf = Vec::new();
        save(&small, &mut buf).unwrap();
        match load(&mut big, &mut buf.as_slice()) {
            Err(CheckpointError::LayoutMismatch(_)) => {}
            other => panic!("expected LayoutMismatch, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pbp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        let mut rng = StdRng::seed_from_u64(3);
        let net = mlp(&[3, 5, 2], &mut rng);
        save_to_path(&net, &path).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut other = mlp(&[3, 5, 2], &mut rng);
        load_from_path(&mut other, &path).unwrap();
        let x = pbp_tensor::Tensor::ones(&[1, 3]);
        let mut a = net;
        let ya = a.forward(&x);
        let yb = other.forward(&x);
        assert_eq!(ya.as_slice(), yb.as_slice());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_is_an_io_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = mlp(&[2, 4, 2], &mut rng);
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut other = mlp(&[2, 4, 2], &mut rng);
        match load(&mut other, &mut buf.as_slice()) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
