//! Adam optimizer (Kingma & Ba, 2015).
//!
//! The paper's Discussion suggests "optimizers such as ADAM may also
//! increase delay tolerance"; this state type supports the corresponding
//! ablation experiment. Spike compensation and weight prediction are
//! formulated for SGDM and are not applied here — Adam is a *baseline*
//! under delay, not a mitigation target.

use pbp_snapshot::{SnapshotError, Snapshottable, StateReader, StateWriter};
use pbp_tensor::Tensor;

/// Adam state (first/second moment estimates with bias correction).
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl AdamState {
    /// Creates zeroed Adam state with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(params: &[&Tensor]) -> Self {
        AdamState::with_betas(params, 0.9, 0.999)
    }

    /// Creates state with explicit momentum coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(params: &[&Tensor], beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        AdamState {
            m: params.iter().map(|p| Tensor::zeros(p.shape())).collect(),
            v: params.iter().map(|p| Tensor::zeros(p.shape())).collect(),
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// One Adam update with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor lists disagree with the state layout.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "param layout mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad layout mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            let ps = p.as_mut_slice();
            let gs = g.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..ps.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * gs[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * gs[i] * gs[i];
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                ps[i] -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

impl Snapshottable for AdamState {
    // β₁/β₂/ε are construction-time configuration; only the moment
    // estimates and the step counter evolve, so only they travel.
    fn write_state(&self, w: &mut StateWriter) {
        w.put_tensor_list(&self.m);
        w.put_tensor_list(&self.v);
        w.put_u64(self.t);
    }

    fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let mut m: Vec<&mut Tensor> = self.m.iter_mut().collect();
        r.take_tensors_into(&mut m, "adam first moment")?;
        let mut v: Vec<&mut Tensor> = self.v.iter_mut().collect();
        r.take_tensors_into(&mut v, "adam second moment")?;
        self.t = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_roughly_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut w = Tensor::from_slice(&[0.0, 0.0]);
        let g = Tensor::from_slice(&[3.0, -0.01]);
        let mut adam = AdamState::new(&[&w]);
        adam.step(&mut [&mut w], &[&g], 0.1);
        assert!((w.as_slice()[0] + 0.1).abs() < 1e-3, "{}", w.as_slice()[0]);
        assert!((w.as_slice()[1] - 0.1).abs() < 1e-3, "{}", w.as_slice()[1]);
    }

    #[test]
    fn converges_on_a_quadratic() {
        // Minimize 0.5·(w − 3)².
        let mut w = Tensor::from_slice(&[0.0]);
        let mut adam = AdamState::new(&[&w]);
        for _ in 0..2000 {
            let g = Tensor::from_slice(&[w.as_slice()[0] - 3.0]);
            adam.step(&mut [&mut w], &[&g], 0.05);
        }
        assert!((w.as_slice()[0] - 3.0).abs() < 0.05, "{}", w.as_slice()[0]);
    }

    #[test]
    fn step_counter_advances() {
        let w = Tensor::from_slice(&[1.0]);
        let mut adam = AdamState::new(&[&w]);
        assert_eq!(adam.steps(), 0);
        let mut w = w;
        let g = Tensor::from_slice(&[1.0]);
        adam.step(&mut [&mut w], &[&g], 0.01);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "beta1")]
    fn rejects_bad_betas() {
        let w = Tensor::from_slice(&[1.0]);
        AdamState::with_betas(&[&w], 1.0, 0.999);
    }
}
