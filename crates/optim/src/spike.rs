//! Spike Compensation coefficients (Section 3.2).

/// Coefficients `(a, b)` of the generalized spike-compensated update
/// `w ← w − η(a·v + b·g)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeCoeffs {
    /// Velocity coefficient.
    pub a: f32,
    /// Latest-gradient ("spike") coefficient.
    pub b: f32,
}

impl SpikeCoeffs {
    /// Plain SGDM: `a = 1, b = 0`.
    pub fn identity() -> Self {
        SpikeCoeffs { a: 1.0, b: 0.0 }
    }

    /// The paper's default SCD coefficients for delay `d` and momentum `m`
    /// (Eq. 14):
    ///
    /// ```text
    /// a = m^D,   b = (1 − m^D)/(1 − m)
    /// ```
    ///
    /// `b` equals the total contribution (Eq. 13) the delayed gradient
    /// would already have made to the weights in the no-delay case, so the
    /// "missing" update is applied as an immediate spike while later
    /// contributions match the no-delay impulse response (Figure 3).
    ///
    /// For `d == 0` this returns [`SpikeCoeffs::identity`] — SCD reduces
    /// exactly to SGDM without delay.
    ///
    /// # Example
    ///
    /// ```
    /// use pbp_optim::SpikeCoeffs;
    ///
    /// // For a delay of one, SCD is exactly Nesterov momentum (a = m, b = 1).
    /// let c = SpikeCoeffs::scd(0.9, 1.0);
    /// assert!((c.a - 0.9).abs() < 1e-6);
    /// assert!((c.b - 1.0).abs() < 1e-6);
    /// ```
    pub fn scd(momentum: f32, d: f32) -> Self {
        if d == 0.0 {
            return SpikeCoeffs::identity();
        }
        if momentum <= f32::EPSILON {
            // limit m→0: a = 0 (for d>0), b = 1.
            return SpikeCoeffs { a: 0.0, b: 1.0 };
        }
        let md = momentum.powf(d);
        SpikeCoeffs {
            a: md,
            b: (1.0 - md) / (1.0 - momentum),
        }
    }

    /// Overcompensating variant SC_{scale·D} (Appendix E): the effective
    /// delay is multiplied by `scale` before computing Eq. 14 — `scale = 2`
    /// gives the paper's SC2D.
    pub fn scaled_scd(momentum: f32, d: f32, scale: f32) -> Self {
        SpikeCoeffs::scd(momentum, d * scale)
    }

    /// Total weight displacement per unit gradient over an infinite
    /// horizon, `a/(1−m) + b` — equals `1/(1−m)` for SCD, i.e. the same as
    /// plain momentum: SC redistributes contributions over time without
    /// changing their total (Section 3.2).
    pub fn total_contribution(&self, momentum: f32) -> f32 {
        self.a / (1.0 - momentum) + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_reduces_to_sgdm() {
        let c = SpikeCoeffs::scd(0.9, 0.0);
        assert_eq!(c, SpikeCoeffs::identity());
    }

    #[test]
    fn delay_one_equals_nesterov() {
        // SCD with D=1: a = m, b = (1-m)/(1-m) = 1 — exactly Nesterov.
        let c = SpikeCoeffs::scd(0.9, 1.0);
        assert!((c.a - 0.9).abs() < 1e-6);
        assert!((c.b - 1.0).abs() < 1e-6);
    }

    #[test]
    fn b_matches_geometric_series_closed_form() {
        // Eq. 13: sum_{t=0}^{D-1} m^t == (1 - m^D) / (1 - m).
        for &m in &[0.5f32, 0.9, 0.99] {
            for d in 1..=16usize {
                let c = SpikeCoeffs::scd(m, d as f32);
                let series: f32 = (0..d).map(|t| m.powi(t as i32)).sum();
                assert!(
                    (c.b - series).abs() < 1e-3 * series.max(1.0),
                    "m={m} d={d}: {} vs {series}",
                    c.b
                );
            }
        }
    }

    #[test]
    fn total_contribution_is_preserved() {
        for &m in &[0.5f32, 0.9, 0.97] {
            for d in 0..10usize {
                let c = SpikeCoeffs::scd(m, d as f32);
                let total = c.total_contribution(m);
                assert!(
                    (total - 1.0 / (1.0 - m)).abs() < 1e-2 / (1.0 - m),
                    "m={m} d={d}: total {total}"
                );
            }
        }
    }

    #[test]
    fn zero_momentum_limit() {
        let c = SpikeCoeffs::scd(0.0, 4.0);
        assert_eq!(c.a, 0.0);
        assert_eq!(c.b, 1.0);
    }

    #[test]
    fn scaled_doubles_effective_delay() {
        let m = 0.9f32;
        let direct = SpikeCoeffs::scd(m, 8.0);
        let scaled = SpikeCoeffs::scaled_scd(m, 4.0, 2.0);
        assert!((direct.a - scaled.a).abs() < 1e-6);
        assert!((direct.b - scaled.b).abs() < 1e-6);
    }
}
