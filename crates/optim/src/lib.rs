//! # pbp-optim
//!
//! Optimizers and delay-mitigation methods from *"Pipelined
//! Backpropagation at Scale"* (Kosson et al., MLSYS 2021):
//!
//! * SGD with momentum ([`SgdmState`]) and Nesterov momentum;
//! * **Spike Compensation** (Section 3.2): a modified weight update
//!   `w ← w − η(a·v + b·g)` whose default coefficients `a = m^D`,
//!   `b = (1−m^D)/(1−m)` re-apply the updates a delayed gradient missed;
//! * **Linear Weight Prediction** (Section 3.3): forward weights predicted
//!   `T` steps ahead, in the velocity form `ŵ = w − ηT·v` (Eq. 18) or the
//!   weight-difference form `ŵ = w + T(w − w_prev)` (Eq. 19);
//! * their **combination** (Section 3.4) and the **SpecTrain** baseline
//!   (Appendix C) with vertically synchronized horizons and backward
//!   re-prediction;
//! * **gradient shrinking** (Zhuang et al., 2019) as an extra baseline;
//! * the batch-size **hyperparameter scaling rules** (Eq. 9) that map a
//!   reference (η, m, N) to update-size-one training.
//!
//! The central type is [`StageOptimizer`]: one per pipeline stage, owning
//! that stage's velocity and exposing the three operations the pipeline
//! engines compose — forward-weight prediction, backward-weight prediction
//! and the (possibly spike-compensated) update step.

mod adam;
mod hyper;
mod lwp;
mod mitigation;
mod sgdm;
mod spike;
mod stage_opt;

pub use adam::AdamState;
pub use hyper::{clip_grad_norm, scale_hyperparams, CosineSchedule, Hyperparams, LrSchedule};
pub use lwp::{predict_velocity_form, predict_weight_form, LwpForm};
pub use mitigation::{Mitigation, StageConfig};
pub use sgdm::SgdmState;
pub use spike::SpikeCoeffs;
pub use stage_opt::StageOptimizer;
