//! Mitigation method selection and per-stage configuration.

use crate::LwpForm;

/// Delay-mitigation method for pipelined backpropagation, as compared in
/// the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mitigation {
    /// No mitigation: plain delayed SGDM (the "PB" rows of Table 1).
    None,
    /// Spike Compensation with effective delay `scale·D` (`scale = 1` is
    /// the default SCD; `scale = 2` is the overcompensating SC2D of
    /// Appendix E).
    Sc {
        /// Multiplier on the per-stage delay.
        scale: f32,
    },
    /// Linear Weight Prediction with horizon `T = scale·D` (`scale = 1` is
    /// LWPD; `scale = 2` is LWP2D).
    Lwp {
        /// Prediction form (velocity or weight-difference).
        form: LwpForm,
        /// Multiplier on the per-stage delay.
        scale: f32,
    },
    /// Combined LWP + SC (Section 3.4) — the paper's strongest method,
    /// `PB+LWPvD+SCD` when `form == LwpForm::Velocity`.
    LwpSc {
        /// Prediction form for the LWP part.
        form: LwpForm,
        /// Horizon multiplier for the LWP part.
        lwp_scale: f32,
        /// Effective-delay multiplier for the SC part.
        sc_scale: f32,
    },
    /// SpecTrain-style weight prediction (Chen et al., 2018; Appendix C):
    /// vertically synchronized horizons — every stage predicts to the same
    /// future time step — plus re-prediction on the backward pass.
    SpecTrain,
    /// Gradient shrinking (Zhuang et al., 2019): gradients scaled by
    /// `factor^D` per stage. Provided as an additional baseline.
    GradShrink {
        /// Per-delay-step shrink factor in `(0, 1]`.
        factor: f32,
    },
}

impl Mitigation {
    /// The paper's default SCD.
    pub fn scd() -> Self {
        Mitigation::Sc { scale: 1.0 }
    }

    /// The paper's default LWPD (velocity form).
    pub fn lwpd() -> Self {
        Mitigation::Lwp {
            form: LwpForm::Velocity,
            scale: 1.0,
        }
    }

    /// The paper's headline combination `LWPvD + SCD`.
    pub fn lwpv_scd() -> Self {
        Mitigation::LwpSc {
            form: LwpForm::Velocity,
            lwp_scale: 1.0,
            sc_scale: 1.0,
        }
    }

    /// The weight-difference combination `LWPwD + SCD` (Appendix H.5).
    pub fn lwpw_scd() -> Self {
        Mitigation::LwpSc {
            form: LwpForm::WeightDiff,
            lwp_scale: 1.0,
            sc_scale: 1.0,
        }
    }

    /// Builds the per-stage configuration for a stage with the given
    /// gradient `delay` (in updates) and `stage_index` within a pipeline of
    /// `num_stages` stages.
    ///
    /// SpecTrain horizons follow Appendix C's vertical sync: all stages
    /// predict forward to the wall-clock step at which stage 0 applies this
    /// sample's update (`T_fwd = D + s`), and re-predict on the backward
    /// pass by the remaining offset (`T_bwd = s`).
    pub fn stage_config(&self, delay: usize, stage_index: usize) -> StageConfig {
        let d = delay as f32;
        match *self {
            Mitigation::None => StageConfig::plain(delay),
            Mitigation::Sc { scale } => StageConfig {
                spike_delay: d * scale,
                ..StageConfig::plain(delay)
            },
            Mitigation::Lwp { form, scale } => StageConfig {
                fwd_horizon: d * scale,
                lwp_form: form,
                ..StageConfig::plain(delay)
            },
            Mitigation::LwpSc {
                form,
                lwp_scale,
                sc_scale,
            } => StageConfig {
                fwd_horizon: d * lwp_scale,
                spike_delay: d * sc_scale,
                lwp_form: form,
                ..StageConfig::plain(delay)
            },
            Mitigation::SpecTrain => StageConfig {
                fwd_horizon: d + stage_index as f32,
                bwd_horizon: stage_index as f32,
                lwp_form: LwpForm::Velocity,
                ..StageConfig::plain(delay)
            },
            Mitigation::GradShrink { factor } => StageConfig {
                grad_scale: factor.powf(d),
                ..StageConfig::plain(delay)
            },
        }
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> String {
        match *self {
            Mitigation::None => "PB".to_string(),
            Mitigation::Sc { scale: 1.0 } => "PB+SCD".to_string(),
            Mitigation::Sc { scale } => format!("PB+SC{scale}D"),
            Mitigation::Lwp { form, scale } => {
                let f = if form == LwpForm::Velocity { "v" } else { "w" };
                if scale == 1.0 {
                    format!("PB+LWP{f}D")
                } else {
                    format!("PB+LWP{f}{scale}D")
                }
            }
            Mitigation::LwpSc { form, .. } => {
                let f = if form == LwpForm::Velocity { "v" } else { "w" };
                format!("PB+LWP{f}D+SCD")
            }
            Mitigation::SpecTrain => "PB+SpecTrain".to_string(),
            Mitigation::GradShrink { factor } => format!("PB+Shrink({factor})"),
        }
    }
}

/// Resolved per-stage mitigation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageConfig {
    /// Gradient delay of this stage, in updates.
    pub delay: usize,
    /// Forward weight-prediction horizon `T` (0 = no prediction).
    pub fwd_horizon: f32,
    /// Backward weight-prediction horizon (SpecTrain only; 0 otherwise).
    pub bwd_horizon: f32,
    /// Effective delay for spike compensation (0 = plain update).
    pub spike_delay: f32,
    /// Which LWP form to use when a horizon is non-zero.
    pub lwp_form: LwpForm,
    /// Multiplier applied to gradients before the update (gradient
    /// shrinking; 1 otherwise).
    pub grad_scale: f32,
}

impl StageConfig {
    /// Plain delayed SGDM for a stage with the given delay.
    pub fn plain(delay: usize) -> Self {
        StageConfig {
            delay,
            fwd_horizon: 0.0,
            bwd_horizon: 0.0,
            spike_delay: 0.0,
            lwp_form: LwpForm::Velocity,
            grad_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_plain() {
        let c = Mitigation::None.stage_config(6, 2);
        assert_eq!(c, StageConfig::plain(6));
    }

    #[test]
    fn scd_sets_spike_delay() {
        let c = Mitigation::scd().stage_config(6, 2);
        assert_eq!(c.spike_delay, 6.0);
        assert_eq!(c.fwd_horizon, 0.0);
    }

    #[test]
    fn sc2d_doubles_effective_delay() {
        let c = Mitigation::Sc { scale: 2.0 }.stage_config(6, 0);
        assert_eq!(c.spike_delay, 12.0);
    }

    #[test]
    fn lwpd_sets_horizon_to_delay() {
        let c = Mitigation::lwpd().stage_config(8, 1);
        assert_eq!(c.fwd_horizon, 8.0);
        assert_eq!(c.spike_delay, 0.0);
        assert_eq!(c.lwp_form, LwpForm::Velocity);
    }

    #[test]
    fn combination_sets_both() {
        let c = Mitigation::lwpv_scd().stage_config(4, 0);
        assert_eq!(c.fwd_horizon, 4.0);
        assert_eq!(c.spike_delay, 4.0);
    }

    #[test]
    fn spectrain_horizons_vertically_sync() {
        // Stage s with delay D predicts forward to D + s and backward by s,
        // so fwd − bwd == D for every stage: all stages meet at the same
        // future step.
        for (delay, s) in [(10usize, 0usize), (6, 2), (0, 5)] {
            let c = Mitigation::SpecTrain.stage_config(delay, s);
            assert_eq!(c.fwd_horizon - c.bwd_horizon, delay as f32);
            assert_eq!(c.bwd_horizon, s as f32);
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Mitigation::None.label(), "PB");
        assert_eq!(Mitigation::scd().label(), "PB+SCD");
        assert_eq!(Mitigation::lwpd().label(), "PB+LWPvD");
        assert_eq!(Mitigation::lwpv_scd().label(), "PB+LWPvD+SCD");
        assert_eq!(Mitigation::lwpw_scd().label(), "PB+LWPwD+SCD");
    }
}
