//! Linear Weight Prediction (Section 3.3).

use pbp_tensor::Tensor;

/// Which form of Linear Weight Prediction to use.
///
/// For plain SGDM both forms coincide (`η·v_{t+1} = w_t − w_{t+1}`), but
/// combined with spike compensation they differ (Eq. 26); the paper finds
/// the velocity form stronger in combination (Appendix H.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LwpForm {
    /// Velocity form `ŵ = w − η·T·v` (Eq. 18) — the paper's LWPv.
    #[default]
    Velocity,
    /// Weight-difference form `ŵ = w + T·(w − w_prev)` (Eq. 19) — LWPw.
    WeightDiff,
}

/// Velocity-form prediction: `ŵ_i = w_i − η·T·v_i` for each tensor.
///
/// # Panics
///
/// Panics if the lists differ in length or shapes mismatch.
pub fn predict_velocity_form(
    weights: &[&Tensor],
    velocity: &[Tensor],
    lr: f32,
    horizon: f32,
) -> Vec<Tensor> {
    assert_eq!(weights.len(), velocity.len(), "weights/velocity mismatch");
    weights
        .iter()
        .zip(velocity)
        .map(|(w, v)| {
            let mut out = (*w).clone();
            pbp_tensor::ops::axpy(-lr * horizon, v, &mut out);
            out
        })
        .collect()
}

/// Weight-difference-form prediction: `ŵ_i = w_i + T·(w_i − w_prev_i)`.
///
/// # Panics
///
/// Panics if the lists differ in length or shapes mismatch.
pub fn predict_weight_form(weights: &[&Tensor], prev: &[Tensor], horizon: f32) -> Vec<Tensor> {
    assert_eq!(weights.len(), prev.len(), "weights/prev mismatch");
    weights
        .iter()
        .zip(prev)
        .map(|(w, p)| {
            let mut out = Tensor::zeros(w.shape());
            pbp_tensor::ops::lerp_into(w, p, horizon, &mut out);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hyperparams, SgdmState};

    #[test]
    fn zero_horizon_is_identity_for_both_forms() {
        let w = Tensor::from_slice(&[1.0, 2.0]);
        let v = vec![Tensor::from_slice(&[0.5, -0.5])];
        let p = vec![Tensor::from_slice(&[0.9, 2.1])];
        let a = predict_velocity_form(&[&w], &v, 0.1, 0.0);
        let b = predict_weight_form(&[&w], &p, 0.0);
        assert_eq!(a[0].as_slice(), w.as_slice());
        assert_eq!(b[0].as_slice(), w.as_slice());
    }

    #[test]
    fn forms_coincide_for_plain_sgdm() {
        // After an SGDM step, w_t − w_{t-1} = −η·v_t, so both predictions
        // agree (Eqs. 18 and 19 are equivalent for unmodified SGDM).
        let hp = Hyperparams::new(0.1, 0.9);
        let mut w = Tensor::from_slice(&[1.0, -2.0]);
        let g = Tensor::from_slice(&[0.3, 0.7]);
        let mut state = SgdmState::new(&[&w]);
        let mut prev = w.clone();
        for _ in 0..3 {
            prev = w.clone();
            state.step(&mut [&mut w], &[&g], hp);
        }
        let t = 5.0;
        let via_v = predict_velocity_form(&[&w], state.velocity(), hp.lr, t);
        let via_w = predict_weight_form(&[&w], &[prev], t);
        for (a, b) in via_v[0].as_slice().iter().zip(via_w[0].as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn forms_differ_under_spike_compensation() {
        // With SC the weight difference is η(a·v + b·g) ≠ η·v, so the two
        // predictions must differ (Eq. 26).
        let hp = Hyperparams::new(0.1, 0.9);
        let mut w = Tensor::from_slice(&[1.0, -2.0]);
        let g = Tensor::from_slice(&[0.3, 0.7]);
        let mut state = SgdmState::new(&[&w]);
        let mut prev = w.clone();
        for _ in 0..3 {
            prev = w.clone();
            state.step_with_spike(&mut [&mut w], &[&g], hp, 0.5, 2.0);
        }
        let t = 5.0;
        let via_v = predict_velocity_form(&[&w], state.velocity(), hp.lr, t);
        let via_w = predict_weight_form(&[&w], &[prev], t);
        let diff: f32 = via_v[0]
            .as_slice()
            .iter()
            .zip(via_w[0].as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "forms unexpectedly coincide");
    }

    #[test]
    fn velocity_prediction_extrapolates_along_velocity() {
        let w = Tensor::from_slice(&[0.0]);
        let v = vec![Tensor::from_slice(&[2.0])];
        let pred = predict_velocity_form(&[&w], &v, 0.5, 3.0);
        // ŵ = 0 − 0.5·3·2 = −3.
        assert!((pred[0].as_slice()[0] + 3.0).abs() < 1e-6);
    }
}
