//! Hyperparameters, the paper's batch-size scaling rules and learning-rate
//! schedules.

/// A (learning rate, momentum) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperparams {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient m.
    pub momentum: f32,
}

impl Hyperparams {
    /// Creates a hyperparameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 ≤ momentum < 1`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Hyperparams { lr, momentum }
    }
}

/// Scales reference hyperparameters to a new update size (Eq. 9):
///
/// ```text
/// m = m_r^(N / N_r)
/// η = (1 − m)·N / ((1 − m_r)·N_r) · η_r
/// ```
///
/// The momentum is scaled so its decay *per sample* is unchanged and the
/// learning rate so each sample's total contribution to the weights is
/// unchanged — allowing update-size-one pipelined backpropagation to reuse
/// hyperparameters published for large-batch SGDM without tuning (the
/// scaling of Chiley et al., 2019).
///
/// # Example
///
/// ```
/// use pbp_optim::{scale_hyperparams, Hyperparams};
///
/// // He et al.'s CIFAR recipe (η = 0.1, m = 0.9 at batch 128) scaled to
/// // update size one for pipelined backpropagation:
/// let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, 1);
/// assert!(hp.momentum > 0.999);           // per-sample decay preserved
/// assert!(hp.lr < 1e-4);                  // per-sample contribution preserved
/// ```
///
/// # Panics
///
/// Panics if batch sizes are zero or the reference hyperparameters are out
/// of range.
pub fn scale_hyperparams(
    reference: Hyperparams,
    ref_batch: usize,
    new_batch: usize,
) -> Hyperparams {
    assert!(
        ref_batch > 0 && new_batch > 0,
        "batch sizes must be positive"
    );
    let ratio = new_batch as f64 / ref_batch as f64;
    let m_r = reference.momentum as f64;
    let m = m_r.powf(ratio);
    let lr = (1.0 - m) * new_batch as f64 / ((1.0 - m_r) * ref_batch as f64) * reference.lr as f64;
    Hyperparams::new(lr as f32, m as f32)
}

/// A piecewise-constant learning-rate schedule with optional linear warmup,
/// in units of *samples seen* so schedules are identical across update
/// sizes.
#[derive(Debug, Clone)]
pub struct LrSchedule {
    base: Hyperparams,
    /// `(samples_seen, multiplier)` milestones, ascending.
    milestones: Vec<(usize, f32)>,
    warmup_samples: usize,
}

impl LrSchedule {
    /// Constant schedule at `base`.
    pub fn constant(base: Hyperparams) -> Self {
        LrSchedule {
            base,
            milestones: Vec::new(),
            warmup_samples: 0,
        }
    }

    /// Step schedule: learning rate is multiplied by `multiplier` once
    /// `samples_seen` reaches each milestone.
    ///
    /// # Panics
    ///
    /// Panics if milestones are not strictly ascending.
    pub fn steps(base: Hyperparams, milestones: Vec<(usize, f32)>) -> Self {
        assert!(
            milestones.windows(2).all(|w| w[0].0 < w[1].0),
            "milestones must be strictly ascending"
        );
        LrSchedule {
            base,
            milestones,
            warmup_samples: 0,
        }
    }

    /// Adds a linear warmup over the first `samples` samples.
    pub fn with_warmup(mut self, samples: usize) -> Self {
        self.warmup_samples = samples;
        self
    }

    /// Hyperparameters after `samples_seen` training samples.
    pub fn at(&self, samples_seen: usize) -> Hyperparams {
        let mut lr = self.base.lr;
        for &(milestone, mult) in &self.milestones {
            if samples_seen >= milestone {
                lr = self.base.lr * mult;
            }
        }
        if self.warmup_samples > 0 && samples_seen < self.warmup_samples {
            lr *= (samples_seen + 1) as f32 / self.warmup_samples as f32;
        }
        Hyperparams {
            lr,
            momentum: self.base.momentum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_reference_at_same_batch() {
        let r = Hyperparams::new(0.1, 0.9);
        let s = scale_hyperparams(r, 128, 128);
        assert!((s.lr - 0.1).abs() < 1e-6);
        assert!((s.momentum - 0.9).abs() < 1e-6);
    }

    #[test]
    fn scaling_to_batch_one_matches_formula() {
        // Reference from He et al. (2016a): lr=0.1, m=0.9, N=128 (CIFAR).
        let r = Hyperparams::new(0.1, 0.9);
        let s = scale_hyperparams(r, 128, 1);
        let m_expected = 0.9f64.powf(1.0 / 128.0);
        assert!((s.momentum as f64 - m_expected).abs() < 1e-6);
        let lr_expected = (1.0 - m_expected) / ((1.0 - 0.9) * 128.0) * 0.1;
        assert!((s.lr as f64 - lr_expected).abs() < 1e-7);
        // The per-sample contribution η/(1−m) is preserved.
        let contrib_ref = 0.1 / ((1.0 - 0.9) * 128.0);
        let contrib_new = s.lr as f64 / (1.0 - s.momentum as f64);
        assert!((contrib_ref - contrib_new).abs() < 1e-6);
    }

    #[test]
    fn momentum_halflife_in_samples_is_preserved() {
        let r = Hyperparams::new(0.1, 0.9);
        let s = scale_hyperparams(r, 32, 1);
        // Decay over 32 samples: m_new^32 == m_ref^1.
        let decayed = (s.momentum as f64).powi(32);
        assert!((decayed - 0.9).abs() < 1e-5);
    }

    #[test]
    fn step_schedule_applies_milestones() {
        let sched = LrSchedule::steps(Hyperparams::new(1.0, 0.9), vec![(100, 0.1), (200, 0.01)]);
        assert_eq!(sched.at(0).lr, 1.0);
        assert_eq!(sched.at(99).lr, 1.0);
        assert!((sched.at(100).lr - 0.1).abs() < 1e-7);
        assert!((sched.at(250).lr - 0.01).abs() < 1e-7);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let sched = LrSchedule::constant(Hyperparams::new(1.0, 0.9)).with_warmup(10);
        assert!((sched.at(0).lr - 0.1).abs() < 1e-6);
        assert!((sched.at(4).lr - 0.5).abs() < 1e-6);
        assert_eq!(sched.at(10).lr, 1.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn rejects_momentum_one() {
        Hyperparams::new(0.1, 1.0);
    }
}

/// Cosine-annealed learning-rate schedule over a fixed horizon, with
/// optional warmup: `η(t) = η_min + (η_base − η_min)·(1 + cos(πt/T))/2`.
#[derive(Debug, Clone)]
pub struct CosineSchedule {
    base: Hyperparams,
    min_lr: f32,
    total_samples: usize,
    warmup_samples: usize,
}

impl CosineSchedule {
    /// Creates a cosine schedule decaying from `base.lr` to `min_lr` over
    /// `total_samples`.
    ///
    /// # Panics
    ///
    /// Panics if `total_samples == 0` or `min_lr > base.lr`.
    pub fn new(base: Hyperparams, min_lr: f32, total_samples: usize) -> Self {
        assert!(total_samples > 0, "total samples must be positive");
        assert!(min_lr <= base.lr, "min_lr must not exceed the base lr");
        CosineSchedule {
            base,
            min_lr,
            total_samples,
            warmup_samples: 0,
        }
    }

    /// Adds a linear warmup over the first `samples` samples.
    pub fn with_warmup(mut self, samples: usize) -> Self {
        self.warmup_samples = samples;
        self
    }

    /// Hyperparameters after `samples_seen` training samples.
    pub fn at(&self, samples_seen: usize) -> Hyperparams {
        if self.warmup_samples > 0 && samples_seen < self.warmup_samples {
            return Hyperparams {
                lr: self.base.lr * (samples_seen + 1) as f32 / self.warmup_samples as f32,
                momentum: self.base.momentum,
            };
        }
        let t = (samples_seen.min(self.total_samples)) as f32 / self.total_samples as f32;
        let lr = self.min_lr
            + (self.base.lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos()) / 2.0;
        Hyperparams {
            lr,
            momentum: self.base.momentum,
        }
    }
}

/// Scales `grads` in place so their global L2 norm does not exceed
/// `max_norm`; returns the pre-clip norm. A standard stabilizer for
/// un-normalized networks under gradient delay.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(grads: &mut [pbp_tensor::Tensor], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm: f64 = grads.iter().map(|g| g.norm_sq()).sum::<f64>().sqrt();
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        for g in grads {
            g.scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use pbp_tensor::Tensor;

    #[test]
    fn cosine_decays_from_base_to_min() {
        let sched = CosineSchedule::new(Hyperparams::new(1.0, 0.9), 0.1, 1000);
        assert!((sched.at(0).lr - 1.0).abs() < 1e-5);
        let mid = sched.at(500).lr;
        assert!((mid - 0.55).abs() < 1e-3, "midpoint {mid}");
        assert!((sched.at(1000).lr - 0.1).abs() < 1e-5);
        // Clamps past the horizon.
        assert!((sched.at(5000).lr - 0.1).abs() < 1e-5);
    }

    #[test]
    fn cosine_warmup_ramps_first() {
        let sched = CosineSchedule::new(Hyperparams::new(1.0, 0.9), 0.0, 100).with_warmup(10);
        assert!(sched.at(0).lr < 0.2);
        assert!(sched.at(9).lr <= 1.0);
        assert!((sched.at(10).lr - sched.at(10).lr).abs() < 1e-9);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut grads = vec![Tensor::from_slice(&[0.3, 0.4])]; // norm 0.5
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(grads[0].as_slice(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients_to_max_norm() {
        let mut grads = vec![Tensor::from_slice(&[3.0, 4.0])]; // norm 5
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let after: f64 = grads.iter().map(|g| g.norm_sq()).sum::<f64>().sqrt();
        assert!((after - 1.0).abs() < 1e-5, "clipped norm {after}");
    }

    #[test]
    fn clip_handles_multiple_tensors_globally() {
        let mut grads = vec![Tensor::from_slice(&[3.0]), Tensor::from_slice(&[4.0])];
        clip_grad_norm(&mut grads, 2.5); // global norm 5 → scale 0.5
        assert!((grads[0].as_slice()[0] - 1.5).abs() < 1e-5);
        assert!((grads[1].as_slice()[0] - 2.0).abs() < 1e-5);
    }
}
