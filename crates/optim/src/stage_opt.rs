//! Per-stage optimizer combining SGDM, spike compensation and weight
//! prediction.

use crate::{
    predict_velocity_form, predict_weight_form, Hyperparams, LwpForm, SgdmState, SpikeCoeffs,
    StageConfig,
};
use pbp_snapshot::{SnapshotError, Snapshottable, StateReader, StateWriter};
use pbp_tensor::Tensor;

/// Optimizer state for one pipeline stage.
///
/// The pipeline engines call three operations per stage:
///
/// 1. [`StageOptimizer::forward_weights`] — predicted weights for the
///    forward pass (Linear Weight Prediction / SpecTrain), or `None` when
///    no prediction is configured;
/// 2. [`StageOptimizer::backward_weights`] — SpecTrain's backward
///    re-prediction;
/// 3. [`StageOptimizer::step`] — the (possibly spike-compensated) update
///    with the gradient that just arrived.
///
/// Schedules that split backward (2BP) instead deliver weight gradients at
/// the update boundary through [`StageOptimizer::accumulate_deferred`] /
/// [`StageOptimizer::step_deferred`].
#[derive(Debug)]
pub struct StageOptimizer {
    state: SgdmState,
    /// Previous weight snapshot, kept only when the weight-difference LWP
    /// form needs it.
    prev_weights: Option<Vec<Tensor>>,
    /// Deferred weight gradients accumulated between updates; always drained
    /// by the update that closes the accumulation window, so it is empty
    /// whenever an engine snapshots (see [`Snapshottable`] impl below).
    deferred: Option<Vec<Tensor>>,
    config: StageConfig,
    hp: Hyperparams,
}

impl StageOptimizer {
    /// Creates the optimizer for a stage's parameter list.
    pub fn new(params: &[&Tensor], config: StageConfig, hp: Hyperparams) -> Self {
        let needs_prev = config.lwp_form == LwpForm::WeightDiff
            && (config.fwd_horizon != 0.0 || config.bwd_horizon != 0.0);
        StageOptimizer {
            state: SgdmState::new(params),
            prev_weights: needs_prev.then(|| params.iter().map(|p| (*p).clone()).collect()),
            deferred: None,
            config,
            hp,
        }
    }

    /// Updates the hyperparameters (learning-rate schedules).
    pub fn set_hyperparams(&mut self, hp: Hyperparams) {
        self.hp = hp;
    }

    /// Current hyperparameters.
    pub fn hyperparams(&self) -> Hyperparams {
        self.hp
    }

    /// The stage configuration.
    pub fn config(&self) -> &StageConfig {
        &self.config
    }

    /// The velocity tensors.
    pub fn velocity(&self) -> &[Tensor] {
        self.state.velocity()
    }

    /// Predicts weights `horizon` update steps ahead of `params` using the
    /// configured LWP form.
    pub fn predict(&self, params: &[&Tensor], horizon: f32) -> Vec<Tensor> {
        if horizon == 0.0 {
            return params.iter().map(|p| (*p).clone()).collect();
        }
        match self.config.lwp_form {
            LwpForm::Velocity => {
                predict_velocity_form(params, self.state.velocity(), self.hp.lr, horizon)
            }
            LwpForm::WeightDiff => {
                let prev = self
                    .prev_weights
                    .as_ref()
                    .expect("weight-difference form requires prev_weights");
                predict_weight_form(params, prev, horizon)
            }
        }
    }

    /// Forward-pass weights: the configured forward prediction, or `None`
    /// when no prediction applies (the engine then uses the stage weights
    /// as-is).
    pub fn forward_weights(&self, params: &[&Tensor]) -> Option<Vec<Tensor>> {
        (self.config.fwd_horizon != 0.0).then(|| self.predict(params, self.config.fwd_horizon))
    }

    /// Backward-pass weights (SpecTrain re-prediction), or `None`.
    pub fn backward_weights(&self, params: &[&Tensor]) -> Option<Vec<Tensor>> {
        (self.config.bwd_horizon != 0.0).then(|| self.predict(params, self.config.bwd_horizon))
    }

    /// Applies one update with the arrived gradient: gradient shrinking if
    /// configured, then `v ← m·v + g` and `w ← w − η(a·v + b·g)` with the
    /// SCD coefficients for the configured spike delay (identity when 0).
    ///
    /// # Panics
    ///
    /// Panics if the tensor layouts disagree with construction.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        if let Some(prev) = &mut self.prev_weights {
            for (dst, src) in prev.iter_mut().zip(params.iter()) {
                dst.as_mut_slice().copy_from_slice(src.as_slice());
            }
        }
        let coeffs = if self.config.spike_delay > 0.0 {
            SpikeCoeffs::scd(self.hp.momentum, self.config.spike_delay)
        } else {
            SpikeCoeffs::identity()
        };
        if self.config.grad_scale != 1.0 {
            let scaled: Vec<Tensor> = grads
                .iter()
                .map(|g| g.scale(self.config.grad_scale))
                .collect();
            let refs: Vec<&Tensor> = scaled.iter().collect();
            self.state
                .step_with_spike(params, &refs, self.hp, coeffs.a, coeffs.b);
        } else {
            self.state
                .step_with_spike(params, grads, self.hp, coeffs.a, coeffs.b);
        }
    }

    /// Folds one batch of *deferred* weight gradients into the
    /// optimizer-held accumulator. Split-backward schedules (2BP) produce
    /// weight gradients at the update boundary — possibly after the stage
    /// weights have moved on — so the optimizer accepts them detached from
    /// any particular backward pass: the first call clones the gradients,
    /// later calls add element-wise, and [`StageOptimizer::step_deferred`]
    /// applies the sum.
    ///
    /// # Panics
    ///
    /// Panics if the gradient layout disagrees with an earlier call.
    pub fn accumulate_deferred(&mut self, grads: &[&Tensor]) {
        match &mut self.deferred {
            Some(acc) => {
                assert_eq!(acc.len(), grads.len(), "deferred gradient layout");
                for (a, g) in acc.iter_mut().zip(grads) {
                    pbp_tensor::ops::axpy(1.0, g, a);
                }
            }
            None => self.deferred = Some(grads.iter().map(|g| (*g).clone()).collect()),
        }
    }

    /// True when deferred weight gradients are waiting to be applied.
    pub fn has_deferred(&self) -> bool {
        self.deferred.is_some()
    }

    /// Applies one update with the accumulated deferred gradients and
    /// clears the accumulator. A single [`StageOptimizer::accumulate_deferred`]
    /// followed by this call is bit-identical to [`StageOptimizer::step`]
    /// with the same gradients.
    ///
    /// # Panics
    ///
    /// Panics if no deferred gradients were accumulated.
    pub fn step_deferred(&mut self, params: &mut [&mut Tensor]) {
        let grads = self
            .deferred
            .take()
            .expect("step_deferred without accumulated gradients");
        let refs: Vec<&Tensor> = grads.iter().collect();
        self.step(params, &refs);
    }
}

impl Snapshottable for StageOptimizer {
    // The stage config is *not* serialized: a restored optimizer is
    // rebuilt from the same engine spec, so the config is re-derived and
    // only the evolving state (velocity, prev-weight snapshot, current
    // schedule point) travels in the snapshot. Deferred gradients are not
    // serialized either: engines only snapshot at update boundaries, where
    // the accumulator has been drained.
    fn write_state(&self, w: &mut StateWriter) {
        debug_assert!(
            self.deferred.is_none(),
            "snapshotting mid-accumulation: deferred gradients would be lost"
        );
        self.state.write_state(w);
        match &self.prev_weights {
            Some(prev) => {
                w.put_bool(true);
                w.put_tensor_list(prev);
            }
            None => w.put_bool(false),
        }
        w.put_f32(self.hp.lr);
        w.put_f32(self.hp.momentum);
    }

    fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.state.read_state(r)?;
        let has_prev = r.take_bool()?;
        match (&mut self.prev_weights, has_prev) {
            (Some(prev), true) => {
                let mut dst: Vec<&mut Tensor> = prev.iter_mut().collect();
                r.take_tensors_into(&mut dst, "lwp prev weights")?;
            }
            (None, false) => {}
            (slot, stored) => {
                return Err(SnapshotError::Mismatch(format!(
                    "prev-weights presence: stored {stored}, config expects {}",
                    slot.is_some()
                )))
            }
        }
        let lr = r.take_f32()?;
        let momentum = r.take_f32()?;
        if lr <= 0.0 || !(0.0..1.0).contains(&momentum) {
            return Err(SnapshotError::Corrupt(format!(
                "invalid stored hyperparams: lr={lr}, momentum={momentum}"
            )));
        }
        self.hp = Hyperparams { lr, momentum };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mitigation;

    fn hp() -> Hyperparams {
        Hyperparams::new(0.1, 0.9)
    }

    #[test]
    fn plain_config_matches_raw_sgdm() {
        let mut w1 = Tensor::from_slice(&[1.0, 2.0]);
        let mut w2 = w1.clone();
        let g = Tensor::from_slice(&[0.5, -0.2]);
        let mut opt = StageOptimizer::new(&[&w1], Mitigation::None.stage_config(4, 0), hp());
        let mut raw = SgdmState::new(&[&w2]);
        for _ in 0..5 {
            opt.step(&mut [&mut w1], &[&g]);
            raw.step(&mut [&mut w2], &[&g], hp());
        }
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn sc_with_zero_delay_matches_sgdm() {
        let mut w1 = Tensor::from_slice(&[1.0]);
        let mut w2 = w1.clone();
        let g = Tensor::from_slice(&[0.3]);
        let mut opt = StageOptimizer::new(&[&w1], Mitigation::scd().stage_config(0, 0), hp());
        let mut raw = SgdmState::new(&[&w2]);
        for _ in 0..4 {
            opt.step(&mut [&mut w1], &[&g]);
            raw.step(&mut [&mut w2], &[&g], hp());
        }
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn forward_weights_none_without_prediction() {
        let w = Tensor::from_slice(&[1.0]);
        let opt = StageOptimizer::new(&[&w], Mitigation::scd().stage_config(4, 0), hp());
        assert!(opt.forward_weights(&[&w]).is_none());
    }

    #[test]
    fn lwp_velocity_prediction_moves_against_velocity() {
        let mut w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        let mut opt = StageOptimizer::new(&[&w], Mitigation::lwpd().stage_config(5, 0), hp());
        opt.step(&mut [&mut w], &[&g]); // v = 1, w = 1 - 0.1 = 0.9
        let fw = opt.forward_weights(&[&w]).expect("prediction configured");
        // ŵ = 0.9 − 0.1·5·1 = 0.4
        assert!((fw[0].as_slice()[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn weight_form_tracks_previous_weights() {
        let mut w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        let mit = Mitigation::Lwp {
            form: LwpForm::WeightDiff,
            scale: 1.0,
        };
        let mut opt = StageOptimizer::new(&[&w], mit.stage_config(3, 0), hp());
        opt.step(&mut [&mut w], &[&g]); // prev = 1.0, w = 0.9
        let fw = opt.forward_weights(&[&w]).unwrap();
        // ŵ = 0.9 + 3·(0.9 − 1.0) = 0.6
        assert!((fw[0].as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn spectrain_predicts_both_directions() {
        let mut w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        let mut opt = StageOptimizer::new(&[&w], Mitigation::SpecTrain.stage_config(4, 2), hp());
        opt.step(&mut [&mut w], &[&g]);
        let fw = opt.forward_weights(&[&w]).unwrap();
        let bw = opt.backward_weights(&[&w]).unwrap();
        // fwd horizon 6, bwd horizon 2; both along −η·v from w = 0.9.
        assert!((fw[0].as_slice()[0] - (0.9 - 0.1 * 6.0)).abs() < 1e-6);
        assert!((bw[0].as_slice()[0] - (0.9 - 0.1 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn grad_shrink_scales_update() {
        let mut w1 = Tensor::from_slice(&[1.0]);
        let mut w2 = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        let mit = Mitigation::GradShrink { factor: 0.5 };
        // delay 2 → grad scale 0.25.
        let mut opt = StageOptimizer::new(&[&w1], mit.stage_config(2, 0), hp());
        opt.step(&mut [&mut w1], &[&g]);
        let mut plain = StageOptimizer::new(&[&w2], Mitigation::None.stage_config(2, 0), hp());
        let g_scaled = Tensor::from_slice(&[0.25]);
        plain.step(&mut [&mut w2], &[&g_scaled]);
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn single_deferred_accumulation_matches_step_bitwise() {
        let mut w1 = Tensor::from_slice(&[1.0, 2.0]);
        let mut w2 = w1.clone();
        let g = Tensor::from_slice(&[0.5, -0.2]);
        let mut direct = StageOptimizer::new(&[&w1], Mitigation::scd().stage_config(3, 0), hp());
        let mut deferred = StageOptimizer::new(&[&w2], Mitigation::scd().stage_config(3, 0), hp());
        for _ in 0..4 {
            direct.step(&mut [&mut w1], &[&g]);
            deferred.accumulate_deferred(&[&g]);
            assert!(deferred.has_deferred());
            deferred.step_deferred(&mut [&mut w2]);
            assert!(!deferred.has_deferred());
        }
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn deferred_accumulation_sums_microbatch_gradients() {
        let mut w1 = Tensor::from_slice(&[1.0]);
        let mut w2 = Tensor::from_slice(&[1.0]);
        let g1 = Tensor::from_slice(&[0.25]);
        let g2 = Tensor::from_slice(&[0.5]);
        let mut sum = g1.clone();
        pbp_tensor::ops::axpy(1.0, &g2, &mut sum);
        let mut direct = StageOptimizer::new(&[&w1], Mitigation::None.stage_config(0, 0), hp());
        direct.step(&mut [&mut w1], &[&sum]);
        let mut deferred = StageOptimizer::new(&[&w2], Mitigation::None.stage_config(0, 0), hp());
        deferred.accumulate_deferred(&[&g1]);
        deferred.accumulate_deferred(&[&g2]);
        deferred.step_deferred(&mut [&mut w2]);
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        // Both LWP forms: velocity (no prev buffer) and weight-difference
        // (prev buffer must round-trip too).
        for mit in [Mitigation::lwpv_scd(), Mitigation::lwpw_scd()] {
            let mut w = Tensor::from_slice(&[1.0, -2.0, 0.5]);
            let g = Tensor::from_slice(&[0.3, -0.1, 0.7]);
            let mut opt = StageOptimizer::new(&[&w], mit.stage_config(3, 0), hp());
            for _ in 0..4 {
                opt.step(&mut [&mut w], &[&g]);
            }

            let mut writer = pbp_snapshot::StateWriter::new();
            opt.write_state(&mut writer);
            let bytes = writer.into_bytes();

            let mut w2 = w.clone();
            let mut restored = StageOptimizer::new(&[&w2], mit.stage_config(3, 0), hp());
            let mut reader = pbp_snapshot::StateReader::new(&bytes);
            restored.read_state(&mut reader).unwrap();
            reader.finish().unwrap();

            // Same state, same inputs → bit-identical trajectories,
            // including the predicted forward weights.
            for _ in 0..3 {
                let fw_a = opt.forward_weights(&[&w]);
                let fw_b = restored.forward_weights(&[&w2]);
                match (&fw_a, &fw_b) {
                    (Some(a), Some(b)) => assert_eq!(a[0].as_slice(), b[0].as_slice()),
                    (None, None) => {}
                    _ => panic!("prediction presence diverged"),
                }
                opt.step(&mut [&mut w], &[&g]);
                restored.step(&mut [&mut w2], &[&g]);
                assert_eq!(w.as_slice(), w2.as_slice());
            }
        }
    }

    #[test]
    fn snapshot_rejects_layout_mismatch() {
        let w = Tensor::from_slice(&[1.0, 2.0]);
        let opt = StageOptimizer::new(&[&w], Mitigation::None.stage_config(1, 0), hp());
        let mut writer = pbp_snapshot::StateWriter::new();
        opt.write_state(&mut writer);
        let bytes = writer.into_bytes();

        let other = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let mut wrong = StageOptimizer::new(&[&other], Mitigation::None.stage_config(1, 0), hp());
        let mut reader = pbp_snapshot::StateReader::new(&bytes);
        let err = wrong.read_state(&mut reader).unwrap_err();
        assert!(
            matches!(err, pbp_snapshot::SnapshotError::Mismatch(_)),
            "{err}"
        );
    }
}
