//! SGD with (heavy-ball or Nesterov) momentum.

use crate::Hyperparams;
use pbp_snapshot::{SnapshotError, Snapshottable, StateReader, StateWriter};
use pbp_tensor::Tensor;

/// Velocity state for SGD with momentum over a list of parameter tensors
/// (Eqs. 7-8 of the paper):
///
/// ```text
/// v ← m·v + g
/// w ← w − η·v
/// ```
#[derive(Debug, Clone)]
pub struct SgdmState {
    velocity: Vec<Tensor>,
}

impl SgdmState {
    /// Creates zeroed velocity matching the given parameter shapes.
    pub fn new(params: &[&Tensor]) -> Self {
        SgdmState {
            velocity: params.iter().map(|p| Tensor::zeros(p.shape())).collect(),
        }
    }

    /// Borrows the velocity tensors.
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Standard heavy-ball update: `v ← m·v + g; w ← w − η·v`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor lists disagree with the state layout.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor], hp: Hyperparams) {
        self.step_with_spike(params, grads, hp, 1.0, 0.0);
    }

    /// Nesterov update: `v ← m·v + g; w ← w − η·(m·v + g)`.
    ///
    /// Note `m·v_{t+1} + g_t` is spike compensation with `a = m, b = 1` —
    /// for a delay of one, SCD *is* Nesterov momentum (Section 3.5).
    ///
    /// # Panics
    ///
    /// Panics if the tensor lists disagree with the state layout.
    pub fn step_nesterov(
        &mut self,
        params: &mut [&mut Tensor],
        grads: &[&Tensor],
        hp: Hyperparams,
    ) {
        self.step_with_spike(params, grads, hp, hp.momentum, 1.0);
    }

    /// Generalized spike-compensated update (Eqs. 10-12):
    ///
    /// ```text
    /// v ← m·v + g
    /// w ← w − η·(a·v + b·g)
    /// ```
    ///
    /// `a = 1, b = 0` recovers plain SGDM.
    ///
    /// # Panics
    ///
    /// Panics if the tensor lists disagree with the state layout.
    pub fn step_with_spike(
        &mut self,
        params: &mut [&mut Tensor],
        grads: &[&Tensor],
        hp: Hyperparams,
        a: f32,
        b: f32,
    ) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "param/velocity layout mismatch"
        );
        assert_eq!(
            grads.len(),
            self.velocity.len(),
            "grad/velocity layout mismatch"
        );
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            debug_assert_eq!(p.shape(), v.shape());
            debug_assert_eq!(g.shape(), v.shape());
            let vs = v.as_mut_slice();
            let gs = g.as_slice();
            let ps = p.as_mut_slice();
            for i in 0..vs.len() {
                vs[i] = hp.momentum * vs[i] + gs[i];
                ps[i] -= hp.lr * (a * vs[i] + b * gs[i]);
            }
        }
    }

    /// Resets the velocity to zero.
    pub fn reset(&mut self) {
        for v in &mut self.velocity {
            v.fill(0.0);
        }
    }
}

impl Snapshottable for SgdmState {
    fn write_state(&self, w: &mut StateWriter) {
        w.put_tensor_list(&self.velocity);
    }

    fn read_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let mut dst: Vec<&mut Tensor> = self.velocity.iter_mut().collect();
        r.take_tensors_into(&mut dst, "sgdm velocity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Tensor, Tensor) {
        (
            Tensor::from_slice(&[1.0, 2.0]),
            Tensor::from_slice(&[0.5, -0.5]),
        )
    }

    #[test]
    fn single_step_matches_hand_computation() {
        let (mut w, g) = setup();
        let mut state = SgdmState::new(&[&w]);
        let hp = Hyperparams::new(0.1, 0.9);
        state.step(&mut [&mut w], &[&g], hp);
        // v = g; w -= 0.1 * g
        assert!((w.as_slice()[0] - (1.0 - 0.05)).abs() < 1e-6);
        assert!((w.as_slice()[1] - (2.0 + 0.05)).abs() < 1e-6);
        // Second step accumulates momentum: v = 0.9 g + g = 1.9 g.
        state.step(&mut [&mut w], &[&g], hp);
        assert!((w.as_slice()[0] - (0.95 - 0.1 * 1.9 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn spike_with_identity_coeffs_equals_plain_sgdm() {
        let (w0, g) = setup();
        let hp = Hyperparams::new(0.05, 0.8);
        let mut w1 = w0.clone();
        let mut s1 = SgdmState::new(&[&w1]);
        let mut w2 = w0.clone();
        let mut s2 = SgdmState::new(&[&w2]);
        for _ in 0..5 {
            s1.step(&mut [&mut w1], &[&g], hp);
            s2.step_with_spike(&mut [&mut w2], &[&g], hp, 1.0, 0.0);
        }
        assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn nesterov_differs_from_heavy_ball_but_same_fixed_point_drift() {
        let (w0, g) = setup();
        let hp = Hyperparams::new(0.1, 0.9);
        let mut w1 = w0.clone();
        let mut s1 = SgdmState::new(&[&w1]);
        let mut w2 = w0.clone();
        let mut s2 = SgdmState::new(&[&w2]);
        s1.step(&mut [&mut w1], &[&g], hp);
        s2.step_nesterov(&mut [&mut w2], &[&g], hp);
        // First step: heavy-ball moves by ηg, Nesterov by η(1+m)g.
        assert!(
            (w0.as_slice()[0] - w2.as_slice()[0]) / (w0.as_slice()[0] - w1.as_slice()[0]) > 1.5
        );
    }

    #[test]
    fn reset_zeroes_velocity() {
        let (mut w, g) = setup();
        let mut state = SgdmState::new(&[&w]);
        state.step(&mut [&mut w], &[&g], Hyperparams::new(0.1, 0.9));
        assert!(state.velocity()[0].norm() > 0.0);
        state.reset();
        assert_eq!(state.velocity()[0].norm(), 0.0);
    }
}
