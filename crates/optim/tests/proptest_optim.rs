//! Property-based tests for the optimizer and mitigation invariants the
//! paper's analysis relies on.

use pbp_optim::{
    predict_velocity_form, predict_weight_form, scale_hyperparams, Hyperparams, Mitigation,
    SgdmState, SpikeCoeffs, StageOptimizer,
};
use pbp_tensor::Tensor;
use proptest::prelude::*;

fn grads_strategy(steps: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, dim), steps)
}

proptest! {
    #[test]
    fn scd_total_contribution_matches_plain_momentum(
        m in 0.0f32..0.995,
        d in 0usize..32,
    ) {
        // Section 3.2: SC redistributes each gradient's contribution over
        // time without changing its total a/(1−m) + b == 1/(1−m).
        let c = SpikeCoeffs::scd(m, d as f32);
        let total = c.total_contribution(m);
        let expected = 1.0 / (1.0 - m);
        prop_assert!((total - expected).abs() < 1e-2 * expected, "{total} vs {expected}");
    }

    #[test]
    fn scd_with_zero_delay_is_identity(m in 0.0f32..0.9999) {
        prop_assert_eq!(SpikeCoeffs::scd(m, 0.0), SpikeCoeffs::identity());
    }

    #[test]
    fn spike_zero_delay_trajectory_matches_sgdm(
        grads in grads_strategy(10, 3),
        lr in 0.001f32..0.2,
        m in 0.0f32..0.99,
    ) {
        let hp = Hyperparams::new(lr, m);
        let mut w1 = Tensor::from_slice(&[0.3, -0.7, 1.1]);
        let mut w2 = w1.clone();
        let mut plain = SgdmState::new(&[&w1]);
        let mut opt = StageOptimizer::new(&[&w2], Mitigation::scd().stage_config(0, 0), hp);
        for g in &grads {
            let gt = Tensor::from_slice(g);
            plain.step(&mut [&mut w1], &[&gt], hp);
            opt.step(&mut [&mut w2], &[&gt]);
        }
        prop_assert_eq!(w1.as_slice(), w2.as_slice());
    }

    #[test]
    fn lwp_forms_coincide_for_plain_sgdm(
        grads in grads_strategy(8, 2),
        lr in 0.001f32..0.1,
        m in 0.0f32..0.99,
        horizon in 0.0f32..20.0,
    ) {
        // Eqs. 18 and 19 are equivalent for unmodified SGDM, for any
        // gradient sequence and horizon.
        let hp = Hyperparams::new(lr, m);
        let mut w = Tensor::from_slice(&[1.0, -1.0]);
        let mut state = SgdmState::new(&[&w]);
        let mut prev = w.clone();
        for g in &grads {
            let gt = Tensor::from_slice(g);
            prev = w.clone();
            state.step(&mut [&mut w], &[&gt], hp);
        }
        let via_v = predict_velocity_form(&[&w], state.velocity(), lr, horizon);
        let via_w = predict_weight_form(&[&w], &[prev], horizon);
        for (a, b) in via_v[0].as_slice().iter().zip(via_w[0].as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn scaling_preserves_per_sample_contribution(
        lr in 0.01f32..0.5,
        m in 0.1f32..0.99,
        n_ref in 2usize..256,
        n_new in 1usize..256,
    ) {
        // Eq. 9: η/((1−m)·N) — the long-run weight displacement per sample
        // — is invariant under the scaling.
        let r = Hyperparams::new(lr, m);
        let s = scale_hyperparams(r, n_ref, n_new);
        let c_ref = r.lr as f64 / ((1.0 - r.momentum as f64) * n_ref as f64);
        let c_new = s.lr as f64 / ((1.0 - s.momentum as f64) * n_new as f64);
        prop_assert!((c_ref - c_new).abs() < 1e-4 * c_ref, "{c_ref} vs {c_new}");
    }

    #[test]
    fn scaling_preserves_momentum_decay_per_sample(
        m in 0.1f32..0.99,
        n_ref in 1usize..128,
        n_new in 1usize..128,
    ) {
        // m_new^(1/N_new) == m_ref^(1/N_ref). Tolerance is loose because
        // extreme scalings (e.g. m = 0.1 to batch 43 ⇒ m_new ≈ 1e-43) lose
        // f32 precision in the round trip.
        let r = Hyperparams::new(0.1, m);
        let s = scale_hyperparams(r, n_ref, n_new);
        // Skip regimes where the scaled momentum underflows f32 entirely
        // (e.g. m = 0.1 scaled from batch 1 to batch 45 ⇒ m_new = 1e-45).
        prop_assume!(s.momentum as f64 > 1e-20);
        let d_ref = (r.momentum as f64).powf(1.0 / n_ref as f64);
        let d_new = (s.momentum as f64).powf(1.0 / n_new as f64);
        prop_assert!((d_ref - d_new).abs() < 2e-4, "{d_ref} vs {d_new}");
    }

    #[test]
    fn scaling_round_trips(lr in 0.01f32..0.5, m in 0.1f32..0.99, n in 1usize..200) {
        let r = Hyperparams::new(lr, m);
        let down = scale_hyperparams(r, 128, n);
        let back = scale_hyperparams(down, n, 128);
        prop_assert!((back.lr - r.lr).abs() < 1e-4 * r.lr);
        prop_assert!((back.momentum - r.momentum).abs() < 1e-5);
    }

    #[test]
    fn gradient_shrink_never_increases_update_magnitude(
        g in proptest::collection::vec(-1.0f32..1.0, 4),
        factor in 0.1f32..1.0,
        d in 0usize..16,
    ) {
        let hp = Hyperparams::new(0.05, 0.9);
        let mit = Mitigation::GradShrink { factor };
        let mut w_shrunk = Tensor::from_slice(&[0.0, 0.0, 0.0, 0.0]);
        let mut w_plain = w_shrunk.clone();
        let gt = Tensor::from_slice(&g);
        let mut a = StageOptimizer::new(&[&w_shrunk], mit.stage_config(d, 0), hp);
        let mut b = StageOptimizer::new(&[&w_plain], Mitigation::None.stage_config(d, 0), hp);
        a.step(&mut [&mut w_shrunk], &[&gt]);
        b.step(&mut [&mut w_plain], &[&gt]);
        prop_assert!(w_shrunk.norm() <= w_plain.norm() + 1e-9);
    }

    #[test]
    fn spectrain_horizon_gap_is_the_delay(d in 0usize..64, s in 0usize..64) {
        let cfg = Mitigation::SpecTrain.stage_config(d, s);
        prop_assert_eq!((cfg.fwd_horizon - cfg.bwd_horizon) as usize, d);
    }
}
