//! # pbp-data
//!
//! Deterministic synthetic datasets standing in for CIFAR-10 and ImageNet
//! in the reproduction of *"Pipelined Backpropagation at Scale"* (Kosson et
//! al., MLSYS 2021).
//!
//! The paper's experiments measure how pipelined backpropagation's gradient
//! delay degrades final accuracy relative to SGDM, and how Spike
//! Compensation / Linear Weight Prediction recover it. That mechanism —
//! parameter drift over the delay window interacting with the curvature of
//! the loss surface — is exercised by any non-trivial image-classification
//! task, so real CIFAR/ImageNet data (gigabytes, impractical here) is
//! replaced by seeded class-conditional generative processes:
//!
//! * [`SyntheticImages`] — each class has a random smooth prototype image;
//!   samples are affine-jittered, contrast-scaled, noisy renderings of
//!   their class prototype. Difficulty is controlled by noise, jitter and
//!   the number of classes.
//! * [`spirals`] — the classic two-dimensional K-spiral task for cheap
//!   optimizer experiments.
//!
//! All generation is deterministic given a seed, so each training method in
//! a comparison sees byte-identical data.

pub mod augment;
mod images;
mod spiral;

pub use images::{DatasetSpec, SyntheticImages};
pub use spiral::{blobs, spirals};

use pbp_tensor::Tensor;

/// A labelled classification dataset kept fully in memory.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample tensors (each `[C, H, W]` or `[features]`).
    samples: Vec<Tensor>,
    /// Class label per sample.
    labels: Vec<usize>,
    /// Number of classes.
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from parallel sample/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or a label is out of range.
    pub fn new(samples: Vec<Tensor>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            samples,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrows sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&Tensor, usize) {
        (&self.samples[i], self.labels[i])
    }

    /// Returns a batched tensor `[n, ...sample shape]` for the given
    /// indices, plus the labels.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let sample_shape = self.samples[indices[0]].shape().to_vec();
        let sample_len = self.samples[indices[0]].len();
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&sample_shape);
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.samples[i].as_slice());
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, &shape).expect("consistent sample shapes"),
            labels,
        )
    }

    /// A deterministic shuffled index order for epoch `epoch`.
    pub fn epoch_order(&self, seed: u64, epoch: usize) -> Vec<usize> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        order.shuffle(&mut rng);
        order
    }

    /// Splits into (train, validation) datasets, validation taking
    /// `val_fraction` of the samples (deterministic tail split; generation
    /// is already i.i.d.).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < val_fraction < 1.0`.
    pub fn split(mut self, val_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            val_fraction > 0.0 && val_fraction < 1.0,
            "val fraction must be in (0, 1)"
        );
        let val_len = ((self.len() as f64) * val_fraction).round() as usize;
        let train_len = self.len() - val_len;
        let val_samples = self.samples.split_off(train_len);
        let val_labels = self.labels.split_off(train_len);
        let classes = self.num_classes;
        (
            Dataset::new(self.samples, self.labels, classes),
            Dataset::new(val_samples, val_labels, classes),
        )
    }
}

/// Position of a deterministic training stream.
///
/// [`Dataset::epoch_order`] is a pure function of `(seed, epoch)`, so the
/// entire data-stream RNG state reduces to this cursor: the seed, the
/// epoch, and how many samples of the epoch's order have been consumed.
/// Snapshots store the cursor; resuming recomputes the order and skips
/// `pos` samples, landing on the exact next sample the interrupted run
/// would have drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCursor {
    /// Run-level shuffle seed.
    pub seed: u64,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Samples of this epoch already consumed.
    pub pos: usize,
}

impl StreamCursor {
    /// Cursor at the start of training.
    pub fn start(seed: u64) -> Self {
        StreamCursor {
            seed,
            epoch: 0,
            pos: 0,
        }
    }

    /// The shuffled index order for the cursor's epoch.
    pub fn order(&self, data: &Dataset) -> Vec<usize> {
        data.epoch_order(self.seed, self.epoch)
    }
}

impl pbp_snapshot::Snapshottable for StreamCursor {
    fn write_state(&self, w: &mut pbp_snapshot::StateWriter) {
        w.put_u64(self.seed);
        w.put_usize(self.epoch);
        w.put_usize(self.pos);
    }

    fn read_state(
        &mut self,
        r: &mut pbp_snapshot::StateReader<'_>,
    ) -> Result<(), pbp_snapshot::SnapshotError> {
        self.seed = r.take_u64()?;
        self.epoch = r.take_usize()?;
        self.pos = r.take_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let samples = (0..10).map(|i| Tensor::full(&[2], i as f32)).collect();
        let labels = (0..10).map(|i| i % 2).collect();
        Dataset::new(samples, labels, 2)
    }

    #[test]
    fn batch_stacks_samples() {
        let d = tiny();
        let (x, y) = d.batch(&[1, 3]);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(x.as_slice(), &[1.0, 1.0, 3.0, 3.0]);
        assert_eq!(y, vec![1, 1]);
    }

    #[test]
    fn epoch_order_is_deterministic_and_a_permutation() {
        let d = tiny();
        let a = d.epoch_order(7, 0);
        let b = d.epoch_order(7, 0);
        assert_eq!(a, b);
        let c = d.epoch_order(7, 1);
        assert_ne!(a, c, "different epochs should shuffle differently");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_partitions_samples() {
        let d = tiny();
        let (train, val) = d.split(0.2);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        assert_eq!(train.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        Dataset::new(vec![Tensor::zeros(&[1])], vec![5], 2);
    }

    #[test]
    fn stream_cursor_round_trips_and_resumes_the_order() {
        use pbp_snapshot::Snapshottable;
        let d = tiny();
        let cursor = StreamCursor {
            seed: 42,
            epoch: 3,
            pos: 6,
        };
        let mut w = pbp_snapshot::StateWriter::new();
        cursor.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = StreamCursor::start(0);
        let mut r = pbp_snapshot::StateReader::new(&bytes);
        restored.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, cursor);
        // The remaining stream is exactly the uninterrupted order's tail.
        let full = d.epoch_order(42, 3);
        assert_eq!(restored.order(&d)[restored.pos..], full[6..]);
    }
}
