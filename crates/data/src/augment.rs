//! Standard CIFAR-style data augmentation: pad-and-random-crop plus random
//! horizontal flip (the He et al. 2016a preprocessing the paper adopts).

use pbp_tensor::Tensor;
use rand::Rng;

/// Zero-pads an image `[C, H, W]` by `pad` pixels on every side.
///
/// # Panics
///
/// Panics if `x` is not rank 3.
pub fn pad(x: &Tensor, padding: usize) -> Tensor {
    assert_eq!(x.rank(), 3, "pad expects [C, H, W]");
    let [c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2]];
    let (nh, nw) = (h + 2 * padding, w + 2 * padding);
    let mut out = Tensor::zeros(&[c, nh, nw]);
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for ci in 0..c {
        for i in 0..h {
            let src = (ci * h + i) * w;
            let dst = (ci * nh + i + padding) * nw + padding;
            os[dst..dst + w].copy_from_slice(&xs[src..src + w]);
        }
    }
    out
}

/// Crops a `[C, H, W]` image to `size × size` starting at `(top, left)`.
///
/// # Panics
///
/// Panics if the crop window exceeds the image.
pub fn crop(x: &Tensor, top: usize, left: usize, size: usize) -> Tensor {
    assert_eq!(x.rank(), 3, "crop expects [C, H, W]");
    let [c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2]];
    assert!(
        top + size <= h && left + size <= w,
        "crop window out of bounds"
    );
    let mut out = Tensor::zeros(&[c, size, size]);
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for ci in 0..c {
        for i in 0..size {
            let src = (ci * h + top + i) * w + left;
            let dst = (ci * size + i) * size;
            os[dst..dst + size].copy_from_slice(&xs[src..src + size]);
        }
    }
    out
}

/// Mirrors a `[C, H, W]` image horizontally.
///
/// # Panics
///
/// Panics if `x` is not rank 3.
pub fn hflip(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 3, "hflip expects [C, H, W]");
    let [c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2]];
    let mut out = Tensor::zeros(&[c, h, w]);
    let xs = x.as_slice();
    let os = out.as_mut_slice();
    for ci in 0..c {
        for i in 0..h {
            for j in 0..w {
                os[(ci * h + i) * w + j] = xs[(ci * h + i) * w + (w - 1 - j)];
            }
        }
    }
    out
}

/// The full CIFAR recipe: pad by `padding`, crop back to the original size
/// at a random offset, flip horizontally with probability ½.
///
/// # Panics
///
/// Panics if `x` is not rank 3 or not square.
pub fn random_crop_flip(x: &Tensor, padding: usize, rng: &mut impl Rng) -> Tensor {
    assert_eq!(x.rank(), 3, "augment expects [C, H, W]");
    let size = x.shape()[1];
    assert_eq!(size, x.shape()[2], "augment expects square images");
    let padded = pad(x, padding);
    let top = rng.gen_range(0..=2 * padding);
    let left = rng.gen_range(0..=2 * padding);
    let cropped = crop(&padded, top, left, size);
    if rng.gen::<bool>() {
        hflip(&cropped)
    } else {
        cropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn img() -> Tensor {
        Tensor::from_fn(&[1, 3, 3], |i| i as f32)
    }

    #[test]
    fn pad_places_image_in_center() {
        let p = pad(&img(), 1);
        assert_eq!(p.shape(), &[1, 5, 5]);
        assert_eq!(p.at(&[0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 1, 1]), 0.0 /* original (0,0) */);
        assert_eq!(p.at(&[0, 2, 2]), 4.0 /* original (1,1) */);
    }

    #[test]
    fn center_crop_of_padded_recovers_original() {
        let x = img();
        let back = crop(&pad(&x, 2), 2, 2, 3);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn hflip_is_involutive() {
        let x = img();
        assert_eq!(hflip(&hflip(&x)).as_slice(), x.as_slice());
        assert_eq!(hflip(&x).at(&[0, 0, 0]), x.at(&[0, 0, 2]));
    }

    #[test]
    fn random_crop_flip_preserves_shape_and_mass_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = img();
        for _ in 0..20 {
            let a = random_crop_flip(&x, 1, &mut rng);
            assert_eq!(a.shape(), x.shape());
            // Cropping can only drop pixels; the sum never exceeds the
            // original's (all entries non-negative here).
            assert!(a.sum() <= x.sum() + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_checks_bounds() {
        crop(&img(), 2, 2, 3);
    }
}
