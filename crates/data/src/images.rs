//! Class-conditional synthetic image generator.

use crate::Dataset;
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic image dataset.
///
/// Each class gets a random smooth prototype (a low-frequency random
/// field); samples are circularly shifted, contrast/brightness-jittered,
/// noisy renderings of their class prototype. Harder datasets use more
/// noise, larger shifts and more classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Square image side length.
    pub size: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise: f32,
    /// Maximum circular shift in pixels (both axes).
    pub max_shift: usize,
    /// Range of multiplicative contrast jitter around 1.0.
    pub contrast_jitter: f32,
}

impl DatasetSpec {
    /// CIFAR-10 stand-in: 10 classes of `channels=3` images.
    ///
    /// `size` is 32 for VGG experiments (five 2× pools) and 16 for ResNet
    /// experiments where compute matters more.
    pub fn cifar_sim(size: usize) -> Self {
        DatasetSpec {
            num_classes: 10,
            channels: 3,
            size,
            noise: 0.35,
            max_shift: size / 8,
            contrast_jitter: 0.25,
        }
    }

    /// ImageNet stand-in: more classes, larger shifts, more noise — a
    /// harder task that leaves headroom between methods, as ImageNet does
    /// relative to CIFAR in the paper.
    pub fn imagenet_sim(size: usize) -> Self {
        DatasetSpec {
            num_classes: 20,
            channels: 3,
            size,
            noise: 0.5,
            max_shift: size / 5,
            contrast_jitter: 0.4,
        }
    }
}

/// A generator of synthetic labelled images (see [`DatasetSpec`]).
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    spec: DatasetSpec,
    /// Per-class prototype images, `[C, size, size]` each.
    prototypes: Vec<Tensor>,
    seed: u64,
}

impl SyntheticImages {
    /// Creates the generator, deterministically drawing one prototype per
    /// class from `seed`.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes = (0..spec.num_classes)
            .map(|_| smooth_field(spec.channels, spec.size, &mut rng))
            .collect();
        SyntheticImages {
            spec,
            prototypes,
            seed,
        }
    }

    /// The dataset spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Generates `n` labelled samples (classes cycled round-robin so every
    /// class is equally represented), deterministic in `(seed, salt)`.
    pub fn generate(&self, n: usize, salt: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0xD134_2543_DE82_EF95));
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.spec.num_classes;
            samples.push(self.render(class, &mut rng));
            labels.push(class);
        }
        Dataset::new(samples, labels, self.spec.num_classes)
    }

    /// Renders one noisy sample of `class`.
    fn render(&self, class: usize, rng: &mut StdRng) -> Tensor {
        let spec = &self.spec;
        let s = spec.size;
        let proto = &self.prototypes[class];
        let dx = if spec.max_shift > 0 {
            rng.gen_range(0..=2 * spec.max_shift) as isize - spec.max_shift as isize
        } else {
            0
        };
        let dy = if spec.max_shift > 0 {
            rng.gen_range(0..=2 * spec.max_shift) as isize - spec.max_shift as isize
        } else {
            0
        };
        let contrast = 1.0 + rng.gen_range(-spec.contrast_jitter..=spec.contrast_jitter);
        let brightness = rng.gen_range(-spec.contrast_jitter..=spec.contrast_jitter) * 0.5;
        let ps = proto.as_slice();
        let mut out = Tensor::zeros(&[spec.channels, s, s]);
        {
            let os = out.as_mut_slice();
            for c in 0..spec.channels {
                for i in 0..s {
                    // Circular shift keeps all pixels informative.
                    let si = (i as isize + dy).rem_euclid(s as isize) as usize;
                    for j in 0..s {
                        let sj = (j as isize + dx).rem_euclid(s as isize) as usize;
                        let noise = gaussian(rng) * spec.noise;
                        os[(c * s + i) * s + j] =
                            contrast * ps[(c * s + si) * s + sj] + brightness + noise;
                    }
                }
            }
        }
        out
    }
}

/// Standard normal sample via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// A smooth random field: a coarse random grid bilinearly upsampled, so
/// prototypes have low-frequency, conv-learnable structure.
fn smooth_field(channels: usize, size: usize, rng: &mut StdRng) -> Tensor {
    let coarse = (size / 4).max(2);
    let mut out = Tensor::zeros(&[channels, size, size]);
    {
        let os = out.as_mut_slice();
        for c in 0..channels {
            let grid: Vec<f32> = (0..coarse * coarse)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            for i in 0..size {
                let fy = i as f32 / size as f32 * (coarse - 1) as f32;
                let (y0, ty) = (fy as usize, fy.fract());
                let y1 = (y0 + 1).min(coarse - 1);
                for j in 0..size {
                    let fx = j as f32 / size as f32 * (coarse - 1) as f32;
                    let (x0, tx) = (fx as usize, fx.fract());
                    let x1 = (x0 + 1).min(coarse - 1);
                    let v = grid[y0 * coarse + x0] * (1.0 - ty) * (1.0 - tx)
                        + grid[y0 * coarse + x1] * (1.0 - ty) * tx
                        + grid[y1 * coarse + x0] * ty * (1.0 - tx)
                        + grid[y1 * coarse + x1] * ty * tx;
                    os[(c * size + i) * size + j] = v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = SyntheticImages::new(DatasetSpec::cifar_sim(16), 42);
        let a = gen.generate(20, 0);
        let b = gen.generate(20, 0);
        for i in 0..20 {
            assert_eq!(a.sample(i).0.as_slice(), b.sample(i).0.as_slice());
            assert_eq!(a.sample(i).1, b.sample(i).1);
        }
        let c = gen.generate(20, 1);
        assert_ne!(a.sample(0).0.as_slice(), c.sample(0).0.as_slice());
    }

    #[test]
    fn classes_are_balanced() {
        let gen = SyntheticImages::new(DatasetSpec::cifar_sim(16), 1);
        let d = gen.generate(100, 0);
        let mut counts = [0usize; 10];
        for i in 0..d.len() {
            counts[d.sample(i).1] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn samples_have_expected_shape_and_are_finite() {
        let spec = DatasetSpec::imagenet_sim(24);
        let gen = SyntheticImages::new(spec, 3);
        let d = gen.generate(5, 0);
        for i in 0..5 {
            let (x, _) = d.sample(i);
            assert_eq!(x.shape(), &[3, 24, 24]);
            assert!(x.all_finite());
        }
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let gen = SyntheticImages::new(DatasetSpec::cifar_sim(16), 5);
        let d = gen.generate(10, 0);
        let (a, la) = d.sample(0);
        let (b, lb) = d.sample(1);
        assert_ne!(la, lb);
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1.0, "class prototypes should differ, diff={diff}");
    }

    #[test]
    fn task_is_learnable_by_nearest_prototype() {
        // Sanity: the clean prototypes should classify noisy samples well
        // above chance — otherwise the NN experiments are hopeless.
        let gen = SyntheticImages::new(DatasetSpec::cifar_sim(16), 7);
        let d = gen.generate(200, 0);
        let mut correct = 0;
        for i in 0..d.len() {
            let (x, label) = d.sample(i);
            let mut best = (f32::INFINITY, 0usize);
            for (k, p) in gen.prototypes.iter().enumerate() {
                let dist: f32 = x
                    .as_slice()
                    .iter()
                    .zip(p.as_slice())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.5, "nearest-prototype accuracy too low: {acc}");
    }
}
