//! The K-spiral 2-D classification task.

use crate::Dataset;
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the classic `k`-armed spiral dataset: `n` points per arm with
/// Gaussian angular noise. Features are 2-D `[x, y]` vectors.
///
/// Cheap and highly non-linear — useful for fast optimizer and delay
/// experiments that do not need convolutions.
///
/// # Panics
///
/// Panics if `k == 0` or `n == 0`.
pub fn spirals(k: usize, n: usize, noise: f32, seed: u64) -> Dataset {
    assert!(k > 0 && n > 0, "spirals needs k > 0 arms and n > 0 points");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(k * n);
    let mut labels = Vec::with_capacity(k * n);
    for i in 0..k * n {
        let arm = i % k;
        let t = rng.gen_range(0.0f32..1.0);
        let r = 0.1 + 0.9 * t;
        let theta = t * 3.0 * std::f32::consts::PI
            + arm as f32 * 2.0 * std::f32::consts::PI / k as f32
            + noise * gaussian(&mut rng);
        samples.push(Tensor::from_slice(&[r * theta.cos(), r * theta.sin()]));
        labels.push(arm);
    }
    Dataset::new(samples, labels, k)
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_k_times_n_points() {
        let d = spirals(3, 50, 0.1, 0);
        assert_eq!(d.len(), 150);
        assert_eq!(d.num_classes(), 3);
    }

    #[test]
    fn points_lie_in_unit_disk_roughly() {
        let d = spirals(2, 100, 0.0, 1);
        for i in 0..d.len() {
            let (x, _) = d.sample(i);
            let r = (x.as_slice()[0].powi(2) + x.as_slice()[1].powi(2)).sqrt();
            assert!(r <= 1.05, "radius {r}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spirals(2, 10, 0.1, 5);
        let b = spirals(2, 10, 0.1, 5);
        assert_eq!(a.sample(3).0.as_slice(), b.sample(3).0.as_slice());
    }
}

/// Generates `k` Gaussian clusters ("blobs") on a circle of radius 2 with
/// unit-ish spread `noise`. Linearly separable for small noise — the
/// cheapest sanity-check classification task in the crate.
///
/// # Panics
///
/// Panics if `k == 0` or `n == 0`.
pub fn blobs(k: usize, n: usize, noise: f32, seed: u64) -> Dataset {
    assert!(
        k > 0 && n > 0,
        "blobs needs k > 0 clusters and n > 0 points"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(k * n);
    let mut labels = Vec::with_capacity(k * n);
    for i in 0..k * n {
        let arm = i % k;
        let theta = arm as f32 * 2.0 * std::f32::consts::PI / k as f32;
        let cx = 2.0 * theta.cos();
        let cy = 2.0 * theta.sin();
        samples.push(Tensor::from_slice(&[
            cx + noise * gaussian(&mut rng),
            cy + noise * gaussian(&mut rng),
        ]));
        labels.push(arm);
    }
    Dataset::new(samples, labels, k)
}

#[cfg(test)]
mod blob_tests {
    use super::*;

    #[test]
    fn blobs_are_roughly_separable() {
        let d = blobs(4, 50, 0.3, 0);
        assert_eq!(d.len(), 200);
        // Nearest-centroid classification should be near perfect.
        let centers: Vec<(f32, f32)> = (0..4)
            .map(|k| {
                let theta = k as f32 * std::f32::consts::PI / 2.0;
                (2.0 * theta.cos(), 2.0 * theta.sin())
            })
            .collect();
        let mut correct = 0;
        for i in 0..d.len() {
            let (x, l) = d.sample(i);
            let (px, py) = (x.as_slice()[0], x.as_slice()[1]);
            let best = centers
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    let da = (px - a.1 .0).powi(2) + (py - a.1 .1).powi(2);
                    let db = (px - b.1 .0).powi(2) + (py - b.1 .1).powi(2);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap()
                .0;
            if best == l {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }
}
