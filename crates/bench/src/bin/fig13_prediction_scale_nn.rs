//! Figure 13 (Appendix E): the effect of the weight-prediction horizon
//! scale α (T = αD) on final loss and accuracy when training a network
//! with a uniform consistent delay.

use pbp_bench::{cifar_data, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, LwpForm, Mitigation};
use pbp_pipeline::{run_training, DelayedConfig, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let delay = 4usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let scales = [0.0f32, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0];

    println!("== Figure 13: prediction scale α sweep (uniform delay D={delay}, consistent) ==\n");
    let mut table = Table::new(["α (T = αD)", "final train loss", "val acc"]);
    for &alpha in &scales {
        let mut losses = Vec::new();
        let mut accs = Vec::new();
        let mitigation = if alpha == 0.0 {
            Mitigation::None
        } else {
            Mitigation::Lwp {
                form: LwpForm::Velocity,
                scale: alpha,
            }
        };
        let spec = EngineSpec::Delayed(
            DelayedConfig::consistent(delay, batch, LrSchedule::constant(hp))
                .with_mitigation(mitigation),
        );
        for seed in 0..budget.seeds as u64 {
            let mut rng = StdRng::seed_from_u64(4000 + seed);
            let mut engine = spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
            let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
            let report = run_training(engine.as_mut(), &train, &val, &run_config, &mut NoHooks);
            let last = report.records.last().expect("final epoch evaluated");
            losses.push(last.train_loss);
            accs.push(last.val_acc);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.row([
            format!("{alpha}"),
            format!("{:.4}", mean(&losses)),
            format!("{:.1}%", 100.0 * mean(&accs)),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Fig. 13): loss/accuracy improve from α = 0 up to α ≈ 2\n\
         ('overcompensation'), then flatten or degrade for large α — mirroring\n\
         the convex-quadratic curve of Figure 12."
    );
}
