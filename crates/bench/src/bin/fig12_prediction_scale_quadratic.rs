//! Figure 12 (Appendix E): convergence speed vs weight-prediction horizon
//! scale α (horizon T = αD) for a convex quadratic at several (κ, D).

use pbp_bench::Table;
use pbp_quadratic::{min_halflife, Method};

fn main() {
    let configs: [(f64, usize); 3] = [(1e3, 4), (1e3, 10), (1e5, 4)];
    let scales: Vec<f64> = (0..=10).map(|i| i as f64).collect();

    let mut headers = vec!["α (T = αD)".to_string()];
    for (k, d) in configs {
        headers.push(format!("κ=1e{:.0}, D={d}", k.log10()));
    }
    let mut table = Table::new(headers);
    for &alpha in &scales {
        let mut row = vec![format!("{alpha}")];
        for (kappa, d) in configs {
            let t = alpha * d as f64;
            let hl = min_halflife(&|_| Method::Lwp { t }, d, kappa);
            row.push(format!("{:.2}", hl.log10()));
        }
        table.row(row);
        eprint!(".");
    }
    eprintln!();
    println!("== Figure 12: log10 half-life vs prediction scale α ==\n");
    table.print();
    println!(
        "\nPaper check (Fig. 12): the minimum lies near α ≈ 2 (horizon T ≈ 2D)\n\
         for each (κ, D) — 'overcompensating' for the delay is optimal —\n\
         while α = 0 (no prediction) is worst."
    );
}
