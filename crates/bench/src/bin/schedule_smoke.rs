//! Schedule smoke test for the 1F1B and 2BP microbatch schedules: trains
//! both for a few updates on a small model through the shared
//! [`run_training`] loop, asserts every stage's measured effective-delay
//! histogram sits exactly on the contracted ⌈D_s/M⌉ bounded staleness
//! (Eq. 5 in update units), and asserts the 2BP split backward lands on
//! final weights bit-identical to 1F1B's fused backward. Exercised by
//! `scripts/check.sh`.

use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule};
use pbp_pipeline::{
    run_training, stage_delay, EngineSpec, NoHooks, RunConfig, ScheduledConfig, TrainEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 4;

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0x5C4E);
    mlp(&[2, 16, 8, 3], &mut rng)
}

fn run(
    spec: &EngineSpec,
    train: &pbp_data::Dataset,
    val: &pbp_data::Dataset,
) -> Box<dyn TrainEngine> {
    let mut engine = spec.build(fresh_net());
    let config = RunConfig::new(3, 11);
    let report = run_training(engine.as_mut(), train, val, &config, &mut NoHooks);
    eprintln!(
        "  {}: final val acc {:.1}%",
        report.label,
        100.0 * report.final_val_acc()
    );
    engine
}

fn main() {
    let data = pbp_data::blobs(3, 40, 0.4, 91);
    let (train, val) = data.split(0.25);
    let schedule = LrSchedule::constant(Hyperparams::new(0.05, 0.9));

    eprintln!("== schedule smoke (1F1B + 2BP, M={M}) ==");

    let spec_1f1b = EngineSpec::Scheduled(ScheduledConfig::one_f_one_b(M, schedule.clone()));
    let spec_2bp = EngineSpec::Scheduled(ScheduledConfig::two_bp(M, schedule));
    let engine_1f1b = run(&spec_1f1b, &train, &val);
    let engine_2bp = run(&spec_2bp, &train, &val);

    // Every stage's measured delay histogram must sit entirely on the
    // schedule's contracted staleness: ⌈D_s/M⌉ updates, D_s from Eq. 5.
    for (label, engine) in [("1F1B", &engine_1f1b), ("2BP", &engine_2bp)] {
        let metrics = engine.metrics();
        let num_stages = metrics.stages.len() + 1; // + loss stage
        for (s, stage) in metrics.stages.iter().enumerate() {
            let expected = stage_delay(s, num_stages).div_ceil(M);
            assert!(stage.updates > 0, "{label}: stage {s} never updated");
            let keys: Vec<usize> = stage.delay_hist.keys().copied().collect();
            assert_eq!(
                keys,
                vec![expected],
                "{label}: stage {s} delay histogram must sit on ceil(D_s/M)"
            );
        }
        eprintln!("  {label}: per-stage delays match ceil(D_s/{M}) exactly");
    }

    // 2BP only reorders *when* the weight-gradient halves run; the update
    // math is unchanged, so final weights match 1F1B bit-for-bit.
    let net_a = engine_1f1b.into_network();
    let net_b = engine_2bp.into_network();
    for s in 0..net_a.num_stages() {
        for (p, q) in net_a.stage(s).params().iter().zip(net_b.stage(s).params()) {
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "stage {s}: 2BP weights must be bit-identical to 1F1B"
                );
            }
        }
    }

    println!("schedule smoke PASS: 1F1B and 2BP delays on contract, 2BP ≡ 1F1B bitwise");
}
