//! Table 6 (Appendix H.5): velocity vs weight-difference forms of Linear
//! Weight Prediction when combined with Spike Compensation.

use pbp_bench::suite::{run_family_table, Budget, MethodSpec};
use pbp_bench::Family;
use pbp_nn::models::VggVariant;
use pbp_optim::{Hyperparams, Mitigation};

fn main() {
    let budget = Budget::new(1500, 300, 6, 2);
    println!(
        "== Table 6: LWPvD+SCD vs LWPwD+SCD ({} seeds) ==\n",
        budget.seeds
    );
    run_family_table(
        &[
            Family::Vgg(VggVariant::Vgg11),
            Family::ResNet(20),
            Family::ResNet(56),
            Family::ResNet(110),
        ],
        &[
            MethodSpec::Sgdm { batch: 32 },
            MethodSpec::pb(Mitigation::None),
            MethodSpec::pb(Mitigation::lwpv_scd()),
            MethodSpec::pb(Mitigation::lwpw_scd()),
        ],
        Hyperparams::new(0.1, 0.9),
        128,
        budget,
    );
    println!(
        "\nPaper check (Table 6): the velocity form LWPvD+SCD matches or beats\n\
         the weight-difference form, with the largest gap on the deepest\n\
         network — noisy single-sample gradients make the weight-difference\n\
         velocity estimate unreliable (Appendix H.5)."
    );
}
