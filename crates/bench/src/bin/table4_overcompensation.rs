//! Table 4 (Appendix E): overcompensating for the delay — LWP with a
//! doubled horizon (LWP2D) and SC with a doubled effective delay (SC2D).

use pbp_bench::suite::{run_family_table, Budget, MethodSpec};
use pbp_bench::Family;
use pbp_nn::models::VggVariant;
use pbp_optim::{Hyperparams, LwpForm, Mitigation};

fn main() {
    let budget = Budget::new(1500, 300, 6, 2);
    println!(
        "== Table 4: overcompensation ablation ({} seeds) ==\n",
        budget.seeds
    );
    run_family_table(
        &[
            Family::Vgg(VggVariant::Vgg11),
            Family::ResNet(20),
            Family::ResNet(56),
            Family::ResNet(110),
        ],
        &[
            MethodSpec::pb(Mitigation::None),
            MethodSpec::pb(Mitigation::lwpd()),
            MethodSpec::pb(Mitigation::Lwp {
                form: LwpForm::Velocity,
                scale: 2.0,
            }),
            MethodSpec::pb(Mitigation::scd()),
            MethodSpec::pb(Mitigation::Sc { scale: 2.0 }),
        ],
        Hyperparams::new(0.1, 0.9),
        128,
        budget,
    );
    println!(
        "\nPaper check (Table 4): doubling the horizon/effective delay usually\n\
         helps on shallow pipelines (overcompensation, cf. Figures 12-13) but\n\
         can destabilize the deepest network (RN110), where plain LWPD is safer."
    );
}
