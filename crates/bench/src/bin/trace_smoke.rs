//! CI smoke for the trace layer: a short traced 1F1B run must serialize
//! to schema-valid Chrome trace JSON (parsed back with the crate's own
//! parser), the virtual schedule diagrams must order their bubbles
//! fill&drain > 1F1B > PB, and the MFU report must be finite and nonzero.

use pbp_data::spirals;
use pbp_nn::models::mlp;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{
    schedule_bubble_fraction, MicrobatchSchedule, ScheduledConfig, ScheduledTrainer, TrainEngine,
};
use pbp_trace::json::Json;
use pbp_trace::mfu::{measure_peak_gflops, model_flops, MfuReport};
use pbp_trace::Tracer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let m = 4usize;
    let samples = 32usize;
    let mut rng = StdRng::seed_from_u64(3);
    let net = mlp(&[2, 16, 16, 3], &mut rng);
    let fwd_flops: u64 = (0..net.num_stages())
        .map(|s| net.stage(s).flops_per_sample())
        .sum();
    let data = spirals(3, 16, 0.05, 7);
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, m);
    let tracer = Tracer::new();
    let mut engine = ScheduledTrainer::new(
        net,
        ScheduledConfig::one_f_one_b(m, LrSchedule::constant(hp)),
    );
    engine.set_tracer(tracer.clone());
    let order: Vec<usize> = (0..samples).map(|i| i % data.len()).collect();
    let started = Instant::now();
    TrainEngine::train_range(&mut engine, &data, &order);
    let wall = started.elapsed().as_secs_f64();
    let trace = tracer.finish();
    assert!(trace.span_count() > 0, "traced run recorded no spans");

    // Round-trip the Chrome JSON through the crate's own parser and
    // check the trace-event schema Perfetto expects.
    let json = Json::parse(&trace.to_chrome_json()).expect("trace JSON parses");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let mut complete = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("event has ph");
        assert!(ev.get("pid").and_then(|p| p.as_f64()).is_some(), "pid");
        assert!(ev.get("name").is_some(), "name");
        match ph {
            "X" => {
                complete += 1;
                for key in ["tid", "ts", "dur"] {
                    assert!(ev.get(key).and_then(|v| v.as_f64()).is_some(), "X {key}");
                }
            }
            "i" => {
                assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some(), "i ts");
            }
            "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, trace.span_count(), "one X event per span");

    // Virtual schedule diagrams: the bubble ordering Figure 2 predicts.
    let (s, n) = (4usize, 32usize);
    let fd = schedule_bubble_fraction(&MicrobatchSchedule::FillDrain { update_size: 8 }, s, n);
    let ofob = schedule_bubble_fraction(
        &MicrobatchSchedule::OneFOneB {
            microbatches_per_update: 8,
        },
        s,
        n,
    );
    let pb = schedule_bubble_fraction(&MicrobatchSchedule::PipelinedBackprop, s, n);
    assert!(
        fd > ofob && ofob > pb && pb > 0.0 && fd < 1.0,
        "bubble ordering violated: {fd:.3} / {ofob:.3} / {pb:.3}"
    );

    let report = MfuReport::new(model_flops(fwd_flops, samples), wall, measure_peak_gflops());
    assert!(
        report.mfu.is_finite() && report.mfu > 0.0 && report.mfu <= 1.0,
        "MFU out of bounds: {report:?}"
    );

    println!(
        "PASS: {} spans schema-valid, bubbles {fd:.3} > {ofob:.3} > {pb:.3}, {}",
        trace.span_count(),
        report.summary("1F1B")
    );
}
