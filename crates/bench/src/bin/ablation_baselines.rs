//! Ablation: the paper's mitigations against the related-work baselines it
//! cites — gradient shrinking (Zhuang et al., 2019) and weight stashing —
//! plus the SCD/LWPD building blocks in isolation, on one mid-depth
//! network.

use pbp_bench::suite::{run_method, Budget, MethodSpec};
use pbp_bench::{cifar_data, Family, Table};
use pbp_optim::{Hyperparams, Mitigation};
use rand::rngs::StdRng;

fn main() {
    let budget = Budget::new(1500, 300, 6, 2);
    let family = Family::ResNet(32);
    let (train, val) = cifar_data(
        family.input_size(),
        budget.train_samples,
        budget.val_samples,
    );
    let reference = Hyperparams::new(0.1, 0.9);

    println!(
        "== Ablation: mitigation building blocks and related-work baselines ==\n\
         (ResNet32, {} stages, {} seeds)\n",
        family.stage_count(),
        budget.seeds
    );

    let methods = [
        MethodSpec::Sgdm { batch: 32 },
        MethodSpec::pb(Mitigation::None),
        MethodSpec::Pb {
            mitigation: Mitigation::None,
            stashing: true,
        },
        MethodSpec::pb(Mitigation::GradShrink { factor: 0.98 }),
        MethodSpec::pb(Mitigation::scd()),
        MethodSpec::pb(Mitigation::lwpd()),
        MethodSpec::pb(Mitigation::SpecTrain),
        MethodSpec::pb(Mitigation::lwpv_scd()),
    ];

    let mut table = Table::new(["method", "final val acc"]);
    let build = |rng: &mut StdRng| family.build(train.num_classes(), rng);
    for method in methods {
        let out = run_method(&build, &train, &val, method, reference, 128, budget);
        table.row([out.label.clone(), out.formatted()]);
        eprint!(".");
    }
    eprintln!();
    table.print();
    println!(
        "\nExpected ordering (paper Sections 3-4 and Appendices B-C):\n\
         combined LWPvD+SCD ≥ single mitigations > shrinking/stashing ≈ plain PB,\n\
         with SGDM as the reference ceiling."
    );
}
