//! Ablation (Discussion section): does Weight Standardization increase
//! delay tolerance? Compares conv+GN against WS-conv+GN under increasing
//! uniform gradient delay.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::models::{simple_cnn, simple_cnn_ws};
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{run_training, DelayedConfig, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let delays = [0usize, 4, 8, 16, 32];

    println!(
        "== Ablation: Weight Standardization and delay tolerance ({} seeds) ==\n",
        budget.seeds
    );
    let mut table = Table::new(["delay", "conv+GN", "WS-conv+GN"]);
    for &delay in &delays {
        let mut row = vec![delay.to_string()];
        for ws in [false, true] {
            let spec = EngineSpec::Delayed(DelayedConfig::consistent(
                delay,
                batch,
                LrSchedule::constant(hp),
            ));
            let mut accs = Vec::new();
            for seed in 0..budget.seeds as u64 {
                let mut rng = StdRng::seed_from_u64(9000 + seed);
                let net = if ws {
                    simple_cnn_ws(3, 12, 6, 10, &mut rng)
                } else {
                    simple_cnn(3, 12, 6, 10, &mut rng)
                };
                let mut engine = spec.build(net);
                let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
                let report = run_training(engine.as_mut(), &train, &val, &run_config, &mut NoHooks);
                accs.push(report.final_val_acc());
            }
            let (m, s) = mean_std(&accs);
            row.push(format!("{:.1}±{:.1}%", 100.0 * m, 100.0 * s));
            eprint!(".");
        }
        table.row(row);
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Discussion): \"the use of other small batch size\n\
         alternatives to BN such as … Weight Standardization … may boost delay\n\
         tolerance\" — the WS column should degrade more slowly with delay."
    );
}
