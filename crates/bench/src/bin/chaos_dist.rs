//! `chaos_dist`: network-chaos soak for the distributed runtime,
//! gating `scripts/check.sh` (set `PBP_BENCH_SMOKE=1` for the short
//! seeded variant).
//!
//! Three scenarios, every one asserting bit-identity with the
//! sequential [`ScheduledTrainer`] core — final weights bit-for-bit,
//! f64 loss sums, and Eq. 5 delay histograms:
//!
//! 1. **Randomized fault plans** — seeded [`NetFaultPlan::random`]
//!    schedules (drops, truncations, bit flips, duplicates, delays,
//!    partitions) over 4-rank PB and 1F1B runs on real Unix sockets,
//!    recovered by reconnect-with-replay alone.
//! 2. **Scripted partition** — an interior link goes dark mid-run in
//!    both directions; the session layer reconnects and replays the
//!    unacked window.
//! 3. **Single-rank kill** — this binary re-executes itself under the
//!    fine-grained supervisor (`pbp_dist::launch`), aborts one rank
//!    mid-run, and verifies the respawn-one/rewind-survivors arc from
//!    the final rank snapshots.

use pbp_data::{spirals, Dataset};
use pbp_dist::{
    env_abort_at, launch, rank_snapshot_path, run_rank, splice_owned_stages, DistError, LaunchSpec,
    LinkDir, LinkEndpoint, NetFaultKind, NetFaultPlan, NetFaultSpec, RankOutcome, RankRecovery,
    RankSnapshots, RankSpec, ReconnectPolicy, Topology, Transport, SECTION_DIST,
    SECTION_DIST_METRICS,
};
use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{
    EngineMetrics, MetricsRecorder, MicrobatchSchedule, ScheduledConfig, ScheduledTrainer,
    StageCounters, TrainEngine,
};
use pbp_snapshot::{SnapshotArchive, Snapshottable, StateReader};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::Duration;

const LAYERS: [usize; 5] = [2, 16, 12, 8, 3]; // 4 stages, one per rank
const WORLD: usize = 4;
const NET_SEED: u64 = 0xCA05;
const ORDER_SEED: u64 = 5;
const EPOCHS: usize = 2; // spirals(3,16,..) has 48 samples → 96 microbatches
const STALL: Duration = Duration::from_secs(10);

fn dataset() -> Dataset {
    spirals(3, 16, 0.05, 2)
}

fn schedule() -> LrSchedule {
    LrSchedule::constant(Hyperparams::new(0.05, 0.9))
}

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(NET_SEED);
    mlp(&LAYERS, &mut rng)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbp_chaos_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Baseline {
    net: Network,
    loss_sum: f64,
    metrics: EngineMetrics,
}

/// The single-process ground truth: same plan, same data order, loss
/// accumulated in the same per-microbatch f64 order the distributed
/// loss relay uses.
fn baseline(plan: MicrobatchSchedule) -> Baseline {
    let config = ScheduledConfig::new(plan, schedule());
    let mut trainer = ScheduledTrainer::new(fresh_net(), config);
    let data = dataset();
    let mut loss_sum = 0.0f64;
    for epoch in 0..EPOCHS {
        for &i in &data.epoch_order(ORDER_SEED, epoch) {
            let (x, label) = data.sample(i);
            loss_sum += trainer.train_sample(x, label) as f64;
        }
    }
    let metrics = trainer.metrics();
    Baseline {
        net: trainer.into_network(),
        loss_sum,
        metrics,
    }
}

/// Runs a 4-rank group as threads over real Unix sockets with the given
/// wire chaos, recovering through reconnect-with-replay only.
fn run_faulted(plan: MicrobatchSchedule, faults: &NetFaultPlan, tag: &str) -> Vec<RankOutcome> {
    let dir = scratch(tag);
    let transport = Transport::Unix { dir: dir.clone() };
    let topology = Topology::contiguous(LAYERS.len() - 1, WORLD).expect("valid partition");
    let total = EPOCHS * dataset().len();
    let mut handles = Vec::new();
    for rank in 0..WORLD {
        let spec = RankSpec {
            rank,
            topology: topology.clone(),
            plan,
            mitigation: Mitigation::None,
            weight_stashing: false,
            schedule: schedule(),
            seed: ORDER_SEED,
            total_microbatches: total,
            stall: STALL,
            snapshots: None,
            resume_at: 0,
            abort_after: None,
            recovery: RankRecovery {
                // One shared plan: each link end consumes its own
                // disjoint (link, direction) slice.
                net_faults: Some(faults.clone()),
                reconnect: Some(ReconnectPolicy {
                    deadline: Duration::from_secs(5),
                    backoff: Duration::from_millis(10),
                }),
                rewind: None,
                generation: 0,
            },
        };
        let transport = transport.clone();
        let data = dataset();
        handles.push(std::thread::spawn(move || {
            let down = (rank + 1 < WORLD)
                .then(|| LinkEndpoint::Listen(transport.listen(rank).expect("bind link")));
            let up = (rank > 0).then(|| LinkEndpoint::Dial {
                transport: transport.clone(),
                link: rank - 1,
            });
            run_rank(fresh_net(), &data, &spec, up, down, None).expect("rank run under chaos")
        }));
    }
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    outcomes
}

/// Stage `s`'s counters, taken from the rank that owns `s`.
fn merged_counters(outcomes: &[RankOutcome], topology: &Topology) -> Vec<StageCounters> {
    (0..topology.layer_stages())
        .map(|s| outcomes[topology.rank_of_stage(s)].metrics.stages[s].clone())
        .collect()
}

fn assert_bit_identical_nets(got: &Network, want: &Network, context: &str) {
    for s in 0..got.num_stages() {
        for (p, q) in got.stage(s).params().iter().zip(want.stage(s).params()) {
            for (i, (x, y)) in p.as_slice().iter().zip(q.as_slice()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: stage {s} element {i}: {x} vs {y}"
                );
            }
        }
    }
}

/// Deterministic side of the counters only: update counts and Eq. 5
/// delay histograms. Busy-time nanoseconds are wall-clock and differ by
/// construction.
fn assert_same_delay_histograms(dist: &[StageCounters], base: &[StageCounters], context: &str) {
    assert_eq!(dist.len(), base.len(), "{context}: stage count");
    for (s, (d, b)) in dist.iter().zip(base).enumerate() {
        assert_eq!(d.updates, b.updates, "{context}: stage {s} update count");
        assert_eq!(
            d.delay_hist, b.delay_hist,
            "{context}: stage {s} delay histogram"
        );
    }
}

fn assert_matches_baseline(outcomes: Vec<RankOutcome>, base: &Baseline, context: &str) {
    for (rank, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.loss_sum.to_bits(),
            base.loss_sum.to_bits(),
            "{context}: rank {rank} loss sum {} != sequential {}",
            outcome.loss_sum,
            base.loss_sum
        );
    }
    let topology = Topology::contiguous(LAYERS.len() - 1, WORLD).expect("valid partition");
    let counters = merged_counters(&outcomes, &topology);
    assert_same_delay_histograms(&counters, &base.metrics.stages, context);
    let mut net = fresh_net();
    let nets: Vec<Network> = outcomes.into_iter().map(|o| o.net).collect();
    splice_owned_stages(&mut net, &topology, &nets);
    assert_bit_identical_nets(&net, &base.net, context);
}

/// Scenario 1+2 driver: one plan flavor under one fault schedule.
fn soak_one(plan: MicrobatchSchedule, base: &Baseline, faults: &NetFaultPlan, tag: &str) {
    eprintln!("  [{tag}] faults: {}", faults.spec_string());
    let outcomes = run_faulted(plan, faults, tag);
    assert_matches_baseline(outcomes, base, tag);
    eprintln!("  [{tag}] bit-identical: weights, loss sums, delay histograms");
}

/// The scripted mid-run partition of the acceptance criteria: the
/// interior link 1 goes dark in both directions.
fn partition_plan() -> NetFaultPlan {
    NetFaultPlan::new(0)
        .with(NetFaultSpec::new(
            1,
            LinkDir::Down,
            40,
            NetFaultKind::Partition { count: 5 },
        ))
        .with(NetFaultSpec::new(
            1,
            LinkDir::Up,
            43,
            NetFaultKind::Partition { count: 5 },
        ))
}

/// Scenario 3: re-execute this binary under the fine-grained
/// supervisor, abort rank 2 mid-run, and verify the final snapshots.
fn kill_scenario(base: &Baseline) {
    let dir = scratch("kill");
    let program = std::env::current_exe().expect("own executable path");
    let spec = LaunchSpec {
        program,
        args: vec![
            "--chaos-child".into(),
            "--snap-dir".into(),
            dir.display().to_string(),
        ],
        world: WORLD,
        snapshot_dir: dir.clone(),
        max_restarts: 3,
        backoff: Duration::from_millis(100),
        attempt_timeout: Some(Duration::from_secs(120)),
        fine_grained: true,
    };
    // The supervisor strips the one-shot abort from the respawn's env.
    std::env::set_var("PBP_DIST_ABORT_AT", "2:30");
    let report = launch(&spec).expect("fine-grained launch must recover");
    std::env::remove_var("PBP_DIST_ABORT_AT");
    for event in &report.events {
        eprintln!("  [kill] supervisor: {event}");
    }
    assert!(
        report.events.iter().any(|e| e.starts_with("fine restart")),
        "the injected abort must have forced a fine-grained restart: {:?}",
        report.events
    );

    let total = EPOCHS * dataset().len();
    let topology = Topology::contiguous(LAYERS.len() - 1, WORLD).expect("valid partition");
    let mut nets = Vec::with_capacity(WORLD);
    let mut counters: Vec<Option<StageCounters>> = vec![None; topology.layer_stages()];
    for rank in 0..WORLD {
        let path = rank_snapshot_path(&dir, rank, total);
        let archive = SnapshotArchive::load(&path)
            .unwrap_or_else(|e| panic!("final snapshot {path:?} unreadable: {e}"));
        let mut net = fresh_net();
        pbp_nn::snapshot::read_network(&mut net, &archive).expect("network section");
        nets.push(net);
        let mut r = StateReader::new(archive.section(SECTION_DIST).expect("dist section"));
        let _rank = r.take_u32().expect("rank");
        let _world = r.take_u32().expect("world");
        let _digest = r.take_u64().expect("digest");
        let samples = r.take_usize().expect("samples");
        assert_eq!(samples, total, "rank {rank} final snapshot counter");
        let loss_sum = r.take_f64().expect("loss sum");
        assert_eq!(
            loss_sum.to_bits(),
            base.loss_sum.to_bits(),
            "[kill] rank {rank} loss sum {loss_sum} != sequential {}",
            base.loss_sum
        );
        let mut recorder = MetricsRecorder::new(topology.layer_stages());
        let mut r = StateReader::new(
            archive
                .section(SECTION_DIST_METRICS)
                .expect("metrics section"),
        );
        Snapshottable::read_state(&mut recorder, &mut r).expect("metrics state");
        let metrics = recorder.snapshot("dist", total, None);
        for s in topology.range(rank) {
            counters[s] = Some(metrics.stages[s].clone());
        }
    }
    let mut net = fresh_net();
    splice_owned_stages(&mut net, &topology, &nets);
    assert_bit_identical_nets(&net, &base.net, "[kill] fine-grained recovery");
    let counters: Vec<StageCounters> = counters
        .into_iter()
        .map(|c| c.expect("every stage has an owner"))
        .collect();
    assert_same_delay_histograms(&counters, &base.metrics.stages, "[kill]");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("  [kill] bit-identical: weights, loss sums, delay histograms");
}

/// Child mode for the kill scenario: one rank of the supervised group,
/// mirroring `pbp-launch`'s child configuration.
fn run_child(argv: &[String]) -> Result<(), DistError> {
    let mut rank = None;
    let mut resume_at = 0usize;
    let mut generation = 0u64;
    let mut snap_dir = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| DistError::Spec(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--chaos-child" => {}
            "--rank" => rank = Some(parse_num(&value(flag)?)?),
            "--resume-at" => resume_at = parse_num(&value(flag)?)?,
            "--generation" => generation = parse_num(&value(flag)?)? as u64,
            "--snap-dir" => snap_dir = Some(PathBuf::from(value(flag)?)),
            other => return Err(DistError::Spec(format!("unknown child flag {other}"))),
        }
    }
    let rank = rank.ok_or_else(|| DistError::Spec("child needs --rank".into()))?;
    let snap_dir = snap_dir.ok_or_else(|| DistError::Spec("child needs --snap-dir".into()))?;
    let topology = Topology::contiguous(LAYERS.len() - 1, WORLD)?;
    let data = dataset();
    let total = EPOCHS * data.len();
    let stall = Duration::from_secs(5);
    // Every rewind point must stay on disk for the survivors' rollback.
    let mut snapshots = RankSnapshots::new(&snap_dir, 24);
    snapshots.keep = usize::MAX;
    let spec = RankSpec {
        rank,
        topology,
        plan: MicrobatchSchedule::PipelinedBackprop,
        mitigation: Mitigation::None,
        weight_stashing: false,
        schedule: schedule(),
        seed: ORDER_SEED,
        total_microbatches: total,
        stall,
        snapshots: Some(snapshots),
        resume_at,
        abort_after: env_abort_at(rank),
        recovery: RankRecovery {
            net_faults: None,
            reconnect: Some(ReconnectPolicy {
                deadline: stall,
                backoff: Duration::from_millis(10),
            }),
            rewind: Some(Duration::from_secs(30)),
            generation,
        },
    };
    let transport = Transport::Unix {
        dir: snap_dir.join("links"),
    };
    let downstream = (rank + 1 < WORLD)
        .then(|| transport.listen(rank).map(LinkEndpoint::Listen))
        .transpose()?;
    let upstream = (rank > 0).then(|| LinkEndpoint::Dial {
        transport: transport.clone(),
        link: rank - 1,
    });
    let outcome = run_rank(fresh_net(), &data, &spec, upstream, downstream, None)?;
    eprintln!(
        "  [kill] rank {rank}: done, {} microbatches, loss sum {:.6}",
        outcome.samples_seen, outcome.loss_sum
    );
    Ok(())
}

fn parse_num(raw: &str) -> Result<usize, DistError> {
    raw.parse::<usize>()
        .map_err(|_| DistError::Spec(format!("invalid number {raw:?}")))
}

fn parent(base_dir: &Path) -> usize {
    let _ = base_dir; // scratch dirs are derived per scenario
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    // PBP_CHAOS_SEEDS narrows the soak to specific plan seeds — handy
    // for replaying a failure the randomized sweep found.
    let random_seeds: Vec<u64> = match std::env::var("PBP_CHAOS_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("PBP_CHAOS_SEEDS: seed list"))
            .collect(),
        Err(_) if smoke => vec![7],
        Err(_) => vec![7, 19, 23, 42],
    };
    eprintln!(
        "== chaos dist: {WORLD}-rank socket runs under injected network faults{} ==",
        if smoke { " (smoke)" } else { "" }
    );

    let pb = baseline(MicrobatchSchedule::PipelinedBackprop);
    let ofob = baseline(MicrobatchSchedule::OneFOneB {
        microbatches_per_update: 4,
    });
    let mut runs = 0usize;

    // PBP_NET_FAULTS replays one explicit schedule (the spec string a
    // failing soak logged) instead of the random sweep.
    if let Ok(raw) = std::env::var("PBP_NET_FAULTS") {
        let faults = NetFaultPlan::parse(&raw).expect("PBP_NET_FAULTS");
        soak_one(
            MicrobatchSchedule::PipelinedBackprop,
            &pb,
            &faults,
            "pb/env",
        );
        return 1;
    }

    // Scenario 1: randomized seeded fault plans, both plan flavors.
    for &seed in &random_seeds {
        let faults = NetFaultPlan::random(seed, WORLD - 1, 64);
        soak_one(
            MicrobatchSchedule::PipelinedBackprop,
            &pb,
            &faults,
            &format!("pb/seed{seed}"),
        );
        runs += 1;
        let faults = NetFaultPlan::random(seed ^ 0x5A5A, WORLD - 1, 64);
        soak_one(
            MicrobatchSchedule::OneFOneB {
                microbatches_per_update: 4,
            },
            &ofob,
            &faults,
            &format!("1f1b/seed{seed}"),
        );
        runs += 1;
    }

    // A seed-replay run stops here: scenarios 2 and 3 are fixed and
    // not part of what's being replayed.
    if std::env::var_os("PBP_CHAOS_SEEDS").is_some() {
        return runs;
    }

    // Scenario 2: the scripted mid-run partition.
    soak_one(
        MicrobatchSchedule::PipelinedBackprop,
        &pb,
        &partition_plan(),
        "pb/partition",
    );
    runs += 1;

    // Scenario 3: single-rank kill under the fine-grained supervisor.
    kill_scenario(&pb);
    runs += 1;
    runs
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--chaos-child") {
        if let Err(e) = run_child(&argv) {
            eprintln!("chaos_dist child: {e}");
            std::process::exit(1);
        }
        return;
    }
    let runs = parent(&std::env::temp_dir());
    eprintln!("chaos dist passed: {runs} faulted runs bit-identical to the sequential core.");
}
