//! Kill-and-resume smoke test for the fault-tolerant snapshot runner:
//! trains the threaded fill-and-drain engine on a small model, kills the
//! run between snapshot points, restarts from the latest snapshot, and
//! asserts the resumed run lands on final weights and validation loss
//! bit-identical to an uninterrupted run. Exercised by `scripts/check.sh`.

use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule};
use pbp_pipeline::{
    latest_snapshot, resume_training, run_to_crash, run_training_with_snapshots, EngineSpec,
    NoHooks, RunConfig, SnapshotPolicy, ThreadedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0xF417);
    mlp(&[2, 16, 3], &mut rng)
}

fn main() {
    let data = pbp_data::blobs(3, 40, 0.4, 77);
    let (train, val) = data.split(0.25);
    let config = RunConfig::new(3, 5);
    let spec = EngineSpec::Threaded(ThreadedConfig::fill_drain(LrSchedule::constant(
        Hyperparams::new(0.05, 0.9),
    )));
    let base = std::env::temp_dir().join(format!("pbp_snapshot_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    eprintln!("== snapshot kill-and-resume smoke (threaded fill&drain) ==");

    // Reference: uninterrupted run with snapshots every 25 updates.
    let policy_ref = SnapshotPolicy::new(base.join("ref"), 25);
    let mut reference = spec.build(fresh_net());
    let report_ref = run_training_with_snapshots(
        reference.as_mut(),
        &train,
        &val,
        &config,
        &policy_ref,
        &mut NoHooks,
    )
    .expect("reference run");

    // Victim: same run killed at update 40 (between snapshot points).
    let policy = SnapshotPolicy::new(base.join("crash"), 25);
    let mut victim = spec.build(fresh_net());
    let outcome = run_to_crash(
        victim.as_mut(),
        &train,
        &val,
        &config,
        &policy,
        40,
        &mut NoHooks,
    )
    .expect("crash run");
    assert!(outcome.is_none(), "kill point must land inside the run");
    let snap = latest_snapshot(&policy.dir)
        .expect("list snapshots")
        .expect("a snapshot survived the crash");
    eprintln!("killed at update 40, resuming from {}", snap.display());

    // Restart from the snapshot and finish.
    let mut resumed = spec.build(fresh_net());
    let report = resume_training(
        resumed.as_mut(),
        &train,
        &val,
        &config,
        Some(&policy),
        &snap,
        &mut NoHooks,
    )
    .expect("resume run");

    let final_ref = report_ref.records.last().expect("reference records");
    let final_res = report.records.last().expect("resumed records");
    assert_eq!(
        final_ref.val_loss, final_res.val_loss,
        "final validation loss must be bit-identical"
    );
    assert_eq!(final_ref.val_acc, final_res.val_acc);
    let net_ref = reference.into_network();
    let net_res = resumed.into_network();
    for s in 0..net_ref.num_stages() {
        for (p, q) in net_ref
            .stage(s)
            .params()
            .iter()
            .zip(net_res.stage(s).params())
        {
            assert_eq!(p.as_slice(), q.as_slice(), "stage {s} weights diverged");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "snapshot smoke PASS: resumed final val loss {:.6} == uninterrupted",
        final_res.val_loss
    );
}
