//! Figure 8: CIFAR-sim ResNet20 validation-accuracy curves for SGDM,
//! plain PB, PB+LWPD, PB+SCD and PB+LWPvD+SCD.
//!
//! Substitution: CIFAR-10 → synthetic CIFAR-sim at 16×16, ResNet20 at
//! width/4 (same 34-stage pipeline, same per-stage delays). Absolute
//! accuracies differ from the paper; the method ordering and the recovery
//! of the SGDM baseline by the combined mitigation are the claims under
//! test.

use pbp_bench::{cifar_data, Budget, Table};
use pbp_nn::models::{resnet_cifar, ResNetConfig};
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, PbConfig, RunConfig, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1500, 300, 8, 1);
    let (train, val) = cifar_data(16, budget.train_samples, budget.val_samples);
    let config = ResNetConfig {
        depth: 20,
        base_width: 4,
        in_channels: 3,
        num_classes: 10,
    };
    let reference = Hyperparams::new(0.1, 0.9); // He et al. (2016a) @ N=128
    let seed = 7u64;

    println!(
        "== Figure 8: ResNet20 ({} stages) on CIFAR-sim ==\n",
        config.expected_stage_count()
    );

    // SGDM baseline (batch 32, hyperparameters scaled from the 128
    // reference so the per-sample contribution matches PB's), then the PB
    // variants at update size one.
    let hp32 = scale_hyperparams(reference, 128, 32);
    let hp1 = scale_hyperparams(reference, 128, 1);
    let mut specs = vec![EngineSpec::Sgdm {
        schedule: LrSchedule::constant(hp32),
        batch: 32,
    }];
    for mitigation in [
        Mitigation::None,
        Mitigation::lwpd(),
        Mitigation::scd(),
        Mitigation::lwpv_scd(),
    ] {
        specs.push(EngineSpec::Pb(
            PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(mitigation),
        ));
    }

    let run_config = RunConfig::new(budget.epochs, seed);
    let mut reports: Vec<TrainReport> = Vec::new();
    for spec in &specs {
        let mut rng = StdRng::seed_from_u64(1000);
        let mut engine = spec.build(resnet_cifar(config, &mut rng));
        reports.push(run_training(
            engine.as_mut(),
            &train,
            &val,
            &run_config,
            &mut NoHooks,
        ));
        eprint!(".");
    }
    eprintln!();

    // Per-epoch curve table (the figure's series).
    let mut headers = vec!["epoch".to_string()];
    headers.extend(reports.iter().map(|r| r.label.clone()));
    let mut table = Table::new(headers);
    for epoch in 0..budget.epochs {
        let mut row = vec![epoch.to_string()];
        for report in &reports {
            row.push(format!("{:.1}%", 100.0 * report.records[epoch].val_acc));
        }
        table.row(row);
    }
    table.print();

    println!("\nfinal validation accuracy:");
    let mut final_table = Table::new(["method", "val acc"]);
    for report in &reports {
        final_table.row([
            report.label.clone(),
            format!("{:.1}%", 100.0 * report.final_val_acc()),
        ]);
    }
    final_table.print();
    println!(
        "\nPaper check (Fig. 8): PB trails SGDM; each mitigation closes part of\n\
         the gap; PB+LWPvD+SCD reaches (or exceeds) the SGDM curve."
    );
}
