//! Table 3 (Appendix C.1): SpecTrain (Chen et al., 2018) versus the
//! paper's combined mitigation.

use pbp_bench::suite::{run_family_table, Budget, MethodSpec};
use pbp_bench::Family;
use pbp_nn::models::VggVariant;
use pbp_optim::{Hyperparams, Mitigation};

fn main() {
    let budget = Budget::new(1500, 300, 6, 2);
    println!(
        "== Table 3: SpecTrain comparison ({} seeds) ==\n",
        budget.seeds
    );
    run_family_table(
        &[
            Family::Vgg(VggVariant::Vgg13),
            Family::ResNet(20),
            Family::ResNet(56),
            Family::ResNet50,
        ],
        &[
            MethodSpec::Sgdm { batch: 32 },
            MethodSpec::pb(Mitigation::None),
            MethodSpec::pb(Mitigation::lwpv_scd()),
            MethodSpec::pb(Mitigation::SpecTrain),
        ],
        Hyperparams::new(0.1, 0.9),
        128,
        budget,
    );
    println!(
        "\nPaper check (Table 3): SpecTrain is competitive on the CIFAR-scale\n\
         networks but falls short of PB+LWPvD+SCD on the deep RN50 pipeline,\n\
         where the paper reports a 0.4% remaining gap."
    );
}
