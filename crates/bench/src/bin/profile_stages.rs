//! Systems profile (Appendix G.1 flavor): per-stage forward/backward cost
//! of a pipelined network — the load-balancing data a pipeline-parallel
//! accelerator would need (the slowest stage sets the pipeline step time).

use pbp_bench::Table;
use pbp_nn::models::{resnet_cifar, ResNetConfig};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let config = ResNetConfig {
        depth: 20,
        base_width: 8,
        in_channels: 3,
        num_classes: 10,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = resnet_cifar(config, &mut rng);
    let x = pbp_tensor::normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
    let reps = 50usize;

    // Warm up and collect per-stage timings by driving stages manually.
    let num = net.num_stages();
    let mut fwd_times = vec![0.0f64; num];
    let mut bwd_times = vec![0.0f64; num];
    for _ in 0..reps {
        let mut stack = vec![x.clone()];
        for (s, fwd_time) in fwd_times.iter_mut().enumerate() {
            let t0 = Instant::now();
            net.stage_mut(s).forward(&mut stack);
            *fwd_time += t0.elapsed().as_secs_f64();
        }
        let logits = stack.pop().expect("single lane");
        let (_, grad) = pbp_nn::loss::softmax_cross_entropy(&logits, &[0]);
        let mut gstack = vec![grad];
        for s in (0..num).rev() {
            let t0 = Instant::now();
            net.stage_mut(s).backward(&mut gstack);
            bwd_times[s] += t0.elapsed().as_secs_f64();
        }
        net.zero_grads();
    }

    println!(
        "== Per-stage cost profile: ResNet20 (width {}), {} layer stages ==\n",
        config.base_width, num
    );
    let mut table = Table::new(["stage", "name", "params", "fwd µs", "bwd µs", "share"]);
    let total: f64 = fwd_times.iter().chain(bwd_times.iter()).sum();
    let mut slowest = (0usize, 0.0f64);
    for s in 0..num {
        let stage_total = fwd_times[s] + bwd_times[s];
        if stage_total > slowest.1 {
            slowest = (s, stage_total);
        }
        table.row([
            s.to_string(),
            net.stage(s).name().to_string(),
            net.stage(s).param_count().to_string(),
            format!("{:.1}", fwd_times[s] / reps as f64 * 1e6),
            format!("{:.1}", bwd_times[s] / reps as f64 * 1e6),
            format!("{:.1}%", 100.0 * stage_total / total),
        ]);
    }
    table.print();
    let step_time = slowest.1 / reps as f64;
    let ideal = total / reps as f64 / num as f64;
    println!(
        "\nslowest stage: #{} ({}) at {:.1} µs/step — pipeline step time is set\n\
         by this stage; perfect balance would be {:.1} µs ({:.2}x speed-up left on\n\
         the table for a load-balancing scheduler, cf. Harlap et al. 2018).",
        slowest.0,
        net.stage(slowest.0).name(),
        step_time * 1e6,
        ideal * 1e6,
        step_time / ideal,
    );
    let _ = Tensor::zeros(&[1]);
}
