//! Ablation (Discussion section): a learning-rate warmup as an additional
//! stabilizer for PB. The paper argues delays hurt most early in training,
//! when parameters change fastest, so a warmup should help plain PB more
//! than it helps mitigated PB.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::models::{resnet_cifar, ResNetConfig};
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, PbConfig, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1500, 300, 6, 2);
    let (train, val) = cifar_data(16, budget.train_samples, budget.val_samples);
    let config = ResNetConfig {
        depth: 32,
        base_width: 4,
        in_channels: 3,
        num_classes: 10,
    };
    let hp1 = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, 1);
    let warmup_samples = budget.train_samples; // one epoch of linear warmup

    println!(
        "== Ablation: LR warmup for PB (ResNet32, {} stages, {} seeds) ==\n",
        config.expected_stage_count(),
        budget.seeds
    );
    let mut table = Table::new(["method", "no warmup", "1-epoch warmup"]);
    for mitigation in [Mitigation::None, Mitigation::scd(), Mitigation::lwpv_scd()] {
        let mut row = vec![mitigation.label()];
        for warmup in [false, true] {
            let mut accs = Vec::new();
            for seed in 0..budget.seeds as u64 {
                let mut schedule = LrSchedule::constant(hp1);
                if warmup {
                    schedule = schedule.with_warmup(warmup_samples);
                }
                let spec = EngineSpec::Pb(PbConfig::plain(schedule).with_mitigation(mitigation));
                let mut rng = StdRng::seed_from_u64(8000 + seed);
                let mut engine = spec.build(resnet_cifar(config, &mut rng));
                let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
                let report = run_training(engine.as_mut(), &train, &val, &run_config, &mut NoHooks);
                accs.push(report.final_val_acc());
            }
            let (m, s) = mean_std(&accs);
            row.push(format!("{:.2}±{:.2}", 100.0 * m, 100.0 * s));
            eprint!(".");
        }
        table.row(row);
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Discussion): \"a learning rate warmup may help stabilize\n\
         PB training\" — the warmup column should help plain PB noticeably and\n\
         mitigated PB less (its delay compensation already absorbs the early\n\
         instability)."
    );
}
