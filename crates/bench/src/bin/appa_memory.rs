//! Appendix A: memory distribution of batch vs pipeline parallelism —
//! total activation memory is Θ(L·W) in both, but pipeline stages have
//! strongly uneven needs and only one weight copy exists.

use pbp_bench::Table;
use pbp_pipeline::MemoryModel;

fn main() {
    println!("== Appendix A: batch vs pipeline parallel memory model ==\n");
    let mut table = Table::new([
        "stages (L=W)",
        "batch total",
        "pipeline total",
        "pipeline stage 0",
        "pipeline last stage",
        "weight copies (batch/pipe)",
    ]);
    for stages in [8usize, 34, 78, 169] {
        let m = MemoryModel::fine_grained(stages);
        table.row([
            stages.to_string(),
            m.batch_parallel_activations_total().to_string(),
            m.pipeline_activations_total().to_string(),
            m.pipeline_activations_at_stage(0).to_string(),
            m.pipeline_activations_at_stage(stages - 1).to_string(),
            format!("{}/{}", m.weight_copies(false), m.weight_copies(true)),
        ]);
    }
    table.print();
    println!(
        "\nPaper check (App. A): totals are both Θ(L·W); the pipeline's\n\
         per-worker needs fall linearly from 2W activation-steps at stage 0\n\
         to ~2 at the last stage, and the pipeline keeps a single weight\n\
         copy where data parallelism replicates weights per worker."
    );
}
