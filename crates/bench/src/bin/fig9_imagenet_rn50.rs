//! Figure 9: ImageNet-sim ResNet50 validation-accuracy curves (single
//! run), same five methods as Figure 8.
//!
//! Substitution: ImageNet → a harder 20-class synthetic task; ResNet50 →
//! the bottleneck pre-activation analogue with the same 78-stage pipeline
//! (maximum gradient delay 154 updates).

use pbp_bench::{imagenet_data, Budget, Table};
use pbp_nn::models::resnet50_like;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, PbConfig, RunConfig, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(2000, 400, 8, 1);
    let (train, val) = imagenet_data(24, budget.train_samples, budget.val_samples);
    let reference = Hyperparams::new(0.1, 0.9); // He et al. @ N=256 for ImageNet; we use 128
    let seed = 9u64;

    let hp32 = scale_hyperparams(reference, 128, 32);
    let hp1 = scale_hyperparams(reference, 128, 1);
    let mut specs = vec![EngineSpec::Sgdm {
        schedule: LrSchedule::constant(hp32),
        batch: 32,
    }];
    for mitigation in [
        Mitigation::None,
        Mitigation::lwpd(),
        Mitigation::scd(),
        Mitigation::lwpv_scd(),
    ] {
        specs.push(EngineSpec::Pb(
            PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(mitigation),
        ));
    }

    let run_config = RunConfig::new(budget.epochs, seed);
    let mut reports: Vec<TrainReport> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(2000);
        let net = resnet50_like(4, 3, 20, &mut rng);
        if i == 0 {
            println!(
                "== Figure 9: ResNet50-like ({} stages) on ImageNet-sim ==\n",
                net.pipeline_stage_count()
            );
        }
        let mut engine = spec.build(net);
        reports.push(run_training(
            engine.as_mut(),
            &train,
            &val,
            &run_config,
            &mut NoHooks,
        ));
        eprint!(".");
    }
    eprintln!();

    let mut headers = vec!["epoch".to_string()];
    headers.extend(reports.iter().map(|r| r.label.clone()));
    let mut table = Table::new(headers);
    for epoch in 0..budget.epochs {
        let mut row = vec![epoch.to_string()];
        for report in &reports {
            row.push(format!("{:.1}%", 100.0 * report.records[epoch].val_acc));
        }
        table.row(row);
    }
    table.print();

    println!("\nfinal validation accuracy:");
    let mut final_table = Table::new(["method", "val acc"]);
    for report in &reports {
        final_table.row([
            report.label.clone(),
            format!("{:.1}%", 100.0 * report.final_val_acc()),
        ]);
    }
    final_table.print();
    println!(
        "\nPaper check (Fig. 9): with 78 stages the plain-PB gap is larger than\n\
         on ResNet20; single mitigations recover only part of it; the combined\n\
         PB+LWPvD+SCD is the closest to (or matches) SGDM."
    );
}
