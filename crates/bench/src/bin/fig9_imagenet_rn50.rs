//! Figure 9: ImageNet-sim ResNet50 validation-accuracy curves (single
//! run), same five methods as Figure 8.
//!
//! Substitution: ImageNet → a harder 20-class synthetic task; ResNet50 →
//! the bottleneck pre-activation analogue with the same 78-stage pipeline
//! (maximum gradient delay 154 updates).

use pbp_bench::{imagenet_data, Budget, Table};
use pbp_nn::models::resnet50_like;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{evaluate, EpochRecord, PbConfig, PipelinedTrainer, SgdmTrainer, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(2000, 400, 8, 1);
    let (train, val) = imagenet_data(24, budget.train_samples, budget.val_samples);
    let reference = Hyperparams::new(0.1, 0.9); // He et al. @ N=256 for ImageNet; we use 128
    let seed = 9u64;

    let mut reports: Vec<TrainReport> = Vec::new();
    {
        let hp = scale_hyperparams(reference, 128, 32);
        let mut rng = StdRng::seed_from_u64(2000);
        let net = resnet50_like(4, 3, 20, &mut rng);
        println!("== Figure 9: ResNet50-like ({} stages) on ImageNet-sim ==\n", net.pipeline_stage_count());
        let mut trainer = SgdmTrainer::new(net, LrSchedule::constant(hp), 32);
        let mut report = TrainReport::new("SGDM");
        for epoch in 0..budget.epochs {
            let train_loss = trainer.train_epoch(&train, seed, epoch);
            let (val_loss, val_acc) = evaluate(trainer.network_mut(), &val, 16);
            report.records.push(EpochRecord {
                epoch,
                train_loss,
                val_loss,
                val_acc,
            });
        }
        reports.push(report);
    }

    let hp1 = scale_hyperparams(reference, 128, 1);
    for mitigation in [
        Mitigation::None,
        Mitigation::lwpd(),
        Mitigation::scd(),
        Mitigation::lwpv_scd(),
    ] {
        let mut rng = StdRng::seed_from_u64(2000);
        let net = resnet50_like(4, 3, 20, &mut rng);
        let cfg = PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(mitigation);
        let mut trainer = PipelinedTrainer::new(net, cfg);
        reports.push(trainer.run(&train, &val, budget.epochs, seed));
        eprint!(".");
    }
    eprintln!();

    let mut headers = vec!["epoch".to_string()];
    headers.extend(reports.iter().map(|r| r.label.clone()));
    let mut table = Table::new(headers);
    for epoch in 0..budget.epochs {
        let mut row = vec![epoch.to_string()];
        for report in &reports {
            row.push(format!("{:.1}%", 100.0 * report.records[epoch].val_acc));
        }
        table.row(row);
    }
    table.print();

    println!("\nfinal validation accuracy:");
    let mut final_table = Table::new(["method", "val acc"]);
    for report in &reports {
        final_table.row([
            report.label.clone(),
            format!("{:.1}%", 100.0 * report.final_val_acc()),
        ]);
    }
    final_table.print();
    println!(
        "\nPaper check (Fig. 9): with 78 stages the plain-PB gap is larger than\n\
         on ResNet20; single mitigations recover only part of it; the combined\n\
         PB+LWPvD+SCD is the closest to (or matches) SGDM."
    );
}
