//! Appendix D cross-check: the dominant root of each method's
//! characteristic polynomial (Eqs. 28-31) against the empirical decay rate
//! of directly simulating the delayed optimizer on a quadratic coordinate.

use pbp_bench::Table;
use pbp_quadratic::{dominant_root_magnitude, simulate_delayed_quadratic, Method};

fn main() {
    let cases = [
        ("GDM", Method::Gdm, 0.9, 0.02, 0usize),
        ("GDM", Method::Gdm, 0.9, 0.02, 4),
        ("GDM", Method::Gdm, 0.5, 0.05, 3),
        ("Nesterov", Method::Nesterov, 0.9, 0.02, 1),
        ("SCD", Method::scd(0.9, 4), 0.9, 0.02, 4),
        ("SCD", Method::scd(0.95, 8), 0.95, 0.01, 8),
        ("LWPD", Method::lwpd(4), 0.9, 0.02, 4),
        ("LWP T=8", Method::Lwp { t: 8.0 }, 0.9, 0.01, 4),
        ("LWPwD+SCD", Method::lwpd_scd(0.9, 4), 0.9, 0.02, 4),
        ("LWPwD+SCD", Method::lwpd_scd(0.97, 8), 0.97, 0.005, 8),
    ];
    let mut table = Table::new(["method", "m", "ηλ", "D", "|r| theory", "|r| simulated", "Δ"]);
    let mut worst = 0.0f64;
    for (name, method, m, el, d) in cases {
        let theory = dominant_root_magnitude(method, m, el, d);
        let sim = simulate_delayed_quadratic(method, m, el, d, 6000);
        let delta = (theory - sim.empirical_rate).abs();
        if theory < 1.0 {
            worst = worst.max(delta);
        }
        table.row([
            name.to_string(),
            format!("{m}"),
            format!("{el}"),
            d.to_string(),
            format!("{theory:.5}"),
            format!("{:.5}", sim.empirical_rate),
            format!("{delta:.5}"),
        ]);
    }
    println!("== Appendix D: characteristic polynomials vs direct simulation ==\n");
    table.print();
    println!("\nworst |Δ| over stable cases: {worst:.5}");
    println!(
        "\nPaper check (App. D): the state-transition analysis predicts the\n\
         asymptotic convergence rate of every method; simulated rates match the\n\
         dominant characteristic roots."
    );
}
