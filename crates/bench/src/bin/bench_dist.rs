//! Distributed-pipeline throughput lane: times the socket-transport
//! runner against the single-process engines on one fixed workload and
//! writes samples/sec per lane to `results/BENCH_dist.json`.
//!
//! Lanes:
//! * `sequential` — the ScheduledTrainer PB emulation (one thread, no
//!   transport), the bit-exactness reference;
//! * `threaded` — the PR5 in-process threaded pipeline;
//! * `dist-unix wN` — N rank threads chained over Unix-domain sockets,
//!   every activation/gradient framed through the wire codec.
//!
//! The distributed lanes are verified bit-identical to the sequential
//! lane before their timing is recorded, so the numbers can't drift away
//! from a correct run. `PBP_BENCH_SMOKE=1` shrinks the workload for the
//! scripts/check.sh gate.

use pbp_data::{spirals, Dataset};
use pbp_dist::{
    run_rank, splice_owned_stages, LinkEndpoint, RankOutcome, RankRecovery, RankSpec, Topology,
    Transport,
};
use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{
    MicrobatchSchedule, ScheduledConfig, ScheduledTrainer, ThreadedConfig, ThreadedPipeline,
    TrainEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const NET_SEED: u64 = 0xBE7C;
const ORDER_SEED: u64 = 9;

struct LaneResult {
    label: String,
    samples: usize,
    wall: Duration,
}

impl LaneResult {
    fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn fresh_net(layers: &[usize]) -> Network {
    let mut rng = StdRng::seed_from_u64(NET_SEED);
    mlp(layers, &mut rng)
}

fn schedule() -> LrSchedule {
    LrSchedule::constant(Hyperparams::new(0.05, 0.9))
}

/// Sequential reference: returns the lane timing plus the final network
/// the distributed lanes must reproduce.
fn run_sequential(layers: &[usize], data: &Dataset, epochs: usize) -> (LaneResult, Network) {
    let config = ScheduledConfig::new(MicrobatchSchedule::PipelinedBackprop, schedule());
    let mut trainer = ScheduledTrainer::new(fresh_net(layers), config);
    let start = Instant::now();
    for epoch in 0..epochs {
        trainer.train_epoch(data, ORDER_SEED, epoch);
    }
    let wall = start.elapsed();
    (
        LaneResult {
            label: "sequential PB".into(),
            samples: epochs * data.len(),
            wall,
        },
        trainer.into_network(),
    )
}

fn run_threaded(layers: &[usize], data: &Dataset, epochs: usize) -> LaneResult {
    let mut engine = ThreadedPipeline::new(fresh_net(layers), ThreadedConfig::pb(schedule()));
    let start = Instant::now();
    for epoch in 0..epochs {
        TrainEngine::train_epoch(&mut engine, data, ORDER_SEED, epoch);
    }
    LaneResult {
        label: "threaded PB".into(),
        samples: epochs * data.len(),
        wall: start.elapsed(),
    }
}

/// Times a `world`-rank socket run and checks it against the sequential
/// reference before reporting.
fn run_dist(
    layers: &[usize],
    data: &Dataset,
    epochs: usize,
    world: usize,
    reference: &Network,
) -> LaneResult {
    let dir = std::env::temp_dir().join(format!("pbp_bench_dist_w{world}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let transport = Transport::Unix { dir: dir.clone() };
    let topology = Topology::contiguous(layers.len() - 1, world).expect("valid partition");
    let total = epochs * data.len();
    let stall = Duration::from_secs(30);
    let start = Instant::now();
    let mut handles = Vec::new();
    for rank in 0..world {
        let spec = RankSpec {
            rank,
            topology: topology.clone(),
            plan: MicrobatchSchedule::PipelinedBackprop,
            mitigation: Mitigation::None,
            weight_stashing: false,
            schedule: schedule(),
            seed: ORDER_SEED,
            total_microbatches: total,
            stall,
            snapshots: None,
            resume_at: 0,
            abort_after: None,
            recovery: RankRecovery::default(),
        };
        let transport = transport.clone();
        let data = data.clone();
        let layers = layers.to_vec();
        handles.push(std::thread::spawn(move || {
            let down = (rank + 1 < world)
                .then(|| LinkEndpoint::Listen(transport.listen(rank).expect("bind")));
            let up = (rank > 0).then(|| LinkEndpoint::Dial {
                transport: transport.clone(),
                link: rank - 1,
            });
            run_rank(fresh_net(&layers), &data, &spec, up, down, None).expect("rank run")
        }));
    }
    let outcomes: Vec<RankOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    // Differential guard: a fast-but-wrong lane must not be reported.
    let mut net = fresh_net(layers);
    let nets: Vec<Network> = outcomes.into_iter().map(|o| o.net).collect();
    splice_owned_stages(&mut net, &topology, &nets);
    for s in 0..net.num_stages() {
        for (p, q) in net
            .stage(s)
            .params()
            .iter()
            .zip(reference.stage(s).params())
        {
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "dist w{world} stage {s} diverged from the sequential reference"
                );
            }
        }
    }
    LaneResult {
        label: format!("dist-unix w{world} PB"),
        samples: total,
        wall,
    }
}

fn main() {
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    let layers: Vec<usize> = if smoke {
        vec![2, 24, 16, 12, 3]
    } else {
        vec![2, 64, 64, 48, 3]
    };
    let data = if smoke {
        spirals(3, 16, 0.05, 2) // 48 samples
    } else {
        spirals(3, 64, 0.05, 7) // 192 samples
    };
    let epochs = if smoke { 1 } else { 4 };
    let total = epochs * data.len();
    eprintln!(
        "== bench_dist: {total} microbatches, layers {layers:?}{} ==",
        if smoke { " (smoke)" } else { "" }
    );

    let (seq, reference) = run_sequential(&layers, &data, epochs);
    let mut lanes = vec![seq];
    lanes.push(run_threaded(&layers, &data, epochs));
    for world in [2usize, 4] {
        lanes.push(run_dist(&layers, &data, epochs, world, &reference));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"layers\": {layers:?}, \"samples\": {total}, \"plan\": \"PB\"}},\n"
    ));
    json.push_str("  \"lanes\": [\n");
    for (i, lane) in lanes.iter().enumerate() {
        eprintln!(
            "   {:<18} {:>8} samples in {:>8.1} ms -> {:>9.0} samples/s",
            lane.label,
            lane.samples,
            lane.wall.as_secs_f64() * 1e3,
            lane.samples_per_sec()
        );
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"samples\": {}, \"wall_ns\": {}, \"samples_per_sec\": {:.1}}}{}\n",
            lane.label,
            lane.samples,
            lane.wall.as_nanos(),
            lane.samples_per_sec(),
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_dist.json", json).expect("write results/BENCH_dist.json");
    eprintln!("   wrote results/BENCH_dist.json");
}
