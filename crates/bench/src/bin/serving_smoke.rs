//! CI smoke for the serving layer: a tiny MLP behind a one-worker
//! [`Server`] must coalesce pre-queued requests into multi-request
//! batches, reply bit-identically to a direct eval-mode forward, survive
//! a graceful drain, and produce a p50/p99/QPS summary that parses back
//! through the crate's own JSON parser with the `BENCH_serving.json`
//! lane schema.

use pbp_bench::percentile;
use pbp_nn::models::mlp;
use pbp_serve::{ServeConfig, ServeError, Server};
use pbp_tensor::{normal, Tensor};
use pbp_trace::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const REQUESTS: usize = 24;
const FEATURES: usize = 6;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let net = mlp(&[FEATURES, 16, 4], &mut rng);
    let mut reference_net = mlp(&[FEATURES, 16, 4], &mut StdRng::seed_from_u64(11));
    reference_net.set_training(false);

    let mut inputs_rng = StdRng::seed_from_u64(12);
    let inputs: Vec<Tensor> = (0..REQUESTS)
        .map(|_| normal(&[FEATURES], 0.0, 1.0, &mut inputs_rng))
        .collect();

    // A generous deadline lets the batcher see the whole pre-queued burst,
    // so coalescing is deterministic rather than timing-dependent.
    let server = Server::start(
        vec![net],
        ServeConfig {
            max_batch: 8,
            deadline: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let client = server.client();

    let started = Instant::now();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| (Instant::now(), client.submit(x.clone()).expect("submit")))
        .collect();
    let mut latencies = Vec::with_capacity(REQUESTS);
    for (i, (submitted, pending)) in pendings.into_iter().enumerate() {
        let reply = pending.wait().expect("serving reply");
        latencies.push(submitted.elapsed().as_secs_f64() * 1e6);

        // Bit-identity vs a direct eval-mode forward of the same input.
        let mut shape = vec![1];
        shape.extend_from_slice(inputs[i].shape());
        let batched = Tensor::from_vec(inputs[i].as_slice().to_vec(), &shape).unwrap();
        let want = reference_net.forward(&batched);
        reference_net.clear_stash();
        assert_eq!(reply.shape(), &want.shape()[1..], "reply {i} shape");
        for (j, (g, w)) in reply.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert!(
                g.to_bits() == w.to_bits(),
                "reply {i} element {j} differs from direct forward: {g} vs {w}"
            );
        }
    }
    let wall = started.elapsed().as_secs_f64();

    let (nets, stats) = server.shutdown();
    assert_eq!(nets.len(), 1, "shutdown returns the worker's network");
    assert_eq!(stats.submitted, REQUESTS as u64);
    assert_eq!(stats.replied, REQUESTS as u64);
    assert!(
        stats.max_coalesced >= 2,
        "pre-queued burst never coalesced (max batch seen: {})",
        stats.max_coalesced
    );
    assert!(
        stats.batches < REQUESTS as u64,
        "dynamic batching dispatched one batch per request"
    );
    assert_eq!(
        client.infer(inputs[0].clone()).unwrap_err(),
        ServeError::ShuttingDown,
        "post-shutdown submits must be rejected"
    );

    // Round-trip the summary through the crate's own parser and validate
    // the lane schema bench_serving writes to results/BENCH_serving.json.
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);
    let qps = REQUESTS as f64 / wall;
    let summary = format!(
        "{{\"qps\": {qps:.1}, \"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}, \
         \"max_coalesced\": {}, \"batches\": {}}}",
        stats.max_coalesced, stats.batches
    );
    let json = Json::parse(&summary).expect("serving summary parses");
    for key in ["qps", "p50_us", "p99_us", "max_coalesced", "batches"] {
        let v = json
            .get(key)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("summary missing numeric {key}"));
        assert!(v.is_finite() && v >= 0.0, "{key} out of range: {v}");
    }
    assert!(
        json.get("p99_us").and_then(|v| v.as_f64()).unwrap()
            >= json.get("p50_us").and_then(|v| v.as_f64()).unwrap(),
        "p99 below p50"
    );

    println!(
        "PASS: {REQUESTS} replies bit-identical, coalesced up to {} per batch \
         ({} batches), schema-valid summary {summary}",
        stats.max_coalesced, stats.batches
    );
}
