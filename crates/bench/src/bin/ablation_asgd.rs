//! Ablation (Appendix G.2): random gradient delays as in asynchronous SGD.
//! Compares constant delay against uniform and straggler-tailed (geometric)
//! delay distributions with the same mean.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{run_training, DelayDistribution, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);

    // Three distributions with mean delay 8.
    let cases = [
        ("constant D=8", DelayDistribution::Constant(8)),
        ("uniform 0..=16", DelayDistribution::Uniform { max: 16 }),
        (
            "geometric tail (p=.889, max=64)",
            DelayDistribution::Geometric { p: 0.889, max: 64 },
        ),
        ("no delay", DelayDistribution::Constant(0)),
    ];

    println!(
        "== Ablation: ASGD-style random delays ({} seeds) ==\n",
        budget.seeds
    );
    let mut table = Table::new(["distribution", "mean delay", "val acc"]);
    for (name, dist) in cases {
        let mut accs = Vec::new();
        for seed in 0..budget.seeds as u64 {
            let spec = EngineSpec::Asgd {
                distribution: dist,
                batch,
                schedule: LrSchedule::constant(hp),
                delay_seed: 31 + seed,
            };
            let mut rng = StdRng::seed_from_u64(9700 + seed);
            let mut engine = spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
            let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
            let report = run_training(engine.as_mut(), &train, &val, &run_config, &mut NoHooks);
            accs.push(report.final_val_acc());
            eprint!(".");
        }
        let (m, s) = mean_std(&accs);
        table.row([
            name.to_string(),
            format!("{:.1}", dist.mean()),
            format!("{:.1}±{:.1}%", 100.0 * m, 100.0 * s),
        ]);
    }
    eprintln!();
    table.print();
    println!(
        "\nExpectation: all delayed variants trail the no-delay run. Note that\n\
         distributions are matched on the MEAN delay, and what hurts is the\n\
         typical delay: the straggler-tailed (geometric) distribution has a\n\
         median well below its mean, so it degrades the least, while the\n\
         constant distribution concentrates all mass at the mean."
    );
}
