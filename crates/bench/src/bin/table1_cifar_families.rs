//! Table 1 / Table 5: CIFAR-sim final validation accuracy for the VGG and
//! ResNet families under SGDM, plain PB and PB+LWPvD+SCD, with the paper's
//! stage counts.

use pbp_bench::suite::{run_family_table, Budget, MethodSpec};
use pbp_bench::Family;
use pbp_optim::{Hyperparams, Mitigation};

fn main() {
    let budget = Budget::new(1500, 300, 6, 3);
    println!(
        "== Table 1 / Table 5: CIFAR-sim, {} seeds (paper: 5-run means on CIFAR-10) ==\n",
        budget.seeds
    );
    run_family_table(
        &Family::table1(),
        &[
            MethodSpec::Sgdm { batch: 32 },
            MethodSpec::pb(Mitigation::None),
            MethodSpec::pb(Mitigation::lwpv_scd()),
        ],
        Hyperparams::new(0.1, 0.9),
        128,
        budget,
    );
    println!(
        "\nPaper check (Table 1): PB trails SGDM, with the gap growing with the\n\
         stage count (RN110 worst); PB+LWPvD+SCD recovers most or all of the\n\
         gap on every network except the deepest."
    );
}
