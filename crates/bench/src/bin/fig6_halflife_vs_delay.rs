//! Figure 6: optimal half-life of the error for different delays when
//! optimizing a convex quadratic with κ = 10³.

use pbp_bench::Table;
use pbp_quadratic::{min_halflife, Method};

fn main() {
    let kappa = 1e3;
    let max_delay: usize = std::env::var("PBP_MAX_DELAY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut table = Table::new(["delay", "GDM", "LWPD", "LWPwD+SCD"]);
    for d in (0..=max_delay).step_by(2) {
        let gdm = min_halflife(&|_| Method::Gdm, d, kappa);
        let lwp = min_halflife(&|_| Method::lwpd(d), d, kappa);
        let combo = min_halflife(&|m| Method::lwpd_scd(m, d), d, kappa);
        table.row([
            d.to_string(),
            format!("{gdm:.1}"),
            format!("{lwp:.1}"),
            format!("{combo:.1}"),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("== Figure 6: minimum half-life vs delay (κ = 1e3) ==\n");
    table.print();
    println!(
        "\nPaper check (Fig. 6): GDM degrades steeply with delay; LWPD improves\n\
         on it at every delay; the combination LWPwD+SCD stays lowest across\n\
         the range."
    );
}
