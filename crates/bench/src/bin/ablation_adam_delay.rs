//! Ablation (Discussion section): "Optimizers such as ADAM may also
//! increase delay tolerance." Compares SGDM vs Adam under increasing
//! uniform, consistent gradient delay.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::loss::softmax_cross_entropy;
use pbp_nn::models::simple_cnn;
use pbp_nn::Network;
use pbp_optim::{scale_hyperparams, AdamState, Hyperparams, LrSchedule};
use pbp_pipeline::{evaluate, DelayedConfig, DelayedTrainer};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Delayed-gradient Adam training (consistent weights), mirroring
/// `DelayedTrainer` with an Adam update rule.
fn train_delayed_adam(
    mut net: Network,
    train: &pbp_data::Dataset,
    delay: usize,
    batch: usize,
    lr: f32,
    epochs: usize,
    seed: u64,
) -> Network {
    let mut adam: Vec<AdamState> = (0..net.num_stages())
        .map(|s| AdamState::new(&net.stage(s).params()))
        .collect();
    let mut history: VecDeque<Vec<Vec<Tensor>>> =
        (0..=delay).map(|_| net.snapshot()).collect();
    for epoch in 0..epochs {
        let order = train.epoch_order(seed, epoch);
        for chunk in order.chunks(batch) {
            let (x, labels) = train.batch(chunk);
            let master = net.snapshot();
            let stale = history.pop_front().expect("pre-filled");
            net.load(&stale);
            net.zero_grads();
            let logits = net.forward(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            net.load(&master);
            for s in 0..net.num_stages() {
                let stage = net.stage_mut(s);
                let grads: Vec<Tensor> = stage.grads().into_iter().cloned().collect();
                if grads.is_empty() {
                    continue;
                }
                let grad_refs: Vec<&Tensor> = grads.iter().collect();
                let mut params = stage.params_mut();
                adam[s].step(&mut params, &grad_refs, lr);
            }
            history.push_back(net.snapshot());
        }
    }
    net
}

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let sgdm_hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let adam_lr = 1e-3f32;
    let delays = [0usize, 4, 8, 16, 32];

    println!(
        "== Ablation: Adam vs SGDM under gradient delay ({} seeds) ==\n\
           (SGDM lr={:.4} m={:.4}; Adam lr={adam_lr})\n",
        budget.seeds, sgdm_hp.lr, sgdm_hp.momentum
    );
    let mut table = Table::new(["delay", "SGDM", "Adam"]);
    for &delay in &delays {
        let mut sgdm_accs = Vec::new();
        let mut adam_accs = Vec::new();
        for seed in 0..budget.seeds as u64 {
            let mut rng = StdRng::seed_from_u64(9500 + seed);
            let net = simple_cnn(3, 12, 6, 10, &mut rng);
            let cfg = DelayedConfig::consistent(delay, batch, LrSchedule::constant(sgdm_hp));
            let mut trainer = DelayedTrainer::new(net, cfg);
            for epoch in 0..budget.epochs {
                trainer.train_epoch(&train, seed, epoch);
            }
            sgdm_accs.push(evaluate(trainer.network_mut(), &val, 16).1);

            let mut rng = StdRng::seed_from_u64(9500 + seed);
            let net = simple_cnn(3, 12, 6, 10, &mut rng);
            let mut net =
                train_delayed_adam(net, &train, delay, batch, adam_lr, budget.epochs, seed);
            adam_accs.push(evaluate(&mut net, &val, 16).1);
            eprint!(".");
        }
        let (ms, ss) = mean_std(&sgdm_accs);
        let (ma, sa) = mean_std(&adam_accs);
        table.row([
            delay.to_string(),
            format!("{:.1}±{:.1}%", 100.0 * ms, 100.0 * ss),
            format!("{:.1}±{:.1}%", 100.0 * ma, 100.0 * sa),
        ]);
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Discussion): Adam's per-coordinate normalization damps\n\
         the effective step size, so its accuracy should degrade more slowly\n\
         with delay than momentum SGD's."
    );
}
