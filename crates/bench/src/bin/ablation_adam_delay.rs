//! Ablation (Discussion section): "Optimizers such as ADAM may also
//! increase delay tolerance." Compares SGDM vs Adam under increasing
//! uniform, consistent gradient delay.
//!
//! The delayed-Adam trainer lives in this binary but implements the
//! shared [`TrainEngine`] trait, so both methods run through the same
//! [`run_training`] loop — demonstrating that downstream crates can plug
//! custom engines into the unified runner.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_data::Dataset;
use pbp_nn::loss::softmax_cross_entropy;
use pbp_nn::models::simple_cnn;
use pbp_nn::Network;
use pbp_optim::{scale_hyperparams, AdamState, Hyperparams, LrSchedule};
use pbp_pipeline::{
    run_training, DelayedConfig, EngineMetrics, EngineSpec, MetricsRecorder, NoHooks, RunConfig,
    TrainEngine, SECTION_ENGINE,
};
use pbp_snapshot::{
    SnapshotArchive, SnapshotBuilder, SnapshotError, Snapshottable, StateReader, StateWriter,
};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::Instant;

/// Delayed-gradient Adam training (consistent weights), mirroring
/// [`pbp_pipeline::DelayedTrainer`] with an Adam update rule.
struct DelayedAdam {
    net: Network,
    adam: Vec<AdamState>,
    history: VecDeque<Vec<Vec<Tensor>>>,
    delay: usize,
    batch: usize,
    lr: f32,
    samples_seen: usize,
    metrics: MetricsRecorder,
}

impl DelayedAdam {
    fn new(net: Network, delay: usize, batch: usize, lr: f32) -> Self {
        let adam = (0..net.num_stages())
            .map(|s| AdamState::new(&net.stage(s).params()))
            .collect();
        let history = (0..=delay).map(|_| net.snapshot()).collect();
        let metrics = MetricsRecorder::new(net.num_stages());
        DelayedAdam {
            net,
            adam,
            history,
            delay,
            batch,
            lr,
            samples_seen: 0,
            metrics,
        }
    }
}

impl TrainEngine for DelayedAdam {
    fn label(&self) -> String {
        format!("Adam D={}", self.delay)
    }

    fn train_batch(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let start = Instant::now();
        let master = self.net.snapshot();
        let stale = self.history.pop_front().expect("pre-filled");
        self.net.load(&stale);
        self.net.zero_grads();
        let logits = self.net.forward(x);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        self.net.backward(&grad);
        self.net.load(&master);
        for s in 0..self.net.num_stages() {
            let step_start = Instant::now();
            let stage = self.net.stage_mut(s);
            let grads: Vec<Tensor> = stage.grads().into_iter().cloned().collect();
            if grads.is_empty() {
                continue;
            }
            let grad_refs: Vec<&Tensor> = grads.iter().collect();
            let mut params = stage.params_mut();
            self.adam[s].step(&mut params, &grad_refs, self.lr);
            self.metrics
                .record_update(s, self.delay, step_start.elapsed().as_nanos());
        }
        self.history.push_back(self.net.snapshot());
        self.samples_seen += labels.len();
        self.metrics.add_train_ns(start.elapsed().as_nanos());
        loss
    }

    fn train_epoch(&mut self, data: &Dataset, seed: u64, epoch: usize) -> f64 {
        let order = data.epoch_order(seed, epoch);
        let (total, batches) = TrainEngine::train_range(self, data, &order);
        if batches == 0 {
            0.0
        } else {
            total / batches as f64
        }
    }

    fn train_range(&mut self, data: &Dataset, indices: &[usize]) -> (f64, usize) {
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(self.batch) {
            let (x, labels) = data.batch(chunk);
            total += self.train_batch(&x, &labels) as f64;
            batches += 1;
        }
        (total, batches)
    }

    fn samples_per_update(&self) -> usize {
        self.batch
    }

    fn align_stop(&self, _pos: usize, proposed: usize, epoch_len: usize) -> usize {
        (proposed.div_ceil(self.batch) * self.batch).min(epoch_len)
    }

    // Custom downstream engines participate in fault-tolerant snapshots
    // through the same public API the in-tree engines use.
    fn write_state(&self, snap: &mut SnapshotBuilder) {
        pbp_nn::snapshot::write_network(&self.net, snap);
        let mut w = StateWriter::new();
        w.put_str("adam-ablation");
        w.put_usize(self.samples_seen);
        w.put_u32(self.adam.len() as u32);
        for adam in &self.adam {
            adam.write_state(&mut w);
        }
        w.put_u32(self.history.len() as u32);
        for version in &self.history {
            w.put_u32(version.len() as u32);
            for stage in version {
                w.put_tensor_list(stage);
            }
        }
        self.metrics.write_state(&mut w);
        snap.add_section(SECTION_ENGINE, w.into_bytes());
    }

    fn read_state(&mut self, archive: &SnapshotArchive) -> Result<(), SnapshotError> {
        pbp_nn::snapshot::read_network(&mut self.net, archive)?;
        let mut r = StateReader::new(archive.section(SECTION_ENGINE)?);
        let tag = r.take_str()?;
        if tag != "adam-ablation" {
            return Err(SnapshotError::Mismatch(format!(
                "engine state tagged {tag:?}, engine expects \"adam-ablation\""
            )));
        }
        self.samples_seen = r.take_usize()?;
        let n = r.take_u32()? as usize;
        if n != self.adam.len() {
            return Err(SnapshotError::Mismatch(format!(
                "adam state for {n} stages, engine has {}",
                self.adam.len()
            )));
        }
        for adam in &mut self.adam {
            adam.read_state(&mut r)?;
        }
        let versions = r.take_u32()? as usize;
        if versions != self.delay + 1 {
            return Err(SnapshotError::Mismatch(format!(
                "history holds {versions} versions, delay requires {}",
                self.delay + 1
            )));
        }
        let mut history = VecDeque::with_capacity(versions);
        for _ in 0..versions {
            let stages = r.take_u32()? as usize;
            let mut version = Vec::with_capacity(stages.min(1 << 16));
            for _ in 0..stages {
                version.push(r.take_tensor_list()?);
            }
            history.push_back(version);
        }
        self.history = history;
        self.metrics.read_state(&mut r)?;
        r.finish()
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    fn metrics(&self) -> EngineMetrics {
        self.metrics.snapshot(self.label(), self.samples_seen, None)
    }

    fn into_network(self: Box<Self>) -> Network {
        self.net
    }
}

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let sgdm_hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let adam_lr = 1e-3f32;
    let delays = [0usize, 4, 8, 16, 32];

    println!(
        "== Ablation: Adam vs SGDM under gradient delay ({} seeds) ==\n\
           (SGDM lr={:.4} m={:.4}; Adam lr={adam_lr})\n",
        budget.seeds, sgdm_hp.lr, sgdm_hp.momentum
    );
    let mut table = Table::new(["delay", "SGDM", "Adam"]);
    for &delay in &delays {
        let sgdm_spec = EngineSpec::Delayed(DelayedConfig::consistent(
            delay,
            batch,
            LrSchedule::constant(sgdm_hp),
        ));
        let mut sgdm_accs = Vec::new();
        let mut adam_accs = Vec::new();
        for seed in 0..budget.seeds as u64 {
            let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
            let mut rng = StdRng::seed_from_u64(9500 + seed);
            let mut sgdm = sgdm_spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
            let report = run_training(sgdm.as_mut(), &train, &val, &run_config, &mut NoHooks);
            sgdm_accs.push(report.final_val_acc());

            let mut rng = StdRng::seed_from_u64(9500 + seed);
            let mut adam =
                DelayedAdam::new(simple_cnn(3, 12, 6, 10, &mut rng), delay, batch, adam_lr);
            let report = run_training(&mut adam, &train, &val, &run_config, &mut NoHooks);
            adam_accs.push(report.final_val_acc());
            eprint!(".");
        }
        let (ms, ss) = mean_std(&sgdm_accs);
        let (ma, sa) = mean_std(&adam_accs);
        table.row([
            delay.to_string(),
            format!("{:.1}±{:.1}%", 100.0 * ms, 100.0 * ss),
            format!("{:.1}±{:.1}%", 100.0 * ma, 100.0 * sa),
        ]);
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Discussion): Adam's per-coordinate normalization damps\n\
         the effective step size, so its accuracy should degrade more slowly\n\
         with delay than momentum SGD's."
    );
}
