//! Figure 17 (Appendix H.4): the hyperparameter scaling rules of Eq. 9 —
//! training at batch 1 with scaled (η, m) should match the reference-batch
//! training curve sample-for-sample.

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1500, 300, 6, 3);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let reference_batch = 32usize;
    let reference = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, reference_batch);
    let scaled = scale_hyperparams(reference, reference_batch, 1);

    println!("== Figure 17: Eq. 9 hyperparameter scaling, batch {reference_batch} vs batch 1 ==");
    println!(
        "reference: lr={:.4} m={:.4}   scaled (N=1): lr={:.6} m={:.6}\n",
        reference.lr, reference.momentum, scaled.lr, scaled.momentum
    );

    let mut per_epoch: Vec<(Vec<f64>, Vec<f64>)> = (0..budget.epochs)
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    let big_spec = EngineSpec::Sgdm {
        schedule: LrSchedule::constant(reference),
        batch: reference_batch,
    };
    let one_spec = EngineSpec::Sgdm {
        schedule: LrSchedule::constant(scaled),
        batch: 1,
    };
    for seed in 0..budget.seeds as u64 {
        let run_config = RunConfig::new(budget.epochs, seed);
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let mut big = big_spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let mut one = one_spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
        let big_report = run_training(big.as_mut(), &train, &val, &run_config, &mut NoHooks);
        let one_report = run_training(one.as_mut(), &train, &val, &run_config, &mut NoHooks);
        for (epoch, slot) in per_epoch.iter_mut().enumerate() {
            slot.0.push(big_report.records[epoch].val_acc);
            slot.1.push(one_report.records[epoch].val_acc);
        }
        eprint!(".");
    }
    eprintln!();

    let mut table = Table::new([
        "epoch".to_string(),
        format!("batch {reference_batch}"),
        "batch 1 (scaled)".to_string(),
        "|Δ|".to_string(),
    ]);
    for (epoch, (a, b)) in per_epoch.iter().enumerate() {
        let (ma, sa) = mean_std(a);
        let (mb, sb) = mean_std(b);
        table.row([
            epoch.to_string(),
            format!("{:.1}±{:.1}%", 100.0 * ma, 100.0 * sa),
            format!("{:.1}±{:.1}%", 100.0 * mb, 100.0 * sb),
            format!("{:.2}%", 100.0 * (ma - mb).abs()),
        ]);
    }
    table.print();
    println!(
        "\nPaper check (Fig. 17): the scaled batch-1 run tracks the reference\n\
         batch-{reference_batch} curve within run-to-run noise — the scaling rules let PB\n\
         reuse published large-batch hyperparameters without tuning."
    );
}
