//! Figure 5: minimum error half-life as a function of the condition number
//! κ when optimizing a convex quadratic with delay D = 1.

use pbp_bench::Table;
use pbp_quadratic::{min_halflife, Method};

fn main() {
    let d = 1usize;
    let max_exp: u32 = std::env::var("PBP_KAPPA_EXP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut table = Table::new([
        "κ",
        "GDM D=1",
        "SCD D=1",
        "LWPD D=1",
        "LWPwD+SCD D=1",
        "GDM D=0",
    ]);
    for exp in 0..=max_exp {
        let kappa = 10f64.powi(exp as i32);
        let gdm_d = min_halflife(&|_| Method::Gdm, d, kappa);
        let scd = min_halflife(&|m| Method::scd(m, d), d, kappa);
        let lwp = min_halflife(&|_| Method::lwpd(d), d, kappa);
        let combo = min_halflife(&|m| Method::lwpd_scd(m, d), d, kappa);
        let gdm_0 = min_halflife(&|_| Method::Gdm, 0, kappa);
        table.row([
            format!("1e{exp}"),
            format!("{gdm_d:.1}"),
            format!("{scd:.1}"),
            format!("{lwp:.1}"),
            format!("{combo:.1}"),
            format!("{gdm_0:.1}"),
        ]);
        eprint!("."); // progress
    }
    eprintln!();
    println!("== Figure 5: minimum half-life vs condition number (delay D=1) ==\n");
    table.print();
    println!(
        "\nPaper check (Fig. 5): all mitigation methods improve on delayed GDM,\n\
         the gap grows with κ, LWPwD+SCD is best and approaches the no-delay\n\
         GDM curve."
    );
}
