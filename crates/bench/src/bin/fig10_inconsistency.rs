//! Figure 10 (Appendix B): the effect of weight inconsistency vs gradient
//! staleness. Trains with a uniform delay using either consistent weights
//! (same delayed weights for forward and backward — pure staleness) or
//! forward-only delay (delayed forward, current backward — staleness +
//! inconsistency), across a range of delays.

use pbp_bench::{cifar_data, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{run_training, DelayedConfig, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);
    let delays = [0usize, 1, 2, 4, 8, 16, 32];

    println!("== Figure 10: delayed gradients with consistent vs inconsistent weights ==");
    println!("   (simple CNN w/ GroupNorm, batch {batch}, uniform delay in updates)\n");

    let mut table = Table::new(["delay", "consistent", "forward delay only", "gap"]);
    for &delay in &delays {
        let mut accs = [Vec::new(), Vec::new()];
        for (mode, consistent) in [(0usize, true), (1, false)] {
            let cfg = if consistent {
                DelayedConfig::consistent(delay, batch, LrSchedule::constant(hp))
            } else {
                DelayedConfig::inconsistent(delay, batch, LrSchedule::constant(hp))
            };
            let spec = EngineSpec::Delayed(cfg);
            for seed in 0..budget.seeds as u64 {
                let mut rng = StdRng::seed_from_u64(3000 + seed);
                let mut engine = spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
                let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
                let report = run_training(engine.as_mut(), &train, &val, &run_config, &mut NoHooks);
                accs[mode].push(report.final_val_acc());
            }
            eprint!(".");
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (c, f) = (mean(&accs[0]), mean(&accs[1]));
        table.row([
            delay.to_string(),
            format!("{:.1}%", 100.0 * c),
            format!("{:.1}%", 100.0 * f),
            format!("{:+.1}%", 100.0 * (c - f)),
        ]);
    }
    eprintln!();
    table.print();
    println!(
        "\nPaper check (Fig. 10): accuracy degrades with delay even with\n\
         consistent weights (stale gradients alone hurt); weight inconsistency\n\
         adds little at small delays and only bites at large ones."
    );
}
