//! Chaos smoke test for the supervised threaded pipeline: injects a
//! seeded stage panic *and* a stage stall into a threaded fill-and-drain
//! run, lets the supervisor recover it from snapshots, and asserts the
//! recovered run is bit-identical (records and final validation metrics)
//! to an uninterrupted reference run. Exercised by `scripts/check.sh`.

use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule};
use pbp_pipeline::{
    run_supervised, run_training_with_snapshots, EngineSpec, FaultPlan, FaultSpec, NoHooks,
    RecoveryPolicy, RunConfig, SnapshotPolicy, SupervisionEvent, ThreadedConfig, Watchdog,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0xC405);
    mlp(&[2, 16, 3], &mut rng)
}

fn schedule() -> LrSchedule {
    LrSchedule::constant(Hyperparams::new(0.05, 0.9))
}

fn main() {
    let data = pbp_data::blobs(3, 40, 0.4, 78);
    let (train, val) = data.split(0.25);
    let config = RunConfig::new(2, 7);
    let base = std::env::temp_dir().join(format!("pbp_chaos_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    eprintln!("== chaos smoke: seeded panic + stall under supervision ==");

    // Reference: uninterrupted threaded fill&drain run.
    let clean_spec = EngineSpec::Threaded(ThreadedConfig::fill_drain(schedule()));
    let mut reference = clean_spec.build(fresh_net());
    let report_ref = run_training_with_snapshots(
        reference.as_mut(),
        &train,
        &val,
        &config,
        &SnapshotPolicy::new(base.join("ref"), 20),
        &mut NoHooks,
    )
    .expect("reference run");

    // Victim: same engine with a one-shot panic at stage 1, update 30,
    // and a one-shot 400 ms stall at stage 0, update 55 — both beyond the
    // watchdog's tolerance, each forcing one supervised restart.
    let plan = FaultPlan::new(0xC405)
        .with(FaultSpec::panic_at(1, 30))
        .with(FaultSpec::stall_at(0, 55, Duration::from_millis(400)));
    let chaos_spec = EngineSpec::Threaded(
        ThreadedConfig::fill_drain(schedule())
            .with_fault_plan(plan)
            .with_watchdog(Watchdog::fast().with_stall_timeout(Duration::from_millis(150))),
    );
    let outcome = run_supervised(
        &chaos_spec,
        &mut fresh_net,
        &train,
        &val,
        &config,
        &SnapshotPolicy::new(base.join("chaos"), 20),
        &RecoveryPolicy::immediate(4),
        &mut NoHooks,
    )
    .expect("supervised run must recover");

    for event in &outcome.events {
        eprintln!("  supervision: {event}");
    }
    assert!(
        outcome.restarts >= 2,
        "both injected faults should have fired (restarts = {})",
        outcome.restarts
    );
    assert!(!outcome.degraded, "transient faults must not degrade");
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e, SupervisionEvent::Fault { .. })));

    assert_eq!(report_ref.records.len(), outcome.report.records.len());
    for (a, b) in report_ref.records.iter().zip(&outcome.report.records) {
        assert_eq!(
            a, b,
            "recovered run diverged from the uninterrupted reference"
        );
    }
    let last = outcome.report.records.last().expect("records");
    eprintln!(
        "recovered through {} restarts; final val acc {:.3} matches reference bit-for-bit",
        outcome.restarts, last.val_acc
    );

    let _ = std::fs::remove_dir_all(&base);
    eprintln!("chaos smoke OK");
}
