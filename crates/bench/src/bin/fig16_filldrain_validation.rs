//! Figure 16 (Appendix H.2): framework validation — batch-parallel SGD
//! and fill-and-drain pipeline SGD must optimize identically (they are the
//! same algorithm on different schedules). The paper validated GProp's two
//! SGD modes against PyTorch; here the reference implementation is the
//! sequential [`SgdmTrainer`].

use pbp_bench::{cifar_data, mean_std, Budget, Table};
use pbp_nn::models::{vgg, VggVariant};
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(1200, 300, 6, 4);
    let (train, val) = cifar_data(32, budget.train_samples, budget.val_samples);
    let batch = 32usize;
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, batch);

    println!(
        "== Figure 16: batch-parallel SGD vs fill&drain SGD (VGG11, {} seeds) ==\n",
        budget.seeds
    );
    let mut table = Table::new(["epoch", "batch SGD val acc", "fill&drain val acc", "|Δ|"]);
    let mut per_epoch: Vec<(Vec<f64>, Vec<f64>)> = (0..budget.epochs)
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    let mut util = 0.0;

    let sgd_spec = EngineSpec::Sgdm {
        schedule: LrSchedule::constant(hp),
        batch,
    };
    let fd_spec = EngineSpec::FillDrain {
        schedule: LrSchedule::constant(hp),
        update_size: batch,
    };
    for seed in 0..budget.seeds as u64 {
        let run_config = RunConfig::new(budget.epochs, seed);
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let mut sgd = sgd_spec.build(vgg(VggVariant::Vgg11, 16, 3, 10, 0.2, &mut rng));
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let mut fd = fd_spec.build(vgg(VggVariant::Vgg11, 16, 3, 10, 0.2, &mut rng));
        let sgd_report = run_training(sgd.as_mut(), &train, &val, &run_config, &mut NoHooks);
        let fd_report = run_training(fd.as_mut(), &train, &val, &run_config, &mut NoHooks);
        for (epoch, slot) in per_epoch.iter_mut().enumerate() {
            slot.0.push(sgd_report.records[epoch].val_acc);
            slot.1.push(fd_report.records[epoch].val_acc);
        }
        util = fd.metrics().occupancy.unwrap_or(0.0);
        eprint!(".");
    }
    eprintln!();

    for (epoch, (a, b)) in per_epoch.iter().enumerate() {
        let (ma, sa) = mean_std(a);
        let (mb, sb) = mean_std(b);
        table.row([
            epoch.to_string(),
            format!("{:.1}±{:.1}%", 100.0 * ma, 100.0 * sa),
            format!("{:.1}±{:.1}%", 100.0 * mb, 100.0 * sb),
            format!("{:.2}%", 100.0 * (ma - mb).abs()),
        ]);
    }
    table.print();
    println!(
        "\nfill&drain pipeline utilization at N={batch} over {} stages: {:.1}% \
         (Eq. 1 bound)",
        VggVariant::Vgg11.expected_stage_count(),
        100.0 * util
    );
    println!(
        "\nPaper check (Fig. 16): the two SGD modes produce statistically\n\
         indistinguishable training curves — the pipeline schedule changes\n\
         utilization, not optimization."
    );
}
