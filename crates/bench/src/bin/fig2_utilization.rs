//! Figure 2 / Eq. 1: pipeline utilization of fill-and-drain SGD vs
//! pipelined backpropagation, plus a rendering of the schedule diagrams.

use pbp_bench::Table;
use pbp_pipeline::{fill_drain_utilization, ScheduleModel, StageActivity};

fn main() {
    println!("== Figure 2 / Eq. 1: utilization of pipeline-parallel training ==\n");

    // Utilization table across batch sizes and stage counts. Stage counts
    // match the paper's networks (Table 1).
    let stage_counts = [
        ("VGG11", 29usize),
        ("RN20", 34),
        ("RN50", 78),
        ("RN110", 169),
    ];
    let mut table = Table::new(["network", "S", "N=1", "N=32", "N=256", "PB (steady state)"]);
    for (name, s) in stage_counts {
        table.row([
            name.to_string(),
            s.to_string(),
            format!("{:.1}%", 100.0 * fill_drain_utilization(1, s)),
            format!("{:.1}%", 100.0 * fill_drain_utilization(32, s)),
            format!("{:.1}%", 100.0 * fill_drain_utilization(256, s)),
            "100.0%".to_string(),
        ]);
    }
    table.print();

    // Schedule diagrams (Figure 2's three panels) for a small pipeline.
    let model = ScheduleModel::new(6);
    let render = |grid: &[Vec<StageActivity>], steps: usize| {
        for stage in 0..6 {
            let line: String = grid
                .iter()
                .take(steps)
                .map(|row| match row[stage] {
                    StageActivity::Idle => '.',
                    StageActivity::Forward => 'F',
                    StageActivity::Backward => 'B',
                    StageActivity::Both => '#',
                })
                .collect();
            println!("stage {stage}: {line}");
        }
    };

    println!("\nFill & drain, N=1 (utilization {:.1}%):", {
        let g = model.fill_drain_schedule(1, 3);
        100.0 * ScheduleModel::utilization(&g)
    });
    render(&model.fill_drain_schedule(1, 3), 33);

    println!("\nFill & drain, N=8 (utilization {:.1}%):", {
        let g = model.fill_drain_schedule(8, 2);
        100.0 * ScheduleModel::utilization(&g)
    });
    render(&model.fill_drain_schedule(8, 2), 36);

    let pb = model.pb_schedule(36);
    println!(
        "\nPipelined backpropagation (utilization → 100% after fill; run avg {:.1}%):",
        100.0 * ScheduleModel::utilization(&pb)
    );
    render(&pb, 36);

    println!("\nLegend: '.' idle, 'F' forward only, 'B' backward only, '#' forward+backward");
    println!("\nPaper check: Eq. 1 bounds fill&drain utilization by N/(N+2S);");
    println!("PB removes the bound entirely — matching Figure 2's diagrams.");
}
