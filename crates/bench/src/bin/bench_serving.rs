//! Serving benchmark: dynamic batching vs per-sample inference on a CNN.
//!
//! Three lanes over the same `simple_cnn` network:
//!
//! * **baseline** — a sequential per-sample forward loop (no server): the
//!   throughput the repo had before batched conv lowering, and the
//!   reference every served reply is compared to bit for bit.
//! * **closed-loop** — all requests queued against a one-worker
//!   [`Server`] at several batch budgets; QPS isolates what batching alone
//!   buys (`max_batch: 1` runs the identical machinery without
//!   coalescing).
//! * **open-loop** — requests arrive on a fixed interval at ~35% of the
//!   closed-loop batch-64 capacity, measuring the p50/p99 latency a client
//!   actually sees when the server is not saturated.
//!
//! Writes `results/BENCH_serving.json`. The acceptance bar is the
//! `speedup_vs_baseline_at_64` field: batched CNN serving must beat the
//! per-sample baseline by ≥ 3×. `PBP_BENCH_SMOKE=1` runs a scaled-down
//! pass with every assertion live and leaves the committed JSON untouched.

use pbp_bench::{percentile, Table};
use pbp_nn::models::vgg_cnn;
use pbp_nn::Network;
use pbp_serve::{ServeConfig, Server};
use pbp_tensor::{normal, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const IN_CHANNELS: usize = 3;
const WIDTH: usize = 16;
const DEPTH: usize = 2;
const HIDDEN: usize = 256;
const CLASSES: usize = 10;
const IMAGE: usize = 16;

/// The served model: a small VGG-style classifier (conv trunk + fc head).
/// The fc head makes batch-1 inference memory-bound on the fc weights, so
/// batching pays exactly where it does for real serving workloads.
fn build_net() -> Network {
    vgg_cnn(
        IN_CHANNELS,
        WIDTH,
        DEPTH,
        IMAGE,
        HIDDEN,
        CLASSES,
        &mut StdRng::seed_from_u64(42),
    )
}

fn request_inputs(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| normal(&[IN_CHANNELS, IMAGE, IMAGE], 0.0, 1.0, &mut rng))
        .collect()
}

struct Lane {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    max_coalesced: usize,
    batches: u64,
}

/// Sequential per-sample forward loop in eval mode — the pre-serving
/// baseline. Returns the lane plus the per-input reference logits.
fn baseline_lane(inputs: &[Tensor]) -> (Lane, Vec<Tensor>) {
    let mut net = build_net();
    net.set_training(false);
    let mut latencies = Vec::with_capacity(inputs.len());
    let mut replies = Vec::with_capacity(inputs.len());
    let started = Instant::now();
    for x in inputs {
        let t = Instant::now();
        let mut shape = vec![1];
        shape.extend_from_slice(x.shape());
        let batched = Tensor::from_vec(x.as_slice().to_vec(), &shape).unwrap();
        let y = net.forward(&batched);
        net.clear_stash();
        replies.push(Tensor::from_vec(y.as_slice().to_vec(), &y.shape()[1..]).unwrap());
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let wall = started.elapsed().as_secs_f64();
    (
        Lane {
            qps: inputs.len() as f64 / wall,
            p50_us: percentile(&latencies, 0.5),
            p99_us: percentile(&latencies, 0.99),
            max_coalesced: 1,
            batches: inputs.len() as u64,
        },
        replies,
    )
}

fn assert_replies_match(got: &Tensor, want: &Tensor, context: &str) {
    assert_eq!(got.shape(), want.shape(), "{context}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{context}: element {i} differs: {g} vs {w}"
        );
    }
}

/// All requests queued up front against a one-worker server: throughput
/// under saturation. Latencies include queueing, so QPS is the headline
/// number; every reply is checked bit-identical to the baseline.
fn closed_loop_lane(inputs: &[Tensor], reference: &[Tensor], max_batch: usize) -> Lane {
    let server = Server::start(
        vec![build_net()],
        ServeConfig {
            max_batch,
            deadline: Duration::from_micros(500),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let started = Instant::now();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| {
            (
                Instant::now(),
                client.submit(x.clone()).expect("submit under load"),
            )
        })
        .collect();
    let mut latencies = Vec::with_capacity(inputs.len());
    for (i, (submitted, pending)) in pendings.into_iter().enumerate() {
        let reply = pending.wait().expect("closed-loop reply");
        latencies.push(submitted.elapsed().as_secs_f64() * 1e6);
        assert_replies_match(&reply, &reference[i], "closed-loop reply");
    }
    let wall = started.elapsed().as_secs_f64();
    let (_, stats) = server.shutdown();
    Lane {
        qps: inputs.len() as f64 / wall,
        p50_us: percentile(&latencies, 0.5),
        p99_us: percentile(&latencies, 0.99),
        max_coalesced: stats.max_coalesced,
        batches: stats.batches,
    }
}

/// Fixed-interval arrivals below capacity: the latency a client sees when
/// the batcher's deadline — not the queue — shapes the batches. The wider
/// deadline lets batches grow enough that the per-sample service rate
/// comfortably exceeds the arrival rate.
fn open_loop_lane(inputs: &[Tensor], reference: &[Tensor], target_qps: f64) -> (Lane, f64) {
    let server = Server::start(
        vec![build_net()],
        ServeConfig {
            max_batch: 64,
            deadline: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let interval = Duration::from_secs_f64(1.0 / target_qps);
    // A collector thread drains replies in FIFO order *while* arrivals
    // continue, stamping each latency the moment its reply is available —
    // replies come back in submission order (FIFO batcher), so the wait
    // only blocks on genuinely outstanding work.
    let (tx, rx) = std::sync::mpsc::channel();
    let reference = reference.to_vec();
    let collector = std::thread::spawn(move || {
        let mut latencies = Vec::new();
        for (i, (submitted, pending)) in rx.iter().enumerate() {
            let pending: pbp_serve::Pending = pending;
            let submitted: Instant = submitted;
            let reply = pending.wait().expect("open-loop reply");
            latencies.push(submitted.elapsed().as_secs_f64() * 1e6);
            assert_replies_match(&reply, &reference[i], "open-loop reply");
        }
        latencies
    });
    let started = Instant::now();
    for (i, x) in inputs.iter().enumerate() {
        let due = started + interval * i as u32;
        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        let pending = client.submit(x.clone()).expect("submit");
        tx.send((Instant::now(), pending)).expect("collector alive");
    }
    drop(tx);
    let latencies = collector.join().expect("collector thread");
    let wall = started.elapsed().as_secs_f64();
    let (_, stats) = server.shutdown();
    (
        Lane {
            qps: inputs.len() as f64 / wall,
            p50_us: percentile(&latencies, 0.5),
            p99_us: percentile(&latencies, 0.99),
            max_coalesced: stats.max_coalesced,
            batches: stats.batches,
        },
        target_qps,
    )
}

fn main() {
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    let n = if smoke { 256 } else { 2048 };
    let inputs = request_inputs(n, 7);

    println!("== Serving benchmark: dynamic batching vs per-sample inference ==");
    println!(
        "(vgg_cnn {IN_CHANNELS}x{IMAGE}x{IMAGE} -> {CLASSES} classes, width {WIDTH}, depth \
         {DEPTH}, fc {HIDDEN}; {n} requests; every served reply bit-identical to the baseline \
         forward)\n"
    );

    let (baseline, reference) = baseline_lane(&inputs);

    let budgets: &[usize] = if smoke { &[1, 64] } else { &[1, 8, 64] };
    let closed: Vec<(usize, Lane)> = budgets
        .iter()
        .map(|&b| (b, closed_loop_lane(&inputs, &reference, b)))
        .collect();

    let batch64 = &closed.last().expect("batch-64 lane").1;
    let open_target = (batch64.qps * 0.35).max(50.0);
    let (open, target_qps) = open_loop_lane(&inputs, &reference, open_target);

    let mut table = Table::new([
        "serving lane",
        "qps",
        "p50 us",
        "p99 us",
        "max batch seen",
        "batches",
        "x vs baseline",
    ]);
    table.row([
        "baseline (per-sample loop)".to_string(),
        format!("{:.0}", baseline.qps),
        format!("{:.0}", baseline.p50_us),
        format!("{:.0}", baseline.p99_us),
        "1".to_string(),
        format!("{}", baseline.batches),
        "1.0".to_string(),
    ]);
    for (budget, lane) in &closed {
        table.row([
            format!("closed-loop max_batch={budget}"),
            format!("{:.0}", lane.qps),
            format!("{:.0}", lane.p50_us),
            format!("{:.0}", lane.p99_us),
            format!("{}", lane.max_coalesced),
            format!("{}", lane.batches),
            format!("{:.2}", lane.qps / baseline.qps),
        ]);
    }
    table.row([
        format!("open-loop @ {target_qps:.0} qps"),
        format!("{:.0}", open.qps),
        format!("{:.0}", open.p50_us),
        format!("{:.0}", open.p99_us),
        format!("{}", open.max_coalesced),
        format!("{}", open.batches),
        format!("{:.2}", open.qps / baseline.qps),
    ]);
    table.print();

    let speedup = batch64.qps / baseline.qps;
    println!("\nbatch-64 closed-loop speedup vs per-sample baseline: {speedup:.2}x");
    assert!(
        batch64.max_coalesced > 1,
        "closed-loop batch-64 lane never coalesced"
    );

    if smoke {
        println!("smoke mode: results/BENCH_serving.json left untouched");
        return;
    }
    assert!(
        speedup >= 3.0,
        "acceptance: batched CNN serving must be >= 3x the per-sample baseline, got {speedup:.2}x"
    );

    let mut json = String::from("{\n  \"bench\": \"serving\",\n");
    let _ = writeln!(
        json,
        "  \"model\": \"vgg_cnn({IN_CHANNELS},{WIDTH},{DEPTH},{IMAGE},{HIDDEN},{CLASSES}) @ \
         {IN_CHANNELS}x{IMAGE}x{IMAGE}\",\n  \"requests\": {n},\n  \"workers\": 1,"
    );
    let lane_json = |name: &str, lane: &Lane| {
        format!(
            "  \"{name}\": {{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"max_coalesced\": {}, \"batches\": {}}}",
            lane.qps, lane.p50_us, lane.p99_us, lane.max_coalesced, lane.batches
        )
    };
    let _ = writeln!(json, "{},", lane_json("baseline", &baseline));
    json.push_str("  \"closed_loop\": [\n");
    for (i, (budget, lane)) in closed.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {budget}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"max_coalesced\": {}, \"batches\": {}}}{}",
            lane.qps,
            lane.p50_us,
            lane.p99_us,
            lane.max_coalesced,
            lane.batches,
            if i + 1 < closed.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"open_loop_target_qps\": {target_qps:.1},\n{},",
        lane_json("open_loop", &open)
    );
    let _ = writeln!(
        json,
        "  \"speedup_vs_baseline_at_64\": {speedup:.2},\n  \"replies_bit_identical\": true\n}}"
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote results/BENCH_serving.json");
}
