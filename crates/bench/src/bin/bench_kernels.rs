//! Kernel benchmark: naive reference vs tiled vs pool-parallel GEMM and
//! conv paths, with bit-identity verification on every timed configuration.
//!
//! Prints comparison tables and writes `results/BENCH_kernels.json` with
//! per-size timings, GFLOP/s, and speedups over the naive reference. The
//! acceptance bar for the kernels layer is the `gemm` entry at 256: the
//! tiled-parallel path must beat the naive reference by ≥ 5×.

use pbp_bench::Table;
use pbp_tensor::ops::{conv2d, conv2d_backward, gemm_nn, reference, Conv2dSpec};
use pbp_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-runs wall time for `f`, in seconds, after a warmup call.
fn time_it(mut f: impl FnMut()) -> f64 {
    f();
    let mut samples = Vec::new();
    let budget_start = Instant::now();
    while samples.len() < 5 || (budget_start.elapsed().as_secs_f64() < 0.25 && samples.len() < 50) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn assert_bits_eq(got: &[f32], want: &[f32], context: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{context}: element {i} differs: {g} vs {w}"
        );
    }
}

struct GemmRow {
    n: usize,
    naive_s: f64,
    tiled_s: f64,
    parallel_s: f64,
}

struct ConvRow {
    label: String,
    naive_fwd_s: f64,
    gemm_fwd_s: f64,
    gemm_fwd_par_s: f64,
    naive_bwd_s: f64,
    gemm_bwd_s: f64,
}

fn bench_gemm(n: usize) -> GemmRow {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let a = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
    let b = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
    let (asl, bsl) = (a.as_slice(), b.as_slice());
    let mut want = vec![0.0f32; n * n];
    reference::matmul_ref(asl, bsl, &mut want, n, n, n);
    let mut out = vec![0.0f32; n * n];

    let naive_s = time_it(|| {
        reference::matmul_ref(black_box(asl), black_box(bsl), &mut out, n, n, n);
    });
    assert_bits_eq(&out, &want, "naive");

    pool::set_max_threads(1);
    let tiled_s = time_it(|| {
        gemm_nn(black_box(asl), black_box(bsl), &mut out, n, n, n, false);
    });
    assert_bits_eq(&out, &want, "tiled");

    pool::set_max_threads(8);
    let parallel_s = time_it(|| {
        gemm_nn(black_box(asl), black_box(bsl), &mut out, n, n, n, false);
    });
    assert_bits_eq(&out, &want, "parallel");
    pool::set_max_threads(1);

    GemmRow {
        n,
        naive_s,
        tiled_s,
        parallel_s,
    }
}

fn bench_conv(ch: usize, size: usize) -> ConvRow {
    let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
    let mut rng = StdRng::seed_from_u64((ch * size) as u64);
    let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
    let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);

    let want = reference::conv2d_ref(&input, &weight, &spec);
    let naive_fwd_s = time_it(|| {
        black_box(reference::conv2d_ref(
            black_box(&input),
            black_box(&weight),
            &spec,
        ));
    });

    pool::set_max_threads(1);
    let (got, cols) = conv2d(&input, &weight, &spec).unwrap();
    assert_bits_eq(got.as_slice(), want.as_slice(), "conv gemm fwd");
    let gemm_fwd_s = time_it(|| {
        black_box(conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
    });
    pool::set_max_threads(8);
    let gemm_fwd_par_s = time_it(|| {
        black_box(conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
    });
    pool::set_max_threads(1);

    let grad = Tensor::ones(want.shape());
    let (want_gx, want_gw) = reference::conv2d_backward_ref(&grad, &input, &weight, &spec);
    let naive_bwd_s = time_it(|| {
        black_box(reference::conv2d_backward_ref(
            black_box(&grad),
            &input,
            &weight,
            &spec,
        ));
    });
    let (gx, gw) = conv2d_backward(&grad, &weight, &cols, (size, size), &spec).unwrap();
    assert_bits_eq(gx.as_slice(), want_gx.as_slice(), "conv gemm bwd gx");
    assert_bits_eq(gw.as_slice(), want_gw.as_slice(), "conv gemm bwd gw");
    let gemm_bwd_s = time_it(|| {
        black_box(conv2d_backward(black_box(&grad), &weight, &cols, (size, size), &spec).unwrap());
    });

    ConvRow {
        label: format!("{ch}c{size}px"),
        naive_fwd_s,
        gemm_fwd_s,
        gemm_fwd_par_s,
        naive_bwd_s,
        gemm_bwd_s,
    }
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

fn main() {
    // `PBP_BENCH_SMOKE=1` is the scripts/check.sh gate: a quick pass over the
    // smaller shapes that still runs every bit-identity assertion, but leaves
    // the committed results/BENCH_kernels.json untouched.
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    println!("== Kernel benchmark: naive vs tiled vs pool-parallel ==");
    println!("(every timed path verified bit-identical to the reference)\n");

    let gemm_sizes: &[usize] = if smoke { &[64, 128] } else { &[64, 128, 256] };
    let gemm_rows: Vec<GemmRow> = gemm_sizes.iter().map(|&n| bench_gemm(n)).collect();
    let mut table = Table::new([
        "gemm n",
        "naive ms",
        "tiled ms",
        "par ms",
        "tiled gflop/s",
        "tiled x",
        "par x",
    ]);
    for r in &gemm_rows {
        table.row([
            format!("{0}x{0}x{0}", r.n),
            format!("{:.3}", r.naive_s * 1e3),
            format!("{:.3}", r.tiled_s * 1e3),
            format!("{:.3}", r.parallel_s * 1e3),
            format!("{:.2}", gflops(r.n, r.tiled_s)),
            format!("{:.1}", r.naive_s / r.tiled_s),
            format!("{:.1}", r.naive_s / r.parallel_s),
        ]);
    }
    table.print();

    let conv_configs: &[(usize, usize)] = if smoke {
        &[(16, 16)]
    } else {
        &[(16, 16), (32, 12)]
    };
    let conv_rows: Vec<ConvRow> = conv_configs
        .iter()
        .map(|&(c, s)| bench_conv(c, s))
        .collect();
    let mut table = Table::new([
        "conv3x3",
        "naive fwd ms",
        "gemm fwd ms",
        "par fwd ms",
        "naive bwd ms",
        "gemm bwd ms",
        "fwd x",
        "bwd x",
    ]);
    for r in &conv_rows {
        table.row([
            r.label.clone(),
            format!("{:.3}", r.naive_fwd_s * 1e3),
            format!("{:.3}", r.gemm_fwd_s * 1e3),
            format!("{:.3}", r.gemm_fwd_par_s * 1e3),
            format!("{:.3}", r.naive_bwd_s * 1e3),
            format!("{:.3}", r.gemm_bwd_s * 1e3),
            format!("{:.1}", r.naive_fwd_s / r.gemm_fwd_s),
            format!("{:.1}", r.naive_bwd_s / r.gemm_bwd_s),
        ]);
    }
    table.print();

    if smoke {
        println!("\nsmoke mode: results/BENCH_kernels.json left untouched");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"kernels\",\n  \"gemm\": [\n");
    for (i, r) in gemm_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"naive_ms\": {:.4}, \"tiled_ms\": {:.4}, \"parallel_ms\": {:.4}, \
             \"tiled_gflops\": {:.3}, \"tiled_speedup\": {:.2}, \"parallel_speedup\": {:.2}, \
             \"bit_identical\": true}}{}",
            r.n,
            r.naive_s * 1e3,
            r.tiled_s * 1e3,
            r.parallel_s * 1e3,
            gflops(r.n, r.tiled_s),
            r.naive_s / r.tiled_s,
            r.naive_s / r.parallel_s,
            if i + 1 < gemm_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"conv\": [\n");
    for (i, r) in conv_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"naive_fwd_ms\": {:.4}, \"gemm_fwd_ms\": {:.4}, \
             \"parallel_fwd_ms\": {:.4}, \"naive_bwd_ms\": {:.4}, \"gemm_bwd_ms\": {:.4}, \
             \"fwd_speedup\": {:.2}, \"bwd_speedup\": {:.2}, \"bit_identical\": true}}{}",
            r.label,
            r.naive_fwd_s * 1e3,
            r.gemm_fwd_s * 1e3,
            r.gemm_fwd_par_s * 1e3,
            r.naive_bwd_s * 1e3,
            r.gemm_bwd_s * 1e3,
            r.naive_fwd_s / r.gemm_fwd_s,
            r.naive_bwd_s / r.gemm_bwd_s,
            if i + 1 < conv_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote results/BENCH_kernels.json");
}
