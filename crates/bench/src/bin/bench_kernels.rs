//! Kernel benchmark: naive reference vs scalar-tiled vs SIMD vs
//! pool-parallel GEMM and conv paths, plus batched-evaluation timing, with
//! bit-identity verification on every timed configuration.
//!
//! The `tiled` lane pins the scalar register tile (`SimdTier::Scalar`);
//! the `simd` lane runs whatever tier `PBP_SIMD` + CPU detection resolve
//! to, so `PBP_SIMD=0 bench_kernels` degenerates both lanes to scalar and
//! still passes every assertion — that is the escape-hatch smoke
//! `scripts/check.sh` runs. All lanes are bit-identical by the fma
//! accumulation contract, so every speedup is free of numeric drift.
//!
//! Prints comparison tables and writes `results/BENCH_kernels.json` with
//! per-size timings, GFLOP/s, and speedups over the naive reference. The
//! acceptance bar for the kernels layer is the `gemm` entry at 256: the
//! tiled-parallel path must beat the naive reference by ≥ 5×.

use pbp_bench::{cifar_data, Table};
use pbp_nn::models::{mlp, simple_cnn, vgg_cnn};
use pbp_pipeline::evaluate;
use pbp_tensor::ops::simd::{self, SimdTier};
use pbp_tensor::ops::{
    conv2d, conv2d_backward, conv2d_batched_reusing, gemm_nn, reference, Conv2dSpec,
    ConvBatchScratch,
};
use pbp_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-runs wall time for `f`, in seconds, after a warmup call.
fn time_it(mut f: impl FnMut()) -> f64 {
    f();
    let mut samples = Vec::new();
    let budget_start = Instant::now();
    while samples.len() < 5 || (budget_start.elapsed().as_secs_f64() < 0.25 && samples.len() < 50) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn assert_bits_eq(got: &[f32], want: &[f32], context: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{context}: element {i} differs: {g} vs {w}"
        );
    }
}

struct GemmRow {
    n: usize,
    naive_s: f64,
    tiled_s: f64,
    simd_s: f64,
    parallel_s: f64,
}

struct ConvRow {
    label: String,
    naive_fwd_s: f64,
    gemm_fwd_s: f64,
    gemm_fwd_par_s: f64,
    naive_bwd_s: f64,
    gemm_bwd_s: f64,
}

fn bench_gemm(n: usize, simd_tier: SimdTier) -> GemmRow {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let a = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
    let b = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
    let (asl, bsl) = (a.as_slice(), b.as_slice());
    let mut want = vec![0.0f32; n * n];
    reference::matmul_ref(asl, bsl, &mut want, n, n, n);
    let mut out = vec![0.0f32; n * n];

    let naive_s = time_it(|| {
        reference::matmul_ref(black_box(asl), black_box(bsl), &mut out, n, n, n);
    });
    assert_bits_eq(&out, &want, "naive");

    // Tiled lane: scalar register tile, serial — the pre-SIMD baseline.
    pool::set_max_threads(1);
    simd::set_tier(SimdTier::Scalar);
    let tiled_s = time_it(|| {
        gemm_nn(black_box(asl), black_box(bsl), &mut out, n, n, n, false);
    });
    assert_bits_eq(&out, &want, "tiled");

    // SIMD lane: same tiling, register tiles on the resolved tier.
    simd::set_tier(simd_tier);
    let simd_s = time_it(|| {
        gemm_nn(black_box(asl), black_box(bsl), &mut out, n, n, n, false);
    });
    assert_bits_eq(&out, &want, "simd");

    pool::set_max_threads(8);
    let parallel_s = time_it(|| {
        gemm_nn(black_box(asl), black_box(bsl), &mut out, n, n, n, false);
    });
    assert_bits_eq(&out, &want, "parallel");
    pool::set_max_threads(1);

    GemmRow {
        n,
        naive_s,
        tiled_s,
        simd_s,
        parallel_s,
    }
}

struct EvalRow {
    model: &'static str,
    batch: usize,
    eval_s: f64,
    loss: f64,
    acc: f64,
}

/// Times `evaluate` over `data` at several batch sizes and asserts the
/// metrics are exactly equal at every size — the batched path is a
/// throughput knob, not a numerics knob. Dense networks collapse each
/// batch into one GEMM; conv networks in eval mode lower the whole batch
/// into one wide im2col GEMM (`conv2d_batched`), so both families convert
/// batch size directly into GEMM width.
fn bench_eval(
    model: &'static str,
    net: &mut pbp_nn::Network,
    data: &pbp_data::Dataset,
    batches: &[usize],
) -> Vec<EvalRow> {
    let rows: Vec<EvalRow> = batches
        .iter()
        .map(|&batch| {
            let (loss, acc) = evaluate(net, data, batch);
            let eval_s = time_it(|| {
                black_box(evaluate(net, data, batch));
            });
            EvalRow {
                model,
                batch,
                eval_s,
                loss,
                acc,
            }
        })
        .collect();
    for r in &rows[1..] {
        assert!(
            r.loss.to_bits() == rows[0].loss.to_bits() && r.acc == rows[0].acc,
            "{model} eval metrics drifted at batch {}: ({}, {}) vs ({}, {})",
            r.batch,
            r.loss,
            r.acc,
            rows[0].loss,
            rows[0].acc
        );
    }
    rows
}

fn bench_conv(ch: usize, size: usize) -> ConvRow {
    let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
    let mut rng = StdRng::seed_from_u64((ch * size) as u64);
    let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
    let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);

    let want = reference::conv2d_ref(&input, &weight, &spec);
    let naive_fwd_s = time_it(|| {
        black_box(reference::conv2d_ref(
            black_box(&input),
            black_box(&weight),
            &spec,
        ));
    });

    pool::set_max_threads(1);
    let (got, cols) = conv2d(&input, &weight, &spec).unwrap();
    assert_bits_eq(got.as_slice(), want.as_slice(), "conv gemm fwd");
    let gemm_fwd_s = time_it(|| {
        black_box(conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
    });
    pool::set_max_threads(8);
    let gemm_fwd_par_s = time_it(|| {
        black_box(conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
    });
    pool::set_max_threads(1);

    let grad = Tensor::ones(want.shape());
    let (want_gx, want_gw) = reference::conv2d_backward_ref(&grad, &input, &weight, &spec);
    let naive_bwd_s = time_it(|| {
        black_box(reference::conv2d_backward_ref(
            black_box(&grad),
            &input,
            &weight,
            &spec,
        ));
    });
    let (gx, gw) = conv2d_backward(&grad, &weight, &cols, (size, size), &spec).unwrap();
    assert_bits_eq(gx.as_slice(), want_gx.as_slice(), "conv gemm bwd gx");
    assert_bits_eq(gw.as_slice(), want_gw.as_slice(), "conv gemm bwd gw");
    let gemm_bwd_s = time_it(|| {
        black_box(conv2d_backward(black_box(&grad), &weight, &cols, (size, size), &spec).unwrap());
    });

    ConvRow {
        label: format!("{ch}c{size}px"),
        naive_fwd_s,
        gemm_fwd_s,
        gemm_fwd_par_s,
        naive_bwd_s,
        gemm_bwd_s,
    }
}

struct ConvBatchedRow {
    label: String,
    batch: usize,
    per_sample_s: f64,
    batched_s: f64,
}

/// Batched conv lowering vs a per-sample `conv2d` loop over the same
/// batch, bit-identity asserted between the two (the wide GEMM preserves
/// every per-element fma chain).
fn bench_conv_batched(ch: usize, size: usize, batch: usize) -> ConvBatchedRow {
    let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
    let mut rng = StdRng::seed_from_u64((ch * size + batch) as u64);
    let input = pbp_tensor::normal(&[batch, ch, size, size], 0.0, 1.0, &mut rng);
    let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);

    pool::set_max_threads(1);
    let (want, _) = conv2d(&input, &weight, &spec).unwrap();
    let mut scratch = ConvBatchScratch::default();
    let got = conv2d_batched_reusing(&input, &weight, &spec, &mut scratch).unwrap();
    assert_bits_eq(got.as_slice(), want.as_slice(), "conv batched fwd");

    let per_sample_s = time_it(|| {
        black_box(conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
    });
    let batched_s = time_it(|| {
        black_box(
            conv2d_batched_reusing(black_box(&input), black_box(&weight), &spec, &mut scratch)
                .unwrap(),
        );
    });

    ConvBatchedRow {
        label: format!("{ch}c{size}px"),
        batch,
        per_sample_s,
        batched_s,
    }
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

/// The same dataset with every sample flattened to one feature vector, so
/// an MLP can evaluate the identical samples and labels.
fn flatten_dataset(data: &pbp_data::Dataset) -> pbp_data::Dataset {
    let mut samples = Vec::with_capacity(data.len());
    let mut labels = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let (x, label) = data.sample(i);
        samples.push(x.reshape(&[x.len()]).expect("same volume"));
        labels.push(label);
    }
    pbp_data::Dataset::new(samples, labels, data.num_classes())
}

fn main() {
    // `PBP_BENCH_SMOKE=1` is the scripts/check.sh gate: a quick pass over the
    // smaller shapes that still runs every bit-identity assertion, but leaves
    // the committed results/BENCH_kernels.json untouched.
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    // Resolve the SIMD lane's tier from PBP_SIMD + CPU detection *before*
    // any set_tier call, so the escape hatch governs this process's lanes.
    let simd_tier = simd::active_tier();
    println!("== Kernel benchmark: naive vs tiled vs simd vs pool-parallel ==");
    println!(
        "(every timed path verified bit-identical to the reference; simd tier: {})\n",
        simd_tier.name()
    );

    let gemm_sizes: &[usize] = if smoke { &[64, 128] } else { &[64, 128, 256] };
    let gemm_rows: Vec<GemmRow> = gemm_sizes
        .iter()
        .map(|&n| bench_gemm(n, simd_tier))
        .collect();
    let mut table = Table::new([
        "gemm n",
        "naive ms",
        "tiled ms",
        "simd ms",
        "par ms",
        "simd gflop/s",
        "tiled x",
        "simd x",
        "par x",
    ]);
    for r in &gemm_rows {
        table.row([
            format!("{0}x{0}x{0}", r.n),
            format!("{:.3}", r.naive_s * 1e3),
            format!("{:.3}", r.tiled_s * 1e3),
            format!("{:.3}", r.simd_s * 1e3),
            format!("{:.3}", r.parallel_s * 1e3),
            format!("{:.2}", gflops(r.n, r.simd_s)),
            format!("{:.1}", r.naive_s / r.tiled_s),
            format!("{:.1}", r.naive_s / r.simd_s),
            format!("{:.1}", r.naive_s / r.parallel_s),
        ]);
    }
    table.print();

    let conv_configs: &[(usize, usize)] = if smoke {
        &[(16, 16)]
    } else {
        &[(16, 16), (32, 12)]
    };
    let conv_rows: Vec<ConvRow> = conv_configs
        .iter()
        .map(|&(c, s)| bench_conv(c, s))
        .collect();
    let mut table = Table::new([
        "conv3x3",
        "naive fwd ms",
        "gemm fwd ms",
        "par fwd ms",
        "naive bwd ms",
        "gemm bwd ms",
        "fwd x",
        "bwd x",
    ]);
    for r in &conv_rows {
        table.row([
            r.label.clone(),
            format!("{:.3}", r.naive_fwd_s * 1e3),
            format!("{:.3}", r.gemm_fwd_s * 1e3),
            format!("{:.3}", r.gemm_fwd_par_s * 1e3),
            format!("{:.3}", r.naive_bwd_s * 1e3),
            format!("{:.3}", r.gemm_bwd_s * 1e3),
            format!("{:.1}", r.naive_fwd_s / r.gemm_fwd_s),
            format!("{:.1}", r.naive_bwd_s / r.gemm_bwd_s),
        ]);
    }
    table.print();

    let conv_batched_configs: &[(usize, usize, usize)] = if smoke {
        &[(8, 12, 16)]
    } else {
        &[(8, 12, 16), (8, 12, 64), (16, 12, 64)]
    };
    let conv_batched_rows: Vec<ConvBatchedRow> = conv_batched_configs
        .iter()
        .map(|&(c, s, b)| bench_conv_batched(c, s, b))
        .collect();
    let mut table = Table::new([
        "conv batched",
        "batch",
        "per-sample ms",
        "batched ms",
        "batched x",
    ]);
    for r in &conv_batched_rows {
        table.row([
            r.label.clone(),
            format!("{}", r.batch),
            format!("{:.3}", r.per_sample_s * 1e3),
            format!("{:.3}", r.batched_s * 1e3),
            format!("{:.1}", r.per_sample_s / r.batched_s),
        ]);
    }
    table.print();

    let eval_batches: &[usize] = if smoke { &[1, 16] } else { &[1, 16, 64] };
    let val_n = if smoke { 48 } else { 256 };
    let (_, val) = cifar_data(12, 1, val_n);
    let mut rng = StdRng::seed_from_u64(99);
    let mut cnn = simple_cnn(3, 8, 3, val.num_classes(), &mut rng);
    // VGG-style trunk + wide fc head: the family the serving bench uses.
    // Batch-one is memory-bound on the fc weights, so batched eval shows
    // the model-level win the conv_batched lane measures at the op level.
    let mut vgg = vgg_cnn(3, 16, 2, 12, 256, val.num_classes(), &mut rng);
    let mut dense = mlp(&[3 * 12 * 12, 96, 96, val.num_classes()], &mut rng);
    let flat_val = flatten_dataset(&val);
    let mut eval_rows = bench_eval("cnn", &mut cnn, &val, eval_batches);
    eval_rows.extend(bench_eval("vgg", &mut vgg, &val, eval_batches));
    eval_rows.extend(bench_eval("mlp", &mut dense, &flat_val, eval_batches));
    let mut table = Table::new(["eval model", "batch", "eval ms", "x vs batch 1", "metrics"]);
    for r in &eval_rows {
        let base = eval_rows
            .iter()
            .find(|b| b.model == r.model && b.batch == eval_batches[0])
            .expect("batch-1 baseline present");
        table.row([
            r.model.to_string(),
            format!("{}", r.batch),
            format!("{:.3}", r.eval_s * 1e3),
            format!("{:.2}", base.eval_s / r.eval_s),
            "bit-identical".to_string(),
        ]);
    }
    table.print();

    if smoke {
        println!("\nsmoke mode: results/BENCH_kernels.json left untouched");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    let _ = writeln!(json, "  \"simd_tier\": \"{}\",", simd_tier.name());
    json.push_str("  \"gemm\": [\n");
    for (i, r) in gemm_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"naive_ms\": {:.4}, \"tiled_ms\": {:.4}, \"simd_ms\": {:.4}, \
             \"parallel_ms\": {:.4}, \"tiled_gflops\": {:.3}, \"simd_gflops\": {:.3}, \
             \"tiled_speedup\": {:.2}, \"simd_speedup\": {:.2}, \"parallel_speedup\": {:.2}, \
             \"bit_identical\": true}}{}",
            r.n,
            r.naive_s * 1e3,
            r.tiled_s * 1e3,
            r.simd_s * 1e3,
            r.parallel_s * 1e3,
            gflops(r.n, r.tiled_s),
            gflops(r.n, r.simd_s),
            r.naive_s / r.tiled_s,
            r.naive_s / r.simd_s,
            r.naive_s / r.parallel_s,
            if i + 1 < gemm_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"eval\": [\n");
    for (i, r) in eval_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"batch\": {}, \"eval_ms\": {:.4}, \"loss\": {:.6}, \
             \"acc\": {:.4}, \"metrics_bit_identical\": true}}{}",
            r.model,
            r.batch,
            r.eval_s * 1e3,
            r.loss,
            r.acc,
            if i + 1 < eval_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"conv_batched\": [\n");
    for (i, r) in conv_batched_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"batch\": {}, \"per_sample_ms\": {:.4}, \
             \"batched_ms\": {:.4}, \"speedup\": {:.2}, \"bit_identical\": true}}{}",
            r.label,
            r.batch,
            r.per_sample_s * 1e3,
            r.batched_s * 1e3,
            r.per_sample_s / r.batched_s,
            if i + 1 < conv_batched_rows.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"conv\": [\n");
    for (i, r) in conv_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"naive_fwd_ms\": {:.4}, \"gemm_fwd_ms\": {:.4}, \
             \"parallel_fwd_ms\": {:.4}, \"naive_bwd_ms\": {:.4}, \"gemm_bwd_ms\": {:.4}, \
             \"fwd_speedup\": {:.2}, \"bwd_speedup\": {:.2}, \"bit_identical\": true}}{}",
            r.label,
            r.naive_fwd_s * 1e3,
            r.gemm_fwd_s * 1e3,
            r.gemm_fwd_par_s * 1e3,
            r.naive_bwd_s * 1e3,
            r.gemm_bwd_s * 1e3,
            r.naive_fwd_s / r.gemm_fwd_s,
            r.naive_bwd_s / r.gemm_bwd_s,
            if i + 1 < conv_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote results/BENCH_kernels.json");
}
