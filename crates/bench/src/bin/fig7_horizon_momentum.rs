//! Figure 7: effect of momentum and the LWP horizon T on the optimal
//! half-life, for a convex quadratic with κ = 10³ and delay D = 5.

use pbp_bench::Table;
use pbp_quadratic::{HalflifeSearch, Method};

fn main() {
    let kappa = 1e3;
    let d = 5usize;
    let search = HalflifeSearch::default();
    // Momentum axis: −log10(1−m) from 0 (m=0? use m=0 explicitly) to 5.
    let momenta: Vec<f64> = vec![
        0.0, 0.9,     // 1e-1
        0.99,    // 1e-2
        0.999,   // 1e-3
        0.9999,  // 1e-4
        0.99999, // 1e-5
    ];
    let horizons = [0.0f64, 3.0, 5.0, 10.0, 20.0];

    let mut headers: Vec<String> = vec!["-log10(1-m)".to_string()];
    headers.extend(horizons.iter().map(|t| format!("LWP T={t}")));
    headers.push("LWPwD+SCD".to_string());
    let mut table = Table::new(headers);

    for &m in &momenta {
        let mlabel = if m == 0.0 {
            "0 (m=0)".to_string()
        } else {
            format!("{:.0}", -(1.0 - m).log10())
        };
        let mut row = vec![mlabel];
        for &t in &horizons {
            let hl = search.min_halflife_fixed_momentum(Method::Lwp { t }, m, d, kappa);
            row.push(format!("{hl:.0}"));
        }
        let hl = search.min_halflife_fixed_momentum(Method::lwpd_scd(m, d), m, d, kappa);
        row.push(format!("{hl:.0}"));
        table.row(row);
        eprint!(".");
    }
    eprintln!();
    println!("== Figure 7: half-life vs momentum for LWP horizons (κ=1e3, D=5) ==\n");
    table.print();
    println!(
        "\nPaper check (Fig. 7): at T=0 (delayed GDM) small momentum is optimal;\n\
         larger horizons favor large momentum; horizons near T=2D=10 are the best\n\
         pure-LWP setting but do not beat the combination LWPwD+SCD at high momentum."
    );
}
