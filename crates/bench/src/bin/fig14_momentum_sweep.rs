//! Figure 14 (Appendix F): the effect of the momentum coefficient on
//! delayed training, with consistent (a) and inconsistent (b) weights.
//! For each momentum the learning rate is rescaled so every gradient's
//! total contribution to the weights is unchanged (Eq. 9's second rule).

use pbp_bench::{cifar_data, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{run_training, DelayedConfig, EngineSpec, NoHooks, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Learning rate for momentum `m` at batch `n`, preserving the per-sample
/// contribution of the reference (η=0.1, m=0.9, N=128).
fn lr_for(m: f32, n: usize) -> f32 {
    (1.0 - m) * n as f32 / ((1.0 - 0.9) * 128.0) * 0.1
}

#[allow(clippy::too_many_arguments)] // experiment sweep axes are clearer spelled out
fn run(
    mitigation: Mitigation,
    delay: usize,
    consistent: bool,
    m: f32,
    batch: usize,
    budget: Budget,
    train: &pbp_data::Dataset,
    val: &pbp_data::Dataset,
) -> f64 {
    let hp = Hyperparams::new(lr_for(m, batch), m);
    let spec = EngineSpec::Delayed(DelayedConfig {
        delay,
        batch_size: batch,
        consistent,
        mitigation,
        schedule: LrSchedule::constant(hp),
    });
    let mut accs = Vec::new();
    for seed in 0..budget.seeds as u64 {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let mut engine = spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
        let run_config = RunConfig::new(budget.epochs, seed).eval_last_only();
        let report = run_training(engine.as_mut(), train, val, &run_config, &mut NoHooks);
        accs.push(report.final_val_acc());
    }
    accs.iter().sum::<f64>() / accs.len() as f64
}

fn main() {
    let budget = Budget::new(1200, 300, 8, 2);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let delay = 12usize;
    let momenta = [0.0f32, 0.9, 0.99, 0.999, 0.9999];

    for consistent in [true, false] {
        let panel = if consistent {
            "(a) consistent weights"
        } else {
            "(b) inconsistent weights"
        };
        println!("== Figure 14{panel}: momentum sweep, delay D={delay} ==\n");
        let mut table = Table::new([
            "-log10(1-m)",
            "no delay",
            "D=12",
            "SCD",
            "LWPD",
            "LWPvD+SCD",
        ]);
        for &m in &momenta {
            let mlabel = if m == 0.0 {
                "m=0".to_string()
            } else {
                format!("{:.0}", -(1.0 - m).log10())
            };
            let baseline = run(Mitigation::None, 0, true, m, batch, budget, &train, &val);
            let plain = run(
                Mitigation::None,
                delay,
                consistent,
                m,
                batch,
                budget,
                &train,
                &val,
            );
            let scd = run(
                Mitigation::scd(),
                delay,
                consistent,
                m,
                batch,
                budget,
                &train,
                &val,
            );
            let lwp = run(
                Mitigation::lwpd(),
                delay,
                consistent,
                m,
                batch,
                budget,
                &train,
                &val,
            );
            let combo = run(
                Mitigation::lwpv_scd(),
                delay,
                consistent,
                m,
                batch,
                budget,
                &train,
                &val,
            );
            table.row([
                mlabel,
                format!("{:.1}%", 100.0 * baseline),
                format!("{:.1}%", 100.0 * plain),
                format!("{:.1}%", 100.0 * scd),
                format!("{:.1}%", 100.0 * lwp),
                format!("{:.1}%", 100.0 * combo),
            ]);
            eprint!(".");
        }
        eprintln!();
        table.print();
        println!();
    }
    println!(
        "Paper check (Fig. 14): without mitigation, high momentum amplifies the\n\
         delay damage; with SC/LWP the best accuracy moves to large momentum\n\
         values, and the combination tracks or beats the no-delay baseline.\n\
         With inconsistent weights, low momentum degrades all methods."
    );
}
