//! Table 2 (Appendix B): weight stashing ablation — PB vs PB with weight
//! stashing (Harlap et al., 2018), which removes weight inconsistency but
//! not gradient staleness.

use pbp_bench::suite::{run_family_table, Budget, MethodSpec};
use pbp_bench::Family;
use pbp_nn::models::VggVariant;
use pbp_optim::{Hyperparams, Mitigation};

fn main() {
    let budget = Budget::new(1500, 300, 6, 3);
    println!(
        "== Table 2: weight stashing ablation ({} seeds) ==\n",
        budget.seeds
    );
    run_family_table(
        &[
            Family::Vgg(VggVariant::Vgg11),
            Family::Vgg(VggVariant::Vgg16),
            Family::ResNet(20),
            Family::ResNet(56),
        ],
        &[
            MethodSpec::Sgdm { batch: 32 },
            MethodSpec::pb(Mitigation::None),
            MethodSpec::Pb {
                mitigation: Mitigation::None,
                stashing: true,
            },
        ],
        Hyperparams::new(0.1, 0.9),
        128,
        budget,
    );
    println!(
        "\nPaper check (Table 2): weight stashing does not help fine-grained PB\n\
         at update size one — PB and PB+WS match within noise, implying the\n\
         accuracy loss stems from gradient delay, not weight inconsistency."
    );
}
