//! Figure 4: heatmaps of the dominant characteristic-root magnitude
//! |r_max| over (normalized rate ηλ, momentum m) for GDM / Nesterov /
//! SCD / LWPD / LWPwD+SCD, with and without a delay of one.

use pbp_bench::{print_heatmap, Table};
use pbp_quadratic::{root_heatmap, Method, MomentumGrid};

fn main() {
    let grid_n: usize = std::env::var("PBP_GRID")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let momenta = MomentumGrid::paper_default(grid_n / 2);
    let (lo, hi) = (1e-9, 10f64.powf(0.5));
    let d = 1usize;

    // The six panels of Figure 4.
    type Panel<'a> = (&'a str, usize, Box<dyn Fn(f64) -> Method>);
    let panels: Vec<Panel> = vec![
        ("GDM for D=0", 0, Box::new(|_| Method::Gdm)),
        ("GDM for D=1", d, Box::new(|_| Method::Gdm)),
        ("SCD for D=1", d, Box::new(move |m| Method::scd(m, d))),
        ("Nesterov for D=0", 0, Box::new(|_| Method::Nesterov)),
        ("LWPD for D=1", d, Box::new(move |_| Method::lwpd(d))),
        (
            "LWPwD+SCD for D=1",
            d,
            Box::new(move |m| Method::lwpd_scd(m, d)),
        ),
    ];

    let mut summary = Table::new(["panel", "stable cell fraction", "max stable ηλ at m=1−1e-3"]);
    for (name, delay, method) in &panels {
        let hm = root_heatmap(method.as_ref(), *delay, &momenta, lo, hi, grid_n);
        // ASCII heatmap: darker = slower convergence; 'X'-region (|r|≥1)
        // rendered as the densest character.
        println!("\n=== {name} ===  (rows: momentum 0 → 1−1e-5; cols: ηλ 1e-9 → 10^0.5)");
        print_heatmap("", &hm.values, hm.rates.len(), |v| {
            if v >= 1.0 {
                1.0
            } else {
                // Map log(1−|r|) onto [0,1): more contraction = lighter.
                let speed = (1.0 - v).max(1e-6);
                1.0 - (speed.log10() + 6.0) / 6.5
            }
        });
        // Summary stats used for the cross-method comparison below.
        let target_m = hm
            .momenta
            .iter()
            .position(|&m| m >= 0.999)
            .unwrap_or(hm.momenta.len() - 1);
        let mut max_stable = f64::NAN;
        for (i, &rate) in hm.rates.iter().enumerate() {
            if hm.at(target_m, i) < 1.0 {
                max_stable = rate;
            }
        }
        summary.row([
            name.to_string(),
            format!("{:.3}", hm.stable_fraction()),
            format!("{max_stable:.2e}"),
        ]);
    }

    println!("\n== Stability summary ==");
    summary.print();
    println!(
        "\nPaper check (Fig. 4): delay shrinks the stable region, especially at high\n\
         momentum; SCD strictly enlarges it again; LWPwD+SCD resembles the no-delay\n\
         Nesterov panel. Compare the 'stable cell fraction' column ordering:\n\
         GDM D=1 < (SCD, LWPD, LWPwD+SCD) ≤ no-delay baselines."
    );
}
