//! Trace + MFU bench lane: runs the four microbatch schedules (PB,
//! fill&drain, 1F1B, 2BP) under the Chrome-trace recorder, writes one
//! Perfetto-loadable trace per schedule to `results/trace_{tag}.json`
//! (wall-clock stage lanes plus the virtual schedule diagram), and an
//! MFU/bubble summary to `results/BENCH_trace.json`.
//!
//! Load a trace at <https://ui.perfetto.dev> (or `chrome://tracing`):
//! process 0 is the measured run, process 1 the idealized schedule.
//!
//! `PBP_BENCH_SMOKE=1` shrinks the workload for the scripts/check.sh gate.

use pbp_bench::Table;
use pbp_data::spirals;
use pbp_nn::models::mlp;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{
    emit_schedule_timeline, schedule_bubble_fraction, MicrobatchSchedule, ScheduledConfig,
    ScheduledTrainer, TrainEngine,
};
use pbp_trace::mfu::{measure_peak_gflops, model_flops, reports_to_json, MfuReport};
use pbp_trace::Tracer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const M: usize = 8;

fn plans() -> Vec<(&'static str, MicrobatchSchedule)> {
    vec![
        ("pb", MicrobatchSchedule::PipelinedBackprop),
        (
            "filldrain",
            MicrobatchSchedule::FillDrain { update_size: M },
        ),
        (
            "1f1b",
            MicrobatchSchedule::OneFOneB {
                microbatches_per_update: M,
            },
        ),
        (
            "2bp",
            MicrobatchSchedule::TwoBP {
                microbatches_per_update: M,
            },
        ),
    ]
}

fn main() {
    let smoke = std::env::var_os("PBP_BENCH_SMOKE").is_some();
    let samples = if smoke { 64 } else { 512 };
    let widths = [2usize, 64, 64, 3];
    let data = spirals(3, 64, 0.05, 7);
    let hp = scale_hyperparams(Hyperparams::new(0.1, 0.9), 128, M);
    let peak = measure_peak_gflops();
    // Virtual-timeline scale: enough stages and microbatches that the
    // fill/drain ramps are a small fraction of steady state.
    let (virt_stages, virt_mb) = (4usize, 8 * M);

    println!(
        "== Trace bench: {} schedules, {samples} samples, machine peak {peak:.2} GFLOP/s ==\n",
        plans().len()
    );

    let mut table = Table::new(["schedule", "bubble", "MFU", "GFLOP/s", "spans", "trace"]);
    let mut reports: Vec<(String, String)> = Vec::new();
    let mut bubbles: Vec<(String, f64)> = Vec::new();
    for (tag, plan) in plans() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = mlp(&widths, &mut rng);
        let fwd_flops: u64 = (0..net.num_stages())
            .map(|s| net.stage(s).flops_per_sample())
            .sum();
        let tracer = Tracer::new();
        let mut engine =
            ScheduledTrainer::new(net, ScheduledConfig::new(plan, LrSchedule::constant(hp)));
        engine.set_tracer(tracer.clone());
        let order: Vec<usize> = (0..samples).map(|i| i % data.len()).collect();
        let started = Instant::now();
        TrainEngine::train_range(&mut engine, &data, &order);
        let wall = started.elapsed().as_secs_f64();

        // The idealized schedule diagram rides in the same trace file as
        // the measured run, on the virtual process.
        emit_schedule_timeline(&tracer, &plan, virt_stages, virt_mb);
        let trace = tracer.finish();
        let path = format!("results/trace_{tag}.json");
        trace.write(&path).expect("write trace");

        let bubble = schedule_bubble_fraction(&plan, virt_stages, virt_mb);
        let report = MfuReport::new(model_flops(fwd_flops, samples), wall, peak);
        table.row([
            plan.label().to_string(),
            format!("{:.3}", bubble),
            format!("{:.4}", report.mfu),
            format!("{:.2}", report.achieved_gflops),
            trace.span_count().to_string(),
            path.clone(),
        ]);
        reports.push((
            plan.label().to_string(),
            format!(
                "\"trace\":\"{path}\",\"bubble_fraction\":{bubble},\"mfu_report\":{}",
                report.to_json()
            ),
        ));
        bubbles.push((plan.label().to_string(), bubble));
        eprint!(".");
    }
    eprintln!();
    table.print();

    // The ordering the paper's Figure 2 predicts: fill&drain pays the
    // full per-window drain, 1F1B only start-up ramps, PB streams.
    let bubble_of = |label: &str| {
        bubbles
            .iter()
            .find(|(l, _)| l.contains(label))
            .map(|(_, b)| *b)
            .unwrap()
    };
    let (fd, ofob, pb) = (bubble_of("Fill&Drain"), bubble_of("1F1B"), bubble_of("PB"));
    assert!(
        fd > ofob && ofob > pb,
        "bubble ordering violated: fill&drain {fd:.3} > 1F1B {ofob:.3} > PB {pb:.3}"
    );
    println!("\nbubble ordering holds: fill&drain {fd:.3} > 1F1B {ofob:.3} > PB {pb:.3}");

    // Disabled-tracer overhead probe: the same run with recording off
    // should cost within noise of one with no tracer installed at all.
    let throughput = |install_disabled: bool| {
        let mut rng = StdRng::seed_from_u64(42);
        let net = mlp(&widths, &mut rng);
        let mut engine = ScheduledTrainer::new(
            net,
            ScheduledConfig::one_f_one_b(M, LrSchedule::constant(hp)),
        );
        if install_disabled {
            engine.set_tracer(Tracer::disabled());
        }
        let order: Vec<usize> = (0..samples).map(|i| i % data.len()).collect();
        let started = Instant::now();
        TrainEngine::train_range(&mut engine, &data, &order);
        samples as f64 / started.elapsed().as_secs_f64()
    };
    let base = throughput(false);
    let disabled = throughput(true);
    println!(
        "disabled-tracer overhead: {base:.0} samples/s bare vs {disabled:.0} with a \
         disabled tracer ({:+.2}%)",
        100.0 * (base - disabled) / base
    );

    std::fs::write("results/BENCH_trace.json", reports_to_json(&reports))
        .expect("write results/BENCH_trace.json");
    println!("wrote MFU + bubble summary to results/BENCH_trace.json");
}
