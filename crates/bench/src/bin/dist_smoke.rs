//! Distributed-pipeline smoke test for the `scripts/check.sh` gate: a
//! 2-rank run over real Unix-domain sockets must land on final weights
//! and loss sums bit-identical to the single-process PB emulator.
//!
//! The ranks run as threads of this process but talk exclusively through
//! the socket transport — every activation and gradient crosses the
//! kernel as length-prefixed CRC-checked frames, exactly as under
//! `pbp-launch`.

use pbp_data::spirals;
use pbp_dist::{
    run_rank, splice_owned_stages, LinkEndpoint, RankRecovery, RankSpec, Topology, Transport,
};
use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{MicrobatchSchedule, PbConfig, PipelinedTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const LAYERS: [usize; 4] = [2, 16, 12, 3];
const NET_SEED: u64 = 0xD157;
const ORDER_SEED: u64 = 5;
const EPOCHS: usize = 2;
const WORLD: usize = 2;

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(NET_SEED);
    mlp(&LAYERS, &mut rng)
}

fn main() {
    let data = spirals(3, 16, 0.05, 2);
    let total = EPOCHS * data.len();
    let schedule = LrSchedule::constant(Hyperparams::new(0.05, 0.9));
    eprintln!("== dist smoke: {WORLD}-rank unix-socket PB run, {total} microbatches ==");

    // Ground truth: the sequential PB emulator, loss accumulated in the
    // same per-microbatch f64 order the distributed loss relay uses.
    let mut emulator = PipelinedTrainer::new(fresh_net(), PbConfig::plain(schedule.clone()));
    let mut base_loss = 0.0f64;
    for epoch in 0..EPOCHS {
        for &i in &data.epoch_order(ORDER_SEED, epoch) {
            let (x, label) = data.sample(i);
            base_loss += emulator.train_sample(x, label) as f64;
        }
    }
    let base_net = emulator.into_network();

    // The distributed run: one thread per rank, linked by Unix sockets.
    let dir = std::env::temp_dir().join(format!("pbp_dist_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let transport = Transport::Unix { dir: dir.clone() };
    let topology = Topology::contiguous(LAYERS.len() - 1, WORLD).expect("valid partition");
    let stall = Duration::from_secs(10);
    let mut handles = Vec::new();
    for rank in 0..WORLD {
        let spec = RankSpec {
            rank,
            topology: topology.clone(),
            plan: MicrobatchSchedule::PipelinedBackprop,
            mitigation: Mitigation::None,
            weight_stashing: false,
            schedule: schedule.clone(),
            seed: ORDER_SEED,
            total_microbatches: total,
            stall,
            snapshots: None,
            resume_at: 0,
            abort_after: None,
            recovery: RankRecovery::default(),
        };
        let transport = transport.clone();
        let data = data.clone();
        handles.push(std::thread::spawn(move || {
            let down = (rank + 1 < WORLD)
                .then(|| LinkEndpoint::Listen(transport.listen(rank).expect("bind link")));
            let up = (rank > 0).then(|| LinkEndpoint::Dial {
                transport: transport.clone(),
                link: rank - 1,
            });
            run_rank(fresh_net(), &data, &spec, up, down, None).expect("rank run")
        }));
    }
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();

    for outcome in &outcomes {
        assert_eq!(
            outcome.loss_sum.to_bits(),
            base_loss.to_bits(),
            "distributed loss sum {} != emulator {}",
            outcome.loss_sum,
            base_loss
        );
    }
    let mut net = fresh_net();
    let nets: Vec<Network> = outcomes.into_iter().map(|o| o.net).collect();
    splice_owned_stages(&mut net, &topology, &nets);
    let mut elements = 0usize;
    for s in 0..net.num_stages() {
        for (p, q) in net.stage(s).params().iter().zip(base_net.stage(s).params()) {
            for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "stage {s} diverged from the emulator: {x} vs {y}"
                );
                elements += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "   {elements} parameters bit-identical to the sequential emulator, \
         loss sum {base_loss:.6} reproduced on every rank"
    );
    eprintln!("dist smoke passed.");
}
