//! Engine benchmark: runs every training engine — including the 1F1B and
//! 2BP schedules — on one fixed workload through the shared
//! [`run_training`] loop, prints a comparison table and writes the full
//! per-stage metrics (updates, busy time, effective-delay histograms,
//! occupancy, throughput) to `results/BENCH_engines.json` via the
//! [`JsonSink`] observer.

use pbp_bench::{cifar_data, Budget, Table};
use pbp_nn::models::simple_cnn;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{
    run_training, DelayDistribution, DelayedConfig, EngineSpec, JsonSink, MetricsSink, PbConfig,
    RunConfig, ScheduledConfig, ThreadedConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = Budget::new(600, 150, 4, 1);
    let (train, val) = cifar_data(12, budget.train_samples, budget.val_samples);
    let batch = 8usize;
    let reference = Hyperparams::new(0.1, 0.9);
    let hp_batch = scale_hyperparams(reference, 128, batch);
    let hp1 = scale_hyperparams(reference, 128, 1);
    let seed = 13u64;

    let specs = vec![
        EngineSpec::Sgdm {
            schedule: LrSchedule::constant(hp_batch),
            batch,
        },
        // Fill&drain applies the mean gradient of each N-sample update, so
        // it takes the batch-N hyperparameters, not the per-sample ones.
        EngineSpec::FillDrain {
            schedule: LrSchedule::constant(hp_batch),
            update_size: batch,
        },
        EngineSpec::Pb(
            PbConfig::plain(LrSchedule::constant(hp1)).with_mitigation(Mitigation::lwpv_scd()),
        ),
        EngineSpec::Delayed(DelayedConfig::consistent(
            4,
            batch,
            LrSchedule::constant(hp_batch),
        )),
        EngineSpec::Asgd {
            distribution: DelayDistribution::Uniform { max: 8 },
            batch,
            schedule: LrSchedule::constant(hp_batch),
            delay_seed: 17,
        },
        EngineSpec::Threaded(ThreadedConfig::pb(LrSchedule::constant(hp1))),
        // 1F1B/2BP apply the mean gradient of M microbatches per update,
        // so like fill&drain they take the batch-M hyperparameters.
        EngineSpec::Scheduled(ScheduledConfig::one_f_one_b(
            batch,
            LrSchedule::constant(hp_batch),
        )),
        EngineSpec::Scheduled(ScheduledConfig::two_bp(
            batch,
            LrSchedule::constant(hp_batch),
        )),
    ];

    println!(
        "== Engine benchmark: {} engines, {} train / {} val samples, {} epochs ==\n",
        specs.len(),
        train.len(),
        val.len(),
        budget.epochs
    );

    let mut sink = JsonSink::new("results/BENCH_engines.json");
    let mut table = Table::new([
        "engine",
        "val acc",
        "samples/s",
        "updates",
        "mean delay",
        "occupancy",
    ]);
    for spec in &specs {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut engine = spec.build(simple_cnn(3, 12, 6, 10, &mut rng));
        let config = RunConfig::new(budget.epochs, seed);
        let report = run_training(engine.as_mut(), &train, &val, &config, &mut sink);
        let metrics = engine.metrics();
        let mean_delay = {
            let with_updates: Vec<_> = metrics.stages.iter().filter(|s| s.updates > 0).collect();
            if with_updates.is_empty() {
                0.0
            } else {
                with_updates.iter().map(|s| s.mean_delay()).sum::<f64>() / with_updates.len() as f64
            }
        };
        table.row([
            report.label.clone(),
            format!("{:.1}%", 100.0 * report.final_val_acc()),
            format!("{:.0}", metrics.samples_per_sec()),
            metrics.total_updates().to_string(),
            format!("{mean_delay:.2}"),
            match metrics.occupancy {
                Some(o) => format!("{:.1}%", 100.0 * o),
                None => "-".to_string(),
            },
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print();

    sink.write().expect("write results/BENCH_engines.json");
    println!(
        "\nwrote per-stage metrics for {} runs to {}",
        sink.len(),
        sink.path().display()
    );
    println!(
        "\nNotes: PB runs at update size one (samples/s is per-sample work,\n\
         not comparable to the batched engines' per-batch forward); the\n\
         fill&drain occupancy is Eq. 1 at N={batch}, PB's is the Figure 2\n\
         schedule model; mean delay averages each engine's per-stage\n\
         effective-delay histograms."
    );
}
