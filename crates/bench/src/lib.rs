//! # pbp-bench
//!
//! Experiment harness for the reproduction of *"Pipelined Backpropagation
//! at Scale"* (Kosson et al., MLSYS 2021). Each binary under `src/bin/`
//! regenerates one table or figure of the paper (see `DESIGN.md` for the
//! index); this library holds the shared machinery: experiment budgets,
//! the method-comparison runner, and plain-text table/heatmap rendering.
//!
//! All experiments are deterministic given their seeds. Budgets scale with
//! the `PBP_SCALE` environment variable (e.g. `PBP_SCALE=0.25` for a quick
//! pass, `PBP_SCALE=2` for tighter statistics).

pub mod families;
pub mod fmt;
pub mod suite;

pub use families::{cifar_data, family_data, imagenet_data, Family};
pub use fmt::{print_heatmap, print_table, Table};
pub use suite::{mean_std, percentile, Budget, MethodSpec, RunOutcome};
