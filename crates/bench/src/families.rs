//! The paper's network families at CPU-sized widths, plus the synthetic
//! datasets that stand in for CIFAR-10 and ImageNet (see DESIGN.md for the
//! substitution rationale). Stage *structure* and counts match Table 1
//! exactly; widths are reduced.

use pbp_data::{Dataset, DatasetSpec, SyntheticImages};
use pbp_nn::models::{resnet50_like, resnet_cifar, vgg, ResNetConfig, VggVariant};
use pbp_nn::Network;
use rand::rngs::StdRng;

/// A network family from the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// CIFAR VGG variant (32×32 inputs, width / 16).
    Vgg(VggVariant),
    /// CIFAR pre-activation ResNet of the given depth (16×16 inputs,
    /// base width 4).
    ResNet(usize),
    /// ImageNet-style bottleneck ResNet50 analogue (24×24 inputs).
    ResNet50,
}

impl Family {
    /// All CIFAR families of Table 1, in the paper's order.
    pub fn table1() -> Vec<Family> {
        vec![
            Family::Vgg(VggVariant::Vgg11),
            Family::Vgg(VggVariant::Vgg13),
            Family::Vgg(VggVariant::Vgg16),
            Family::ResNet(20),
            Family::ResNet(32),
            Family::ResNet(44),
            Family::ResNet(56),
            Family::ResNet(110),
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> String {
        match self {
            Family::Vgg(v) => v.name().to_string(),
            Family::ResNet(d) => format!("RN{d}"),
            Family::ResNet50 => "RN50".to_string(),
        }
    }

    /// Input image side length this family trains on.
    pub fn input_size(&self) -> usize {
        match self {
            Family::Vgg(_) => 32, // five 2× pools need 32px
            Family::ResNet(_) => 16,
            // The bottleneck net downsamples five times (stem pool + three
            // strided groups); 16px would collapse to 1×1 before the last
            // group and stall training, so RN50 uses 24px inputs.
            Family::ResNet50 => 24,
        }
    }

    /// Builds a freshly initialized network of this family for
    /// `num_classes` classes.
    pub fn build(&self, num_classes: usize, rng: &mut StdRng) -> Network {
        match self {
            Family::Vgg(v) => vgg(*v, 16, 3, num_classes, 0.2, rng),
            Family::ResNet(depth) => resnet_cifar(
                ResNetConfig {
                    depth: *depth,
                    base_width: 4,
                    in_channels: 3,
                    num_classes,
                },
                rng,
            ),
            Family::ResNet50 => resnet50_like(4, 3, num_classes, rng),
        }
    }

    /// Pipeline stage count (incl. loss stage), matching Table 1.
    pub fn stage_count(&self) -> usize {
        match self {
            Family::Vgg(v) => v.expected_stage_count(),
            Family::ResNet(depth) => ResNetConfig {
                depth: *depth,
                base_width: 4,
                in_channels: 3,
                num_classes: 10,
            }
            .expected_stage_count(),
            Family::ResNet50 => 78,
        }
    }
}

/// Deterministic CIFAR-sim train/validation split for a given image size.
pub fn cifar_data(size: usize, train_n: usize, val_n: usize) -> (Dataset, Dataset) {
    let gen = SyntheticImages::new(DatasetSpec::cifar_sim(size), 0xC1FA);
    (gen.generate(train_n, 0), gen.generate(val_n, 1))
}

/// The dataset a family is evaluated on in the paper's tables: CIFAR-sim
/// for the CIFAR networks, ImageNet-sim for the RN50 analogue.
pub fn family_data(family: Family, train_n: usize, val_n: usize) -> (Dataset, Dataset) {
    match family {
        Family::ResNet50 => imagenet_data(family.input_size(), train_n, val_n),
        _ => cifar_data(family.input_size(), train_n, val_n),
    }
}

/// Deterministic ImageNet-sim train/validation split.
pub fn imagenet_data(size: usize, train_n: usize, val_n: usize) -> (Dataset, Dataset) {
    let gen = SyntheticImages::new(DatasetSpec::imagenet_sim(size), 0x1AA6E);
    (gen.generate(train_n, 0), gen.generate(val_n, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_match_table1() {
        let expected = [29usize, 33, 39, 34, 52, 70, 88, 169];
        for (family, exp) in Family::table1().iter().zip(expected) {
            assert_eq!(family.stage_count(), exp, "{}", family.name());
        }
        assert_eq!(Family::ResNet50.stage_count(), 78);
    }

    #[test]
    fn built_networks_match_declared_stage_counts() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        for family in [Family::Vgg(VggVariant::Vgg11), Family::ResNet(20)] {
            let net = family.build(10, &mut rng);
            assert_eq!(net.pipeline_stage_count(), family.stage_count());
        }
    }
}
