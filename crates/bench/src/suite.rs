//! Shared experiment runner: budgets, method specifications and the
//! train-and-evaluate loop used by the table/figure binaries.

use pbp_data::Dataset;
use pbp_nn::Network;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule, Mitigation};
use pbp_pipeline::{run_training, EngineSpec, NoHooks, PbConfig, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment budget, scalable via the `PBP_SCALE` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Training-set size.
    pub train_samples: usize,
    /// Validation-set size.
    pub val_samples: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Number of independent seeds (the paper reports 5-run means).
    pub seeds: usize,
}

impl Budget {
    /// Creates a budget, then applies `PBP_SCALE` (if set) to the sample
    /// counts and epochs.
    pub fn new(train_samples: usize, val_samples: usize, epochs: usize, seeds: usize) -> Self {
        let scale: f64 = std::env::var("PBP_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        Budget {
            train_samples: ((train_samples as f64 * scale) as usize).max(16),
            val_samples: ((val_samples as f64 * scale) as usize).max(16),
            epochs: ((epochs as f64 * scale).round() as usize).max(1),
            seeds: seeds.max(1),
        }
    }
}

/// One method column in a comparison (a row group in the paper's tables).
#[derive(Debug, Clone, Copy)]
pub enum MethodSpec {
    /// Mini-batch SGDM at the reference batch size (the `SGDM` rows).
    Sgdm {
        /// Batch size.
        batch: usize,
    },
    /// Pipelined backpropagation at update size one with optional
    /// mitigation and weight stashing.
    Pb {
        /// Delay mitigation.
        mitigation: Mitigation,
        /// Weight stashing on/off.
        stashing: bool,
    },
}

impl MethodSpec {
    /// Plain PB.
    pub fn pb(mitigation: Mitigation) -> Self {
        MethodSpec::Pb {
            mitigation,
            stashing: false,
        }
    }

    /// Display label matching the paper.
    pub fn label(&self) -> String {
        match self {
            MethodSpec::Sgdm { .. } => "SGDM".to_string(),
            MethodSpec::Pb {
                mitigation,
                stashing,
            } => {
                let mut l = mitigation.label();
                if *stashing {
                    l.push_str("+WS");
                }
                l
            }
        }
    }

    /// Lowers this method to an [`EngineSpec`], scaling the reference
    /// hyperparameters per Eq. 9 for the method's effective batch size.
    pub fn engine_spec(&self, reference: Hyperparams, reference_batch: usize) -> EngineSpec {
        match *self {
            MethodSpec::Sgdm { batch } => {
                let hp = if batch == reference_batch {
                    reference
                } else {
                    scale_hyperparams(reference, reference_batch, batch)
                };
                EngineSpec::Sgdm {
                    schedule: LrSchedule::constant(hp),
                    batch,
                }
            }
            MethodSpec::Pb {
                mitigation,
                stashing,
            } => {
                let hp = scale_hyperparams(reference, reference_batch, 1);
                let mut cfg = PbConfig::plain(LrSchedule::constant(hp)).with_mitigation(mitigation);
                if stashing {
                    cfg = cfg.with_weight_stashing();
                }
                EngineSpec::Pb(cfg)
            }
        }
    }
}

/// Result of one method over several seeds.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Method label.
    pub label: String,
    /// Final validation accuracy per seed.
    pub accuracies: Vec<f64>,
}

impl RunOutcome {
    /// Mean final accuracy.
    pub fn mean(&self) -> f64 {
        mean_std(&self.accuracies).0
    }

    /// Standard deviation of final accuracy.
    pub fn std(&self) -> f64 {
        mean_std(&self.accuracies).1
    }

    /// Formats as `mean±std` percentages, like the paper's tables.
    pub fn formatted(&self) -> String {
        if self.accuracies.len() > 1 {
            format!("{:.2}±{:.2}", 100.0 * self.mean(), 100.0 * self.std())
        } else {
            format!("{:.2}", 100.0 * self.mean())
        }
    }
}

/// Nearest-rank percentile of an unsorted sample: `q` in `[0, 1]`
/// (`0.5` = median, `0.99` = p99). Returns `0.0` for an empty sample.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sample mean and standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() == 1 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Trains `method` on `(train, val)` for every seed in the budget with the
/// given reference hyperparameters (scaled per Eq. 9 for PB), returning the
/// final accuracies. `build` constructs a freshly initialized network from
/// an RNG.
pub fn run_method(
    build: &dyn Fn(&mut StdRng) -> Network,
    train: &Dataset,
    val: &Dataset,
    method: MethodSpec,
    reference: Hyperparams,
    reference_batch: usize,
    budget: Budget,
) -> RunOutcome {
    let spec = method.engine_spec(reference, reference_batch);
    let mut accuracies = Vec::with_capacity(budget.seeds);
    for seed in 0..budget.seeds as u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut engine = spec.build(build(&mut rng));
        let config = RunConfig::new(budget.epochs, seed).eval_last_only();
        let report = run_training(engine.as_mut(), train, val, &config, &mut NoHooks);
        accuracies.push(report.final_val_acc());
    }
    RunOutcome {
        label: method.label(),
        accuracies,
    }
}

/// Runs a full family × method comparison (the shape of Tables 1-6) and
/// prints a table with stage counts and `mean±std` final accuracies.
pub fn run_family_table(
    families: &[crate::families::Family],
    methods: &[MethodSpec],
    reference: Hyperparams,
    reference_batch: usize,
    budget: Budget,
) {
    let mut headers = vec!["network".to_string(), "stages".to_string()];
    headers.extend(methods.iter().map(MethodSpec::label));
    let mut table = crate::fmt::Table::new(headers);
    for family in families {
        let (train, val) =
            crate::families::family_data(*family, budget.train_samples, budget.val_samples);
        let build = |rng: &mut StdRng| family.build(train.num_classes(), rng);
        let mut row = vec![family.name(), family.stage_count().to_string()];
        for &method in methods {
            let out = run_method(
                &build,
                &train,
                &val,
                method,
                reference,
                reference_batch,
                budget,
            );
            row.push(out.formatted());
            eprint!(".");
        }
        table.row(row);
        eprintln!(" {}", family.name());
    }
    table.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }

    #[test]
    fn labels_include_stashing() {
        let m = MethodSpec::Pb {
            mitigation: Mitigation::None,
            stashing: true,
        };
        assert_eq!(m.label(), "PB+WS");
        assert_eq!(MethodSpec::Sgdm { batch: 32 }.label(), "SGDM");
    }

    #[test]
    fn run_method_trains_a_tiny_mlp() {
        let build = |rng: &mut StdRng| pbp_nn::models::mlp(&[2, 16, 3], rng);
        let data = pbp_data::blobs(3, 30, 0.4, 0);
        let (train, val) = data.split(0.3);
        let budget = Budget {
            train_samples: 0,
            val_samples: 0,
            epochs: 8,
            seeds: 2,
        };
        let out = run_method(
            &build,
            &train,
            &val,
            MethodSpec::pb(Mitigation::scd()),
            Hyperparams::new(0.1, 0.9),
            8,
            budget,
        );
        assert_eq!(out.accuracies.len(), 2);
        assert!(out.mean() > 0.6, "accuracy {}", out.mean());
    }
}
