//! Plain-text rendering of tables and heatmaps for the experiment
//! binaries.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row length mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a table given headers and rows in one call.
pub fn print_table<S: Into<String>>(
    headers: impl IntoIterator<Item = S>,
    rows: impl IntoIterator<Item = Vec<String>>,
) {
    let mut table = Table::new(headers);
    for row in rows {
        table.row(row);
    }
    table.print();
}

/// Renders a numeric grid as an ASCII heatmap (for Figure 4). `values` is
/// row-major with `cols` columns; values map onto the ramp by `scale`,
/// which receives the value and returns a number in `[0, 1]`.
pub fn print_heatmap(title: &str, values: &[f64], cols: usize, scale: impl Fn(f64) -> f64) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    println!("{title}");
    for row in values.chunks(cols) {
        let line: String = row
            .iter()
            .map(|&v| {
                let t = scale(v).clamp(0.0, 1.0);
                let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx] as char
            })
            .collect();
        println!("|{line}|");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn table_rejects_bad_row() {
        Table::new(["a", "b"]).row(["only one"]);
    }
}

impl Table {
    /// Renders the table as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1,5", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trips_simple_rows() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        t.row(["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
    }
}
