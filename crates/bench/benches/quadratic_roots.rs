//! Criterion benchmarks for the convex-quadratic analysis machinery:
//! polynomial root finding at the degrees the paper's figures need, and a
//! full heatmap row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbp_quadratic::{char_poly, dominant_root_magnitude, Method};
use std::hint::black_box;

fn bench_root_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominant_root");
    for &d in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("combined_delay", d), &d, |b, &d| {
            let m = 0.99;
            b.iter(|| {
                dominant_root_magnitude(black_box(Method::lwpd_scd(m, d)), m, black_box(0.01), d)
            })
        });
    }
    group.finish();
}

fn bench_char_poly(c: &mut Criterion) {
    c.bench_function("char_poly_build_d16", |b| {
        b.iter(|| char_poly(black_box(Method::lwpd_scd(0.99, 16)), 0.99, 0.01, 16))
    });
}

fn bench_heatmap_row(c: &mut Criterion) {
    c.bench_function("heatmap_row_48pts_d4", |b| {
        b.iter(|| {
            let m = 0.999;
            let mut acc = 0.0;
            for i in 0..48 {
                let el = 1e-9 * 10f64.powf(9.5 * i as f64 / 47.0);
                acc += dominant_root_magnitude(Method::scd(m, 4), m, el, 4);
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_root_finding,
    bench_char_poly,
    bench_heatmap_row
);
criterion_main!(benches);
