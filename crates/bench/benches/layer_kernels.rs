//! Criterion microbenchmarks for the hot layer kernels: conv2d forward /
//! backward, matmul and group normalization — the per-stage costs that set
//! the pipeline's step time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbp_nn::Layer;
use pbp_tensor::ops::{conv2d, conv2d_backward, Conv2dSpec};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    for &(ch, size) in &[(8usize, 16usize), (16, 8), (32, 4)] {
        let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
        let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("forward", format!("{ch}c{size}px")),
            &(),
            |b, _| b.iter(|| conv2d(black_box(&input), black_box(&weight), &spec).unwrap()),
        );
        let (out, cols) = conv2d(&input, &weight, &spec).unwrap();
        let grad = Tensor::ones(out.shape());
        group.bench_with_input(
            BenchmarkId::new("backward", format!("{ch}c{size}px")),
            &(),
            |b, _| {
                b.iter(|| {
                    conv2d_backward(black_box(&grad), &weight, &cols, (size, size), &spec).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        let b_ = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b_)).unwrap())
        });
    }
    group.finish();
}

fn bench_groupnorm(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupnorm");
    for &(ch, size) in &[(16usize, 16usize), (64, 8)] {
        let mut rng = StdRng::seed_from_u64(2);
        let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
        let mut gn = pbp_nn::layers::GroupNorm::with_group_size_two(ch);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ch}c{size}px")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut stack = vec![black_box(input.clone())];
                    gn.forward(&mut stack);
                    gn.clear_stash();
                    stack
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conv2d, bench_matmul, bench_groupnorm);
criterion_main!(benches);
