//! Criterion microbenchmarks for the hot layer kernels: conv2d forward /
//! backward, matmul and group normalization — the per-stage costs that set
//! the pipeline's step time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbp_nn::Layer;
use pbp_tensor::ops::{conv2d, conv2d_backward, gemm_nn, reference, Conv2dSpec};
use pbp_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    for &(ch, size) in &[(8usize, 16usize), (16, 8), (32, 4)] {
        let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
        let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("forward", format!("{ch}c{size}px")),
            &(),
            |b, _| b.iter(|| conv2d(black_box(&input), black_box(&weight), &spec).unwrap()),
        );
        let (out, cols) = conv2d(&input, &weight, &spec).unwrap();
        let grad = Tensor::ones(out.shape());
        group.bench_with_input(
            BenchmarkId::new("backward", format!("{ch}c{size}px")),
            &(),
            |b, _| {
                b.iter(|| {
                    conv2d_backward(black_box(&grad), &weight, &cols, (size, size), &spec).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        let b_ = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b_)).unwrap())
        });
    }
    group.finish();
}

/// Naive reference vs tiled (single-thread) vs pool-parallel GEMM at the
/// sizes `bench_kernels` reports on — the criterion view of the same
/// comparison that lands in `results/BENCH_kernels.json`.
fn bench_gemm_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_paths");
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        let b_ = pbp_tensor::normal(&[n, n], 0.0, 1.0, &mut rng);
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &(), |bch, _| {
            bch.iter(|| {
                reference::matmul_ref(
                    black_box(a.as_slice()),
                    black_box(b_.as_slice()),
                    &mut out,
                    n,
                    n,
                    n,
                );
            })
        });
        group.bench_with_input(BenchmarkId::new("tiled", n), &(), |bch, _| {
            pool::set_max_threads(1);
            bch.iter(|| {
                gemm_nn(
                    black_box(a.as_slice()),
                    black_box(b_.as_slice()),
                    &mut out,
                    n,
                    n,
                    n,
                    false,
                );
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &(), |bch, _| {
            pool::set_max_threads(8);
            bch.iter(|| {
                gemm_nn(
                    black_box(a.as_slice()),
                    black_box(b_.as_slice()),
                    &mut out,
                    n,
                    n,
                    n,
                    false,
                );
            });
            pool::set_max_threads(1);
        });
    }
    group.finish();
}

/// The same three paths through a whole conv forward + backward, at the
/// feature-map sizes the pipeline stages actually run.
fn bench_conv_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_paths");
    for &(ch, size) in &[(16usize, 16usize), (32, 12)] {
        let spec = Conv2dSpec::new(ch, ch, 3, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
        let weight = pbp_tensor::normal(&spec.weight_shape(), 0.0, 0.1, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("naive_fwd", format!("{ch}c{size}px")),
            &(),
            |b, _| b.iter(|| reference::conv2d_ref(black_box(&input), black_box(&weight), &spec)),
        );
        for (label, threads) in [("gemm_fwd", 1usize), ("gemm_fwd_par", 8)] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{ch}c{size}px")),
                &(),
                |b, _| {
                    pool::set_max_threads(threads);
                    b.iter(|| conv2d(black_box(&input), black_box(&weight), &spec).unwrap());
                    pool::set_max_threads(1);
                },
            );
        }
    }
    group.finish();
}

fn bench_groupnorm(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupnorm");
    for &(ch, size) in &[(16usize, 16usize), (64, 8)] {
        let mut rng = StdRng::seed_from_u64(2);
        let input = pbp_tensor::normal(&[1, ch, size, size], 0.0, 1.0, &mut rng);
        let mut gn = pbp_nn::layers::GroupNorm::with_group_size_two(ch);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ch}c{size}px")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut stack = vec![black_box(input.clone())];
                    gn.forward(&mut stack);
                    gn.clear_stash();
                    stack
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conv2d,
    bench_matmul,
    bench_gemm_paths,
    bench_conv_paths,
    bench_groupnorm
);
criterion_main!(benches);
