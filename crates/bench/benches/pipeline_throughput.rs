//! Criterion benchmarks comparing training-engine throughput: the threaded
//! PB runtime vs threaded fill-and-drain vs the sequential emulator —
//! the wall-clock version of Eq. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbp_data::spirals;
use pbp_nn::models::mlp;
use pbp_nn::Network;
use pbp_optim::{scale_hyperparams, Hyperparams, LrSchedule};
use pbp_pipeline::{PbConfig, PipelinedTrainer, ThreadedConfig, ThreadedPipeline};
use pbp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTHS: &[usize] = &[2, 48, 48, 48, 48, 48, 3];

fn schedule() -> LrSchedule {
    LrSchedule::constant(scale_hyperparams(Hyperparams::new(0.1, 0.9), 8, 1))
}

fn fresh_net() -> Network {
    let mut rng = StdRng::seed_from_u64(0);
    mlp(WIDTHS, &mut rng)
}

fn sample_set(n: usize) -> Vec<(Tensor, usize)> {
    let data = spirals(3, 64, 0.05, 1);
    (0..n)
        .map(|i| {
            let (x, l) = data.sample(i % data.len());
            (x.clone(), l)
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let n = 128usize;
    let samples = sample_set(n);
    let mut group = c.benchmark_group("train_128_samples");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("threaded", "pb"), &(), |b, _| {
        b.iter(|| {
            let cfg = ThreadedConfig::pb(schedule());
            ThreadedPipeline::train(fresh_net(), &samples, &cfg)
        })
    });
    group.bench_with_input(BenchmarkId::new("threaded", "fill_drain"), &(), |b, _| {
        b.iter(|| {
            let cfg = ThreadedConfig::fill_drain(schedule());
            ThreadedPipeline::train(fresh_net(), &samples, &cfg)
        })
    });
    group.bench_with_input(BenchmarkId::new("emulator", "pb"), &(), |b, _| {
        b.iter(|| {
            let mut trainer = PipelinedTrainer::new(fresh_net(), PbConfig::plain(schedule()));
            for (x, l) in &samples {
                trainer.train_sample(x, *l);
            }
            trainer
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
