//! Serving configuration and environment knobs.
//!
//! Two knobs mirror the `PBP_THREADS`/`PBP_SIMD` convention — invalid
//! values are ignored with a one-time warning rather than panicking, so a
//! typo in a deployment script degrades to the defaults instead of taking
//! the server down:
//!
//! * `PBP_SERVE_BATCH` — batch budget (integer ≥ 1). The batcher closes a
//!   batch as soon as it holds this many requests.
//! * `PBP_SERVE_DEADLINE_US` — coalescing deadline in microseconds
//!   (integer ≥ 0). The batcher closes a batch once the oldest queued
//!   request has waited this long, full or not. `0` disables coalescing:
//!   every batch is whatever is already queued when the batcher looks.
//! * `PBP_SERVE_QUEUE` — pending-request queue bound (integer ≥ 1). A
//!   submission that finds the queue full is rejected immediately with a
//!   typed `Overloaded` error instead of growing the backlog without
//!   limit.

use std::time::Duration;

/// Default batch budget: matches the batch-64 lane of the eval benchmarks,
/// past which wide GEMMs see diminishing returns on CPU.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// Default coalescing deadline in microseconds. Two milliseconds is long
/// enough to fill a batch under load and short enough to be invisible next
/// to a CNN forward pass.
pub const DEFAULT_DEADLINE_US: u64 = 2_000;

/// Default pending-request queue bound: deep enough that transient bursts
/// (many batch budgets' worth) queue instead of bouncing, shallow enough
/// that a stalled worker pool surfaces as `Overloaded` errors rather than
/// unbounded memory growth.
pub const DEFAULT_QUEUE: usize = 1_024;

/// Configuration for a [`crate::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Dispatch a batch as soon as it holds this many requests (≥ 1).
    pub max_batch: usize,
    /// Dispatch a batch once its oldest request has waited this long,
    /// even if it is not full.
    pub deadline: Duration,
    /// Pending-request queue bound (≥ 1): submissions beyond this many
    /// queued requests fail fast with [`crate::ServeError::Overloaded`].
    pub queue: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: DEFAULT_MAX_BATCH,
            deadline: Duration::from_micros(DEFAULT_DEADLINE_US),
            queue: DEFAULT_QUEUE,
        }
    }
}

/// Parses a `PBP_SERVE_BATCH` value. Rejects (returns `None` for)
/// anything that is not an integer ≥ 1 — a zero budget could never
/// dispatch a batch.
fn parse_batch(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Parses a `PBP_SERVE_DEADLINE_US` value. Any integer ≥ 0 is valid:
/// zero means "no coalescing wait".
fn parse_deadline_us(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

/// Parses a `PBP_SERVE_QUEUE` value. Rejects anything that is not an
/// integer ≥ 1 — a zero-slot queue could never accept a request.
fn parse_queue(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// One-time warning gates for invalid knob values: clients can rebuild
/// configs at any rate, and repeating the warning would flood stderr.
static BATCH_WARNING: std::sync::Once = std::sync::Once::new();
static DEADLINE_WARNING: std::sync::Once = std::sync::Once::new();
static QUEUE_WARNING: std::sync::Once = std::sync::Once::new();

impl ServeConfig {
    /// Builds a config from `PBP_SERVE_BATCH` and `PBP_SERVE_DEADLINE_US`,
    /// falling back to the defaults (with a one-time warning) for unset or
    /// invalid values.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(raw) = std::env::var("PBP_SERVE_BATCH") {
            match parse_batch(&raw) {
                Some(n) => cfg.max_batch = n,
                None => BATCH_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PBP_SERVE_BATCH={raw:?} \
                         (expected an integer >= 1); using {DEFAULT_MAX_BATCH}"
                    );
                }),
            }
        }
        if let Ok(raw) = std::env::var("PBP_SERVE_DEADLINE_US") {
            match parse_deadline_us(&raw) {
                Some(us) => cfg.deadline = Duration::from_micros(us),
                None => DEADLINE_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PBP_SERVE_DEADLINE_US={raw:?} \
                         (expected an integer >= 0); using {DEFAULT_DEADLINE_US}"
                    );
                }),
            }
        }
        if let Ok(raw) = std::env::var("PBP_SERVE_QUEUE") {
            match parse_queue(&raw) {
                Some(n) => cfg.queue = n,
                None => QUEUE_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PBP_SERVE_QUEUE={raw:?} \
                         (expected an integer >= 1); using {DEFAULT_QUEUE}"
                    );
                }),
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_batch("1"), Some(1));
        assert_eq!(parse_batch(" 64 "), Some(64));
        assert_eq!(parse_batch("0"), None);
        assert_eq!(parse_batch("-3"), None);
        assert_eq!(parse_batch("4.5"), None);
        assert_eq!(parse_batch("lots"), None);
        assert_eq!(parse_batch(""), None);
    }

    #[test]
    fn deadline_parsing_accepts_zero() {
        assert_eq!(parse_deadline_us("0"), Some(0));
        assert_eq!(parse_deadline_us("2000"), Some(2000));
        assert_eq!(parse_deadline_us(" 150 "), Some(150));
        assert_eq!(parse_deadline_us("-1"), None);
        assert_eq!(parse_deadline_us("2ms"), None);
        assert_eq!(parse_deadline_us(""), None);
    }

    #[test]
    fn queue_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_queue("1"), Some(1));
        assert_eq!(parse_queue(" 4096 "), Some(4096));
        assert_eq!(parse_queue("0"), None);
        assert_eq!(parse_queue("-8"), None);
        assert_eq!(parse_queue("deep"), None);
        assert_eq!(parse_queue(""), None);
    }

    #[test]
    fn default_config_matches_constants() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(cfg.deadline, Duration::from_micros(DEFAULT_DEADLINE_US));
        assert_eq!(cfg.queue, DEFAULT_QUEUE);
    }

    #[test]
    fn from_env_falls_back_on_invalid_values() {
        // Env mutation is process-global, so this test owns both knobs for
        // its whole body and restores them before returning.
        let saved_batch = std::env::var("PBP_SERVE_BATCH").ok();
        let saved_deadline = std::env::var("PBP_SERVE_DEADLINE_US").ok();
        let saved_queue = std::env::var("PBP_SERVE_QUEUE").ok();

        std::env::set_var("PBP_SERVE_BATCH", "17");
        std::env::set_var("PBP_SERVE_DEADLINE_US", "350");
        std::env::set_var("PBP_SERVE_QUEUE", "9");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.max_batch, 17);
        assert_eq!(cfg.deadline, Duration::from_micros(350));
        assert_eq!(cfg.queue, 9);

        std::env::set_var("PBP_SERVE_BATCH", "zero");
        std::env::set_var("PBP_SERVE_DEADLINE_US", "-9");
        std::env::set_var("PBP_SERVE_QUEUE", "0");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(
            cfg.deadline,
            Duration::from_micros(DEFAULT_DEADLINE_US),
            "invalid deadline falls back"
        );
        assert_eq!(cfg.queue, DEFAULT_QUEUE, "invalid queue bound falls back");

        match saved_batch {
            Some(v) => std::env::set_var("PBP_SERVE_BATCH", v),
            None => std::env::remove_var("PBP_SERVE_BATCH"),
        }
        match saved_deadline {
            Some(v) => std::env::set_var("PBP_SERVE_DEADLINE_US", v),
            None => std::env::remove_var("PBP_SERVE_DEADLINE_US"),
        }
        match saved_queue {
            Some(v) => std::env::set_var("PBP_SERVE_QUEUE", v),
            None => std::env::remove_var("PBP_SERVE_QUEUE"),
        }
    }
}
