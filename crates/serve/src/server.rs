//! The server: ingress queue, dynamic batcher, and worker pool.
//!
//! # Batcher state machine
//!
//! The batcher thread cycles through three states (documented in DESIGN.md
//! §13):
//!
//! 1. **Idle** — blocked on `select2(control, ingress)`. A control message
//!    moves it to *Draining*; an ingress request opens a batch and moves it
//!    to *Coalescing*.
//! 2. **Coalescing** — holds an open batch and a deadline (`open time +
//!    config.deadline`). It keeps receiving with `recv_timeout` until the
//!    batch is full (`max_batch`), the deadline passes, or a request with a
//!    different sample shape arrives — which flushes the open batch and
//!    opens a new one (shape cohorts never mix inside a forward pass).
//!    Every exit from this state dispatches the open batch to the worker
//!    queue and returns to *Idle*.
//! 3. **Draining** — consumes whatever is still queued without waiting
//!    (`try_recv`), dispatches it in shape-uniform, budget-sized batches,
//!    drops the worker queue sender, and exits. Workers finish the
//!    remaining batches and exit when the queue disconnects.
//!
//! Shutdown visibility is a flag checked at submission, so a client racing
//! a shutdown can lose: its request may enter the ingress queue after the
//! drain finished. Nobody will ever reply — which is why dropping the
//! reply channel resolves the pending request with
//! [`ServeError::ShuttingDown`] instead of hanging.

use crate::{ServeConfig, ServeError};
use crossbeam::channel::{
    bounded, select2, unbounded, Receiver, RecvTimeoutError, Select2, Sender, TrySendError,
};
use pbp_nn::Network;
use pbp_tensor::{pool, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued inference request: a single sample (no batch dimension) and
/// the channel its logits go back on.
struct Request {
    x: Tensor,
    reply: Sender<Result<Tensor, ServeError>>,
}

/// Counters shared by clients, the batcher, and the workers.
#[derive(Default)]
struct StatsInner {
    /// Requests accepted into the ingress queue.
    submitted: AtomicU64,
    /// Requests rejected at submission (shutdown in progress).
    rejected: AtomicU64,
    /// Requests rejected at submission because the bounded ingress queue
    /// was full.
    overloaded: AtomicU64,
    /// Batches dispatched to the worker queue.
    batches: AtomicU64,
    /// Requests replied to (success or typed error).
    replied: AtomicU64,
    /// Largest batch dispatched so far.
    max_coalesced: AtomicUsize,
    /// Worker panics caught (each fails every request in its batch).
    worker_panics: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the ingress queue.
    pub submitted: u64,
    /// Requests rejected at submission because shutdown had begun.
    pub rejected: u64,
    /// Requests rejected at submission because the queue was full.
    pub overloaded: u64,
    /// Batches dispatched to the worker queue.
    pub batches: u64,
    /// Requests replied to (success or typed error).
    pub replied: u64,
    /// Largest batch dispatched so far.
    pub max_coalesced: usize,
    /// Worker panics caught.
    pub worker_panics: u64,
}

impl StatsInner {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            replied: self.replied.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}

/// A reply that has not arrived yet. Dropping it abandons the request
/// (the worker's reply send fails harmlessly).
pub struct Pending {
    rx: Receiver<Result<Tensor, ServeError>>,
}

impl Pending {
    /// Blocks until the reply arrives. A disconnect (the server tore down
    /// the reply pipeline before answering) resolves to
    /// [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<Tensor, ServeError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A cloneable handle for submitting requests. Clients may outlive the
/// [`Server`]; submissions after shutdown fail with
/// [`ServeError::ShuttingDown`].
#[derive(Clone)]
pub struct Client {
    ingress: Sender<Request>,
    shutting_down: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
}

impl Client {
    /// Enqueues one sample (shaped like a single network input, no batch
    /// dimension) and returns a [`Pending`] reply handle. A full ingress
    /// queue rejects immediately with [`ServeError::Overloaded`] — the
    /// backlog is bounded by [`ServeConfig::queue`], never by memory.
    pub fn submit(&self, x: Tensor) -> Result<Pending, ServeError> {
        if self.shutting_down.load(Ordering::Acquire) {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        let (reply, rx) = bounded(1);
        match self.ingress.try_send(Request { x, reply }) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits one sample and blocks for its logits.
    pub fn infer(&self, x: Tensor) -> Result<Tensor, ServeError> {
        self.submit(x)?.wait()
    }
}

/// Control messages from [`Server`] to the batcher thread.
enum Control {
    /// Drain the ingress queue, dispatch everything, and exit.
    Drain,
}

/// An inference server: one batcher thread plus one worker thread per
/// network replica. See the module docs for the batcher state machine.
pub struct Server {
    ingress: Sender<Request>,
    control: Sender<Control>,
    shutting_down: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<Network>>,
    /// Parks one kernel-pool core per worker for the server's lifetime.
    _cores: pool::CoreReservation,
}

impl Server {
    /// Starts a server with one worker thread per network in `nets`.
    /// Networks are switched to eval mode (running statistics, batched
    /// conv lowering); their training flag is restored on
    /// [`Server::shutdown`].
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn start(nets: Vec<Network>, config: ServeConfig) -> Server {
        assert!(!nets.is_empty(), "serve: need at least one network");
        let config = ServeConfig {
            max_batch: config.max_batch.max(1),
            queue: config.queue.max(1),
            ..config
        };
        let (ingress_tx, ingress_rx) = bounded::<Request>(config.queue);
        let (control_tx, control_rx) = unbounded::<Control>();
        let (work_tx, work_rx) = unbounded::<Vec<Request>>();
        let stats = Arc::new(StatsInner::default());

        let cores = pool::reserve(nets.len());
        let workers = nets
            .into_iter()
            .enumerate()
            .map(|(i, net)| {
                let rx = work_rx.clone();
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("pbp-serve-worker-{i}"))
                    .spawn(move || worker_loop(net, rx, stats))
                    .expect("spawn serve worker")
            })
            .collect();
        drop(work_rx);

        let batcher = {
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("pbp-serve-batcher".into())
                .spawn(move || batcher_loop(ingress_rx, control_rx, work_tx, config, stats))
                .expect("spawn serve batcher")
        };

        Server {
            ingress: ingress_tx,
            control: control_tx,
            shutting_down: Arc::new(AtomicBool::new(false)),
            stats,
            batcher: Some(batcher),
            workers,
            _cores: cores,
        }
    }

    /// A new client handle for this server.
    pub fn client(&self) -> Client {
        Client {
            ingress: self.ingress.clone(),
            shutting_down: Arc::clone(&self.shutting_down),
            stats: Arc::clone(&self.stats),
        }
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Graceful shutdown: rejects new submissions, drains and serves
    /// everything already queued, joins all threads, and returns the
    /// networks (back in training mode) with the final stats.
    pub fn shutdown(mut self) -> (Vec<Network>, ServeStats) {
        let nets = self.shutdown_inner();
        (nets, self.stats.snapshot())
    }

    fn shutdown_inner(&mut self) -> Vec<Network> {
        self.shutting_down.store(true, Ordering::Release);
        let _ = self.control.send(Control::Drain);
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        self.workers
            .drain(..)
            .map(|w| {
                w.join()
                    .expect("serve worker thread itself never panics (batches are panic-wrapped)")
            })
            .collect()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A server dropped without an explicit `shutdown()` still drains
        // gracefully so no pending reply is silently lost.
        if self.batcher.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Dispatches a batch to the worker queue, updating batch counters.
fn dispatch(work_tx: &Sender<Vec<Request>>, batch: Vec<Request>, stats: &StatsInner) {
    if batch.is_empty() {
        return;
    }
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats
        .max_coalesced
        .fetch_max(batch.len(), Ordering::Relaxed);
    // Workers only disconnect after the batcher drops `work_tx`, so this
    // send cannot fail while the batcher runs.
    let _ = work_tx.send(batch);
}

fn batcher_loop(
    ingress: Receiver<Request>,
    control: Receiver<Control>,
    work_tx: Sender<Vec<Request>>,
    config: ServeConfig,
    stats: Arc<StatsInner>,
) {
    loop {
        // Idle: wait for a request or a drain order (control has priority).
        let first = match select2(&control, &ingress) {
            Select2::First(_) => break, // Drain, or Server dropped its control sender
            Select2::Second(Ok(req)) => req,
            Select2::Second(Err(_)) => break, // every ingress sender gone
        };

        // Coalescing: fill the open batch until budget, deadline, or a
        // shape change.
        let mut batch = vec![first];
        let mut deadline = Instant::now() + config.deadline;
        while batch.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match ingress.recv_timeout(deadline - now) {
                Ok(req) => {
                    if req.x.shape() != batch[0].x.shape() {
                        // Shape cohorts never share a forward pass: flush
                        // the open batch and open a new one around `req`.
                        dispatch(&work_tx, std::mem::replace(&mut batch, vec![req]), &stats);
                        deadline = Instant::now() + config.deadline;
                    } else {
                        batch.push(req);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    dispatch(&work_tx, batch, &stats);
                    return; // work_tx drops; workers drain and exit
                }
            }
        }
        dispatch(&work_tx, batch, &stats);
    }

    // Draining: dispatch everything still queued, in shape-uniform,
    // budget-sized batches, without waiting for more.
    let mut batch: Vec<Request> = Vec::new();
    while let Ok(req) = ingress.try_recv() {
        if !batch.is_empty()
            && (batch.len() >= config.max_batch || req.x.shape() != batch[0].x.shape())
        {
            dispatch(&work_tx, std::mem::take(&mut batch), &stats);
        }
        batch.push(req);
    }
    dispatch(&work_tx, batch, &stats);
    // work_tx drops here: workers finish the queue and exit.
}

fn worker_loop(mut net: Network, work: Receiver<Vec<Request>>, stats: Arc<StatsInner>) -> Network {
    let was_training = net.is_training();
    net.set_training(false);
    net.clear_stash();
    while let Ok(batch) = work.recv() {
        let n = batch.len();
        let sample = &batch[0].x;
        let mut shape = Vec::with_capacity(1 + sample.rank());
        shape.push(n);
        shape.extend_from_slice(sample.shape());
        let mut data = Vec::with_capacity(n * sample.len());
        for req in &batch {
            data.extend_from_slice(req.x.as_slice());
        }
        let x = Tensor::from_vec(data, &shape).expect("batcher guarantees uniform sample shapes");
        let result = catch_unwind(AssertUnwindSafe(|| net.forward(&x)));
        // A panic can leave half-stashed activations behind; clearing makes
        // the network reusable for the next batch either way.
        net.clear_stash();
        match result {
            Ok(y) => {
                debug_assert_eq!(y.shape()[0], n, "forward preserves the batch dimension");
                let row = y.len() / n;
                let out_shape = &y.shape()[1..];
                let ys = y.as_slice();
                for (i, req) in batch.into_iter().enumerate() {
                    let logits = Tensor::from_vec(ys[i * row..(i + 1) * row].to_vec(), out_shape)
                        .expect("row slice matches per-sample shape");
                    stats.replied.fetch_add(1, Ordering::Relaxed);
                    // A dropped `Pending` makes this send fail; that is the
                    // client's choice, not an error.
                    let _ = req.reply.send(Ok(logits));
                }
            }
            Err(_) => {
                stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                for req in batch {
                    stats.replied.fetch_add(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(ServeError::WorkerPanicked));
                }
            }
        }
    }
    net.set_training(was_training);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A client wired to an undrained bounded(1) ingress queue: the first
    /// submit fills the only slot, the second must be rejected with the
    /// typed overload error — deterministically, with no batcher racing to
    /// empty the queue.
    #[test]
    fn full_ingress_queue_rejects_with_overloaded() {
        let (ingress, ingress_rx) = bounded::<Request>(1);
        let client = Client {
            ingress,
            shutting_down: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(StatsInner::default()),
        };
        let x = || Tensor::from_slice(&[1.0, 2.0]);

        let _first = client.submit(x()).expect("one slot is free");
        let second = client.submit(x());
        assert!(matches!(second, Err(ServeError::Overloaded)));
        let stats = client.stats.snapshot();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.overloaded, 1);
        assert_eq!(stats.rejected, 0);

        // Draining the slot re-opens admission.
        drop(ingress_rx.recv().expect("queued request"));
        client.submit(x()).expect("slot freed");

        // Receiver gone entirely: that is shutdown, not overload.
        drop(ingress_rx);
        assert!(matches!(client.submit(x()), Err(ServeError::ShuttingDown)));
        assert_eq!(client.stats.snapshot().rejected, 1);
    }
}
