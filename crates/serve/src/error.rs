//! Typed serving errors.

use std::fmt;

/// Why a request did not produce logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already gone): the request was
    /// rejected at submission, or was in flight when the reply pipeline
    /// was torn down.
    ShuttingDown,
    /// The worker evaluating this request's batch panicked (for example,
    /// on an input whose shape the network rejects). The worker survives
    /// and keeps serving later batches.
    WorkerPanicked,
    /// The pending-request queue is full (`PBP_SERVE_QUEUE` /
    /// [`crate::ServeConfig::queue`] slots): the request was rejected at
    /// submission without queueing. The caller owns the retry policy —
    /// back off and resubmit, or shed the load.
    Overloaded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked while evaluating this request's batch")
            }
            ServeError::Overloaded => {
                write!(f, "server overloaded: pending-request queue is full")
            }
        }
    }
}

impl std::error::Error for ServeError {}
