//! High-throughput inference serving over trained networks.
//!
//! The paper's premise is that utilization comes from restructuring
//! execution, not from growing batch sizes at the expense of semantics.
//! This crate applies the same idea to inference: a [`Server`] owns one or
//! more trained [`Network`]s and an ingress queue of single-sample
//! requests; a batcher thread coalesces queued requests into batches — up
//! to a batch budget or a latency deadline, whichever comes first — and a
//! pool of worker threads runs each batch through one forward pass in eval
//! mode.
//!
//! # Why dynamic batching is semantically free here
//!
//! Every kernel in `pbp-tensor` keeps the bit-exact accumulation contract
//! (see `pbp_tensor::ops::gemm`): each output element is one fused
//! multiply-add chain whose value is independent of dispatch path, SIMD
//! tier, thread count — and, through the batched conv lowering
//! (`pbp_tensor::ops::conv2d_batched`), of how many samples share the
//! forward pass. Eval mode makes every layer act row-wise. So the reply
//! for a given input tensor is **bit-identical** no matter which worker
//! ran it, which requests it shared a batch with, or how the coalescing
//! timer happened to fire. Batch composition is purely a throughput knob,
//! which is exactly what lets the batcher trade latency for throughput
//! without changing a single reply byte.
//!
//! # Co-scheduling
//!
//! Worker threads park one kernel-pool core each via
//! `pbp_tensor::pool::reserve` for the server's lifetime, so the GEMM pool
//! and the serving pool divide the machine instead of oversubscribing it —
//! the same arrangement the threaded pipeline engine uses for its stage
//! workers.
//!
//! ```
//! use pbp_serve::{Server, ServeConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = pbp_nn::models::mlp(&[4, 8, 3], &mut rng);
//! let server = Server::start(vec![net], ServeConfig::default());
//! let client = server.client();
//! let logits = client
//!     .infer(pbp_tensor::Tensor::from_slice(&[0.1, 0.2, 0.3, 0.4]))
//!     .unwrap();
//! assert_eq!(logits.shape(), &[3]);
//! server.shutdown();
//! ```

mod config;
mod error;
mod server;

pub use config::{ServeConfig, DEFAULT_DEADLINE_US, DEFAULT_MAX_BATCH};
pub use error::ServeError;
pub use server::{Client, Pending, ServeStats, Server};
