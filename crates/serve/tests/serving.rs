//! End-to-end serving behavior: bit-exact replies, coalescing, shape
//! cohorts, typed worker failures, and graceful shutdown.

use pbp_nn::models::{mlp, simple_cnn};
use pbp_nn::Network;
use pbp_serve::{ServeConfig, ServeError, Server};
use pbp_tensor::{normal, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Two structurally-identical networks from the same seed: one to serve,
/// one to compute reference logits directly.
fn twin_mlps() -> (Network, Network) {
    let build = || mlp(&[6, 16, 4], &mut StdRng::seed_from_u64(3));
    (build(), build())
}

/// Reference forward in eval mode on a single sample.
fn direct_logits(net: &mut Network, x: &Tensor) -> Tensor {
    net.set_training(false);
    let mut shape = vec![1];
    shape.extend_from_slice(x.shape());
    let batched = Tensor::from_vec(x.as_slice().to_vec(), &shape).unwrap();
    let y = net.forward(&batched);
    net.clear_stash();
    Tensor::from_vec(y.as_slice().to_vec(), &y.shape()[1..]).unwrap()
}

fn assert_bits_eq(got: &Tensor, want: &Tensor, context: &str) {
    assert_eq!(got.shape(), want.shape(), "{context}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{context}: element {i}");
    }
}

#[test]
fn replies_match_direct_forward_bitwise() {
    let (served, mut reference) = twin_mlps();
    let server = Server::start(vec![served], ServeConfig::default());
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..8 {
        let x = normal(&[6], 0.0, 1.0, &mut rng);
        let got = client.infer(x.clone()).expect("infer succeeds");
        let want = direct_logits(&mut reference, &x);
        assert_bits_eq(&got, &want, "served logits");
    }
    let (_, stats) = server.shutdown();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.replied, 8);
}

#[test]
fn coalesced_batches_reply_identically_to_solo_requests() {
    // A long deadline plus pre-queued requests forces coalescing; the
    // replies must still match a per-request reference bit for bit —
    // batch composition is unobservable.
    let (served, mut reference) = twin_mlps();
    let server = Server::start(
        vec![served],
        ServeConfig {
            max_batch: 16,
            deadline: Duration::from_millis(500),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Tensor> = (0..12).map(|_| normal(&[6], 0.0, 1.0, &mut rng)).collect();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| client.submit(x.clone()).expect("submit"))
        .collect();
    for (x, pending) in inputs.iter().zip(pendings) {
        let got = pending.wait().expect("reply");
        let want = direct_logits(&mut reference, x);
        assert_bits_eq(&got, &want, "coalesced logits");
    }
    let (_, stats) = server.shutdown();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.replied, 12);
    assert!(
        stats.max_coalesced >= 2,
        "expected coalescing under a 500ms deadline, max batch was {}",
        stats.max_coalesced
    );
    assert!(
        stats.batches < 12,
        "12 requests should not need 12 batches, got {}",
        stats.batches
    );
}

#[test]
fn cnn_serving_uses_batched_lowering_bit_identically() {
    // Conv nets exercise the batched im2col lowering in eval mode; the
    // served reply must match the reference forward exactly.
    let build = || simple_cnn(2, 6, 2, 3, &mut StdRng::seed_from_u64(5));
    let mut reference = build();
    let server = Server::start(
        vec![build()],
        ServeConfig {
            max_batch: 8,
            deadline: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(12);
    let inputs: Vec<Tensor> = (0..6)
        .map(|_| normal(&[2, 5, 5], 0.0, 1.0, &mut rng))
        .collect();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| client.submit(x.clone()).expect("submit"))
        .collect();
    for (x, pending) in inputs.iter().zip(pendings) {
        let got = pending.wait().expect("reply");
        let want = direct_logits(&mut reference, x);
        assert_bits_eq(&got, &want, "cnn logits");
    }
    server.shutdown();
}

#[test]
fn shape_cohorts_are_batched_separately() {
    // A CNN head is size-agnostic (global average pooling), so two input
    // resolutions are both valid — but they can never share one forward
    // pass. The batcher must flush between cohorts, and both replies must
    // be correct.
    let build = || simple_cnn(2, 6, 2, 3, &mut StdRng::seed_from_u64(6));
    let mut reference = build();
    let server = Server::start(
        vec![build()],
        ServeConfig {
            max_batch: 8,
            deadline: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(13);
    let small = normal(&[2, 5, 5], 0.0, 1.0, &mut rng);
    let large = normal(&[2, 7, 7], 0.0, 1.0, &mut rng);
    let p1 = client.submit(small.clone()).unwrap();
    let p2 = client.submit(large.clone()).unwrap();
    let p3 = client.submit(small.clone()).unwrap();
    let r1 = p1.wait().expect("small #1");
    let r2 = p2.wait().expect("large");
    let r3 = p3.wait().expect("small #2");
    assert_bits_eq(&r1, &direct_logits(&mut reference, &small), "small #1");
    assert_bits_eq(&r2, &direct_logits(&mut reference, &large), "large");
    assert_bits_eq(&r3, &direct_logits(&mut reference, &small), "small #2");
    let (_, stats) = server.shutdown();
    assert!(
        stats.batches >= 2,
        "mixed shapes need at least two batches, got {}",
        stats.batches
    );
}

#[test]
fn worker_panic_is_a_typed_error_and_the_worker_survives() {
    let (served, mut reference) = twin_mlps();
    let server = Server::start(vec![served], ServeConfig::default());
    let client = server.client();
    // Wrong feature width: the first linear layer panics on the shape
    // mismatch. The request must fail with a typed error, not a hang.
    let bad = Tensor::from_slice(&[1.0, 2.0]);
    assert_eq!(client.infer(bad), Err(ServeError::WorkerPanicked));
    // The worker keeps serving after the panic.
    let x = Tensor::from_slice(&[0.5, -0.25, 0.125, 1.0, -1.0, 2.0]);
    let got = client.infer(x.clone()).expect("worker survived the panic");
    assert_bits_eq(&got, &direct_logits(&mut reference, &x), "post-panic");
    let (_, stats) = server.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.replied, 2);
}

#[test]
fn shutdown_serves_queued_requests_then_rejects_new_ones() {
    let (served, mut reference) = twin_mlps();
    let server = Server::start(
        vec![served],
        ServeConfig {
            max_batch: 4,
            // A long deadline keeps requests queued in the batcher when
            // shutdown lands; the drain must still serve them.
            deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(14);
    let inputs: Vec<Tensor> = (0..10).map(|_| normal(&[6], 0.0, 1.0, &mut rng)).collect();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| client.submit(x.clone()).expect("submit"))
        .collect();
    let (nets, stats) = server.shutdown();
    assert_eq!(nets.len(), 1, "shutdown returns the networks");
    assert!(nets[0].is_training(), "training mode is restored");
    assert_eq!(stats.replied, 10, "drain serves every queued request");
    for (x, pending) in inputs.iter().zip(pendings) {
        let got = pending.wait().expect("queued request served at shutdown");
        assert_bits_eq(&got, &direct_logits(&mut reference, x), "drained");
    }
    // The client outlives the server: submissions now fail fast.
    let x = normal(&[6], 0.0, 1.0, &mut rng);
    assert_eq!(client.infer(x), Err(ServeError::ShuttingDown));
}

#[test]
fn multiple_workers_serve_concurrently_and_identically() {
    let build = || mlp(&[6, 16, 4], &mut StdRng::seed_from_u64(3));
    let mut reference = build();
    let server = Server::start(
        vec![build(), build(), build()],
        ServeConfig {
            max_batch: 2,
            deadline: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut rng = StdRng::seed_from_u64(15);
    let inputs: Vec<Tensor> = (0..30).map(|_| normal(&[6], 0.0, 1.0, &mut rng)).collect();
    let pendings: Vec<_> = inputs
        .iter()
        .map(|x| client.submit(x.clone()).expect("submit"))
        .collect();
    for (x, pending) in inputs.iter().zip(pendings) {
        let got = pending.wait().expect("reply");
        assert_bits_eq(&got, &direct_logits(&mut reference, x), "multi-worker");
    }
    let (nets, stats) = server.shutdown();
    assert_eq!(nets.len(), 3);
    assert_eq!(stats.replied, 30);
}
