//! Model-FLOPs-utilization (MFU) and roofline accounting.
//!
//! MFU divides the FLOPs the *model* requires (counted analytically from
//! `flops_per_sample`, independent of how the implementation computes
//! them) by the wall time of the run and the machine's achievable peak:
//!
//! ```text
//! MFU = model_flops / (wall_seconds × peak_flops_per_sec)
//! ```
//!
//! The per-machine peak is not a datasheet number: it is estimated by
//! running the repo's own best GEMM kernel (the SIMD micro-kernels behind
//! [`pbp_tensor::ops::gemm_nn`]) on a compute-bound 256³ multiply, the
//! same shape the `bench_kernels` lane reports. That makes MFU a "percent
//! of what this binary can actually reach on this box" — a roofline
//! calibrated to the measured kernel, so scheduling overheads and
//! pipeline bubbles are isolated from kernel quality.

use crate::{json_f64, json_string};
use std::time::Instant;

/// Default problem size for the peak probe: 256³ is comfortably
/// compute-bound and matches the `bench_kernels` headline shape.
const PEAK_PROBE_DIM: usize = 256;
/// Repetitions of the probe; the best (minimum-time) rep is the peak.
const PEAK_PROBE_REPS: usize = 4;

/// Estimates this machine's achievable single-core-pool peak in GFLOP/s
/// by timing the repo's GEMM on a 256³ multiply (one warmup rep, then the
/// best of [`PEAK_PROBE_REPS`] timed reps).
pub fn measure_peak_gflops() -> f64 {
    let n = PEAK_PROBE_DIM;
    let a = vec![0.5f32; n * n];
    let b = vec![0.25f32; n * n];
    let mut c = vec![0.0f32; n * n];
    let flops = 2.0 * (n * n * n) as f64;
    pbp_tensor::ops::gemm_nn(&a, &b, &mut c, n, n, n, false); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..PEAK_PROBE_REPS {
        let t0 = Instant::now();
        pbp_tensor::ops::gemm_nn(&a, &b, &mut c, n, n, n, false);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    // Keep the result observable so the kernel cannot be optimized out.
    assert!(c[0].is_finite());
    flops / best * 1e-9
}

/// Total model FLOPs for a training run: the standard 3× rule (forward +
/// input-gradient + weight-gradient each cost one forward's FLOPs for
/// GEMM-dominated layers) applied to the analytic per-sample forward
/// count.
pub fn model_flops(forward_flops_per_sample: u64, samples: usize) -> f64 {
    3.0 * forward_flops_per_sample as f64 * samples as f64
}

/// An MFU/roofline report for one run.
#[derive(Debug, Clone)]
pub struct MfuReport {
    /// Analytic model FLOPs of the run (forward + backward).
    pub model_flops: f64,
    /// Measured wall time of the run in seconds.
    pub wall_seconds: f64,
    /// Measured machine peak in GFLOP/s (see [`measure_peak_gflops`]).
    pub peak_gflops: f64,
    /// `model_flops / wall_seconds`, in GFLOP/s.
    pub achieved_gflops: f64,
    /// Model FLOPs utilization in `[0, 1]` for a healthy measurement.
    pub mfu: f64,
}

impl MfuReport {
    /// Builds the report from a run's analytic FLOPs, measured wall time
    /// and the machine peak.
    pub fn new(model_flops: f64, wall_seconds: f64, peak_gflops: f64) -> Self {
        let achieved_gflops = if wall_seconds > 0.0 {
            model_flops / wall_seconds * 1e-9
        } else {
            0.0
        };
        let mfu = if peak_gflops > 0.0 {
            achieved_gflops / peak_gflops
        } else {
            0.0
        };
        MfuReport {
            model_flops,
            wall_seconds,
            peak_gflops,
            achieved_gflops,
            mfu,
        }
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"model_flops\":{},\"wall_seconds\":{},\"achieved_gflops\":{},\"peak_gflops\":{},\"mfu\":{}}}",
            json_f64(self.model_flops),
            json_f64(self.wall_seconds),
            json_f64(self.achieved_gflops),
            json_f64(self.peak_gflops),
            json_f64(self.mfu)
        )
    }

    /// One human-readable line for bench tables.
    pub fn summary(&self, label: &str) -> String {
        format!(
            "{label}: {:.2} GFLOP/s of {:.2} peak — MFU {:.4}",
            self.achieved_gflops, self.peak_gflops, self.mfu
        )
    }
}

/// Serializes a labelled set of reports into one JSON document (used by
/// the `bench_trace` binary).
pub fn reports_to_json(reports: &[(String, String)]) -> String {
    let mut out = String::from("{\"runs\":[");
    for (i, (label, body)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"label\":{},{}}}", json_string(label), body));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_probe_is_positive_and_finite() {
        let peak = measure_peak_gflops();
        assert!(peak.is_finite() && peak > 0.0, "peak {peak}");
    }

    #[test]
    fn report_arithmetic() {
        // 3 GFLOP in 2 s → 1.5 GFLOP/s; against a 15 GFLOP/s peak → 0.1.
        let r = MfuReport::new(3e9, 2.0, 15.0);
        assert!((r.achieved_gflops - 1.5).abs() < 1e-9);
        assert!((r.mfu - 0.1).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"mfu\":0.1"));
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("peak_gflops").and_then(|v| v.as_f64()),
            Some(15.0)
        );
    }

    #[test]
    fn model_flops_applies_three_x() {
        assert_eq!(model_flops(100, 7), 2100.0);
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let r = MfuReport::new(1e9, 0.0, 0.0);
        assert_eq!(r.achieved_gflops, 0.0);
        assert_eq!(r.mfu, 0.0);
    }
}
