//! Chrome-trace observability for the pipelined-backprop engines.
//!
//! The tracer is a low-overhead per-thread span recorder: each worker (or
//! each simulated stage) owns a [`Lane`] that buffers begin/end records in
//! a plain `Vec` with no synchronization on the hot path, and flushes them
//! into the shared [`Tracer`] under one lock per flush. A finished
//! [`Trace`] pairs the records into spans and serializes them as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` object format), loadable
//! in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Two "processes" organize the lanes:
//!
//! * [`PID_WALL`] — wall-clock lanes, timestamped from a shared epoch with
//!   [`std::time::Instant`]: what each stage *actually did* and when.
//! * [`PID_VIRTUAL`] — virtual-timeline lanes, timestamped in abstract
//!   ticks by a schedule simulator through [`Lane::begin_at`] /
//!   [`Lane::end_at`]: what the schedule's dataflow *implies*, with unit
//!   task costs, so fill/drain bubbles are visible even when the engine
//!   executing the schedule is a sequential emulator.
//!
//! A disabled tracer (the default everywhere) reduces every recording call
//! to one branch on an `Option`, so instrumented hot loops pay nothing
//! measurable when tracing is off.

pub mod analysis;
pub mod json;
pub mod mfu;

pub use analysis::{LaneStats, TraceAnalysis};
pub use mfu::{measure_peak_gflops, model_flops, MfuReport};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process id of wall-clock lanes (real measured time).
pub const PID_WALL: u32 = 0;
/// Process id of virtual schedule-timeline lanes (abstract ticks).
pub const PID_VIRTUAL: u32 = 1;

/// The kind of work (or event) a span/instant describes. Span names in the
/// emitted JSON come from [`TracePhase::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// Forward pass of one microbatch through one stage.
    Forward,
    /// Backward pass w.r.t. the stage input (or the fused full backward).
    BackwardInput,
    /// Deferred weight-gradient half of a split backward (2BP).
    BackwardWeight,
    /// Optimizer update at a stage.
    Update,
    /// Stage idle / injected stall / watchdog-visible wait.
    Stall,
    /// Snapshot written by the training runner.
    Snapshot,
    /// A detected fault (worker panic, stall attribution, channel drop).
    Fault,
    /// Supervisor restart from a snapshot.
    Restart,
    /// Supervisor backoff sleep before a restart attempt.
    Backoff,
    /// A rank-to-rank link tore down and re-established with replay.
    Reconnect,
    /// Switchover to the degraded (deterministic emulator) engine.
    Degraded,
}

impl TracePhase {
    /// The event name emitted into the Chrome trace.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Forward => "forward",
            TracePhase::BackwardInput => "backward_input",
            TracePhase::BackwardWeight => "backward_weight",
            TracePhase::Update => "update",
            TracePhase::Stall => "stall",
            TracePhase::Snapshot => "snapshot",
            TracePhase::Fault => "fault",
            TracePhase::Restart => "restart",
            TracePhase::Backoff => "backoff",
            TracePhase::Reconnect => "reconnect",
            TracePhase::Degraded => "degraded",
        }
    }

    /// Whether spans of this phase count as stall (idle) rather than busy
    /// time in [`TraceAnalysis`].
    pub fn is_stall(self) -> bool {
        matches!(self, TracePhase::Stall | TracePhase::Backoff)
    }
}

/// One buffered record inside a lane. Begins and ends pair LIFO per lane
/// when the trace is finished.
#[derive(Debug, Clone)]
enum Record {
    Begin {
        phase: TracePhase,
        t_ns: u64,
        microbatch: Option<u64>,
        weight_version: Option<u64>,
    },
    End {
        t_ns: u64,
    },
    Instant {
        phase: TracePhase,
        t_ns: u64,
        detail: Option<String>,
    },
}

struct LaneBuf {
    sort: i64,
    records: Vec<Record>,
}

struct TracerInner {
    epoch: Instant,
    lanes: Mutex<BTreeMap<(u32, String), LaneBuf>>,
}

/// Shared handle to a trace being recorded. Cheap to clone; a disabled
/// tracer carries no allocation and makes every operation a no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Tracer {
    /// An enabled tracer whose epoch (timestamp zero) is now.
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                lanes: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The disabled tracer: all recording is a no-op.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Opens a lane (one horizontal track in the trace view). Lanes are
    /// keyed by `(pid, name)`: re-opening the same key — e.g. a restarted
    /// worker thread — appends to the existing track on flush. `sort`
    /// orders lanes top-to-bottom within the process.
    pub fn lane(&self, pid: u32, name: impl Into<String>, sort: i64) -> Lane {
        Lane {
            tracer: self.inner.clone(),
            pid,
            name: name.into(),
            sort,
            records: Vec::new(),
        }
    }

    /// Pairs and snapshots everything flushed so far into a [`Trace`].
    /// Lanes with unflushed buffers (still-live [`Lane`]s) are not
    /// included until they flush or drop.
    pub fn finish(&self) -> Trace {
        let mut lanes = Vec::new();
        if let Some(inner) = &self.inner {
            let map = inner.lanes.lock().expect("tracer lock");
            for ((pid, name), buf) in map.iter() {
                lanes.push(pair_lane(*pid, name.clone(), buf.sort, &buf.records));
            }
        }
        lanes.sort_by(|a, b| {
            (a.pid, a.sort, a.name.as_str()).cmp(&(b.pid, b.sort, b.name.as_str()))
        });
        Trace { lanes }
    }
}

/// A per-thread (or per-simulated-stage) event buffer. Not `Sync`: each
/// lane belongs to exactly one recording thread. Dropping a lane flushes
/// it into the tracer.
pub struct Lane {
    tracer: Option<Arc<TracerInner>>,
    pid: u32,
    name: String,
    sort: i64,
    records: Vec<Record>,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lane(pid={}, {:?}, {} records)",
            self.pid,
            self.name,
            self.records.len()
        )
    }
}

impl Lane {
    /// Whether this lane records anything (false for lanes minted from a
    /// disabled tracer).
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    fn now_ns(&self) -> u64 {
        match &self.tracer {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Opens a span now. `microbatch` / `weight_version` become the span's
    /// args in the trace.
    pub fn begin(
        &mut self,
        phase: TracePhase,
        microbatch: Option<u64>,
        weight_version: Option<u64>,
    ) {
        if self.tracer.is_some() {
            let t_ns = self.now_ns();
            self.begin_at(t_ns, phase, microbatch, weight_version);
        }
    }

    /// Closes the innermost open span now.
    pub fn end(&mut self) {
        if self.tracer.is_some() {
            let t_ns = self.now_ns();
            self.end_at(t_ns);
        }
    }

    /// Opens a span at an explicit timestamp (virtual timelines).
    pub fn begin_at(
        &mut self,
        t_ns: u64,
        phase: TracePhase,
        microbatch: Option<u64>,
        weight_version: Option<u64>,
    ) {
        if self.tracer.is_some() {
            self.records.push(Record::Begin {
                phase,
                t_ns,
                microbatch,
                weight_version,
            });
        }
    }

    /// Closes the innermost open span at an explicit timestamp.
    pub fn end_at(&mut self, t_ns: u64) {
        if self.tracer.is_some() {
            self.records.push(Record::End { t_ns });
        }
    }

    /// Records a zero-duration instant event now.
    pub fn instant(&mut self, phase: TracePhase, detail: Option<String>) {
        if self.tracer.is_some() {
            let t_ns = self.now_ns();
            self.instant_at(t_ns, phase, detail);
        }
    }

    /// Records an instant at an explicit timestamp.
    pub fn instant_at(&mut self, t_ns: u64, phase: TracePhase, detail: Option<String>) {
        if self.tracer.is_some() {
            self.records.push(Record::Instant {
                phase,
                t_ns,
                detail,
            });
        }
    }

    /// Records a complete span from explicit timestamps (used when the
    /// duration was measured before the lane could be touched, e.g. a
    /// snapshot write timed by the runner).
    pub fn span_at(
        &mut self,
        start_ns: u64,
        end_ns: u64,
        phase: TracePhase,
        microbatch: Option<u64>,
        weight_version: Option<u64>,
    ) {
        self.begin_at(start_ns, phase, microbatch, weight_version);
        self.end_at(end_ns.max(start_ns));
    }

    /// Appends this lane's buffered records into the tracer. The lane
    /// stays usable; flushing an empty buffer is free.
    pub fn flush(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Some(inner) = &self.tracer {
            let mut map = inner.lanes.lock().expect("tracer lock");
            let buf = map
                .entry((self.pid, self.name.clone()))
                .or_insert_with(|| LaneBuf {
                    sort: self.sort,
                    records: Vec::new(),
                });
            buf.records.append(&mut self.records);
        } else {
            self.records.clear();
        }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A completed span in a finished trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub phase: TracePhase,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub microbatch: Option<u64>,
    pub weight_version: Option<u64>,
}

impl Span {
    /// End timestamp.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A zero-duration event in a finished trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantEvent {
    pub phase: TracePhase,
    pub t_ns: u64,
    pub detail: Option<String>,
}

/// One track of a finished trace: all spans and instants recorded under a
/// `(pid, name)` key, in record order.
#[derive(Debug, Clone)]
pub struct TraceLane {
    pub pid: u32,
    pub name: String,
    pub sort: i64,
    pub spans: Vec<Span>,
    pub instants: Vec<InstantEvent>,
    /// Begin records that never saw a matching end (0 in a well-formed
    /// trace; they are closed at the lane's last timestamp so the trace
    /// still renders).
    pub unmatched_begins: usize,
}

/// A finished, paired trace ready for serialization or analysis.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub lanes: Vec<TraceLane>,
}

fn pair_lane(pid: u32, name: String, sort: i64, records: &[Record]) -> TraceLane {
    let mut spans = Vec::new();
    let mut instants = Vec::new();
    // Indices into `spans` of begins awaiting their end; LIFO so nested
    // spans close innermost-first.
    let mut open: Vec<usize> = Vec::new();
    let mut last_t = 0u64;
    for rec in records {
        match rec {
            Record::Begin {
                phase,
                t_ns,
                microbatch,
                weight_version,
            } => {
                last_t = last_t.max(*t_ns);
                open.push(spans.len());
                spans.push(Span {
                    phase: *phase,
                    start_ns: *t_ns,
                    dur_ns: 0,
                    microbatch: *microbatch,
                    weight_version: *weight_version,
                });
            }
            Record::End { t_ns } => {
                last_t = last_t.max(*t_ns);
                if let Some(i) = open.pop() {
                    spans[i].dur_ns = t_ns.saturating_sub(spans[i].start_ns);
                }
            }
            Record::Instant {
                phase,
                t_ns,
                detail,
            } => {
                last_t = last_t.max(*t_ns);
                instants.push(InstantEvent {
                    phase: *phase,
                    t_ns: *t_ns,
                    detail: detail.clone(),
                });
            }
        }
    }
    let unmatched_begins = open.len();
    for i in open {
        spans[i].dur_ns = last_t.saturating_sub(spans[i].start_ns);
    }
    TraceLane {
        pid,
        name,
        sort,
        spans,
        instants,
        unmatched_begins,
    }
}

impl Trace {
    /// Looks up a lane by process and name.
    pub fn lane(&self, pid: u32, name: &str) -> Option<&TraceLane> {
        self.lanes.iter().find(|l| l.pid == pid && l.name == name)
    }

    /// All lanes of one process.
    pub fn lanes_of(&self, pid: u32) -> impl Iterator<Item = &TraceLane> {
        self.lanes.iter().filter(move |l| l.pid == pid)
    }

    /// Total spans across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// A timestamp-free rendering of the trace's structure: lane names and
    /// the ordered (phase, microbatch, weight-version) sequence of every
    /// lane. Two runs of a deterministic engine at the same seed produce
    /// equal signatures even though their wall-clock timings differ.
    pub fn structural_signature(&self) -> String {
        let mut out = String::new();
        for lane in &self.lanes {
            out.push_str(&format!("lane {}:{}\n", lane.pid, lane.name));
            for span in &lane.spans {
                out.push_str(&format!(
                    "  {} mb={:?} wv={:?}\n",
                    span.phase.name(),
                    span.microbatch,
                    span.weight_version
                ));
            }
            for inst in &lane.instants {
                out.push_str(&format!("  !{}\n", inst.phase.name()));
            }
        }
        out
    }

    /// Serializes the trace as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`). Timestamps are
    /// microseconds with nanosecond precision preserved as fractions.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |ev: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };
        for (tid0, lane) in self.lanes.iter().enumerate() {
            let tid = tid0 + 1;
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    lane.pid,
                    tid,
                    json_string(&lane.name)
                ),
                &mut first,
            );
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{}}}}}",
                    lane.pid, tid, lane.sort
                ),
                &mut first,
            );
            for span in &lane.spans {
                let mut args = String::new();
                if let Some(mb) = span.microbatch {
                    args.push_str(&format!("\"microbatch\":{mb}"));
                }
                if let Some(wv) = span.weight_version {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    args.push_str(&format!("\"weight_version\":{wv}"));
                }
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"pbp\",\"args\":{{{}}}}}",
                        lane.pid,
                        tid,
                        micros(span.start_ns),
                        micros(span.dur_ns),
                        span.phase.name(),
                        args
                    ),
                    &mut first,
                );
            }
            for inst in &lane.instants {
                let args = match &inst.detail {
                    Some(d) => format!("\"detail\":{}", json_string(d)),
                    None => String::new(),
                };
                push(
                    format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"cat\":\"pbp\",\"args\":{{{}}}}}",
                        lane.pid,
                        tid,
                        micros(inst.t_ns),
                        inst.phase.name(),
                        args
                    ),
                    &mut first,
                );
            }
        }
        // Process names so Perfetto groups wall vs virtual lanes.
        for (pid, pname) in [
            (PID_WALL, "wall clock"),
            (PID_VIRTUAL, "schedule (virtual)"),
        ] {
            if self.lanes.iter().any(|l| l.pid == pid) {
                push(
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{pname}\"}}}}"
                    ),
                    &mut first,
                );
            }
        }
        let _ = first;
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Writes the Chrome JSON to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Nanoseconds → microseconds, rendered with sub-µs fraction only when
/// needed (Chrome's `ts`/`dur` unit is microseconds).
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats print as-is, non-finite become `null`.
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut lane = t.lane(PID_WALL, "stage-0", 0);
        lane.begin(TracePhase::Forward, Some(0), Some(0));
        lane.end();
        lane.flush();
        let trace = t.finish();
        assert!(trace.lanes.is_empty());
        assert_eq!(trace.span_count(), 0);
    }

    #[test]
    fn spans_pair_lifo_and_merge_across_flushes() {
        let t = Tracer::new();
        {
            let mut lane = t.lane(PID_WALL, "stage-0", 0);
            lane.begin_at(10, TracePhase::Forward, Some(0), Some(0));
            lane.end_at(20);
            lane.flush();
            // Same key again (e.g. a restarted worker): appends.
            let mut lane2 = t.lane(PID_WALL, "stage-0", 0);
            lane2.begin_at(30, TracePhase::BackwardInput, Some(0), Some(0));
            lane2.end_at(45);
            // lane2 drops here and auto-flushes.
        }
        let trace = t.finish();
        assert_eq!(trace.lanes.len(), 1);
        let lane = trace.lane(PID_WALL, "stage-0").unwrap();
        assert_eq!(lane.spans.len(), 2);
        assert_eq!(lane.unmatched_begins, 0);
        assert_eq!(lane.spans[0].phase, TracePhase::Forward);
        assert_eq!(lane.spans[0].dur_ns, 10);
        assert_eq!(lane.spans[1].phase, TracePhase::BackwardInput);
        assert_eq!(lane.spans[1].dur_ns, 15);
    }

    #[test]
    fn nested_spans_close_innermost_first() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "s", 0);
        lane.begin_at(0, TracePhase::BackwardInput, Some(1), None);
        lane.begin_at(2, TracePhase::Stall, None, None);
        lane.end_at(5); // closes the stall
        lane.end_at(9); // closes the backward
        lane.flush();
        let trace = t.finish();
        let lane = &trace.lanes[0];
        assert_eq!(lane.spans[0].phase, TracePhase::BackwardInput);
        assert_eq!(lane.spans[0].dur_ns, 9);
        assert_eq!(lane.spans[1].phase, TracePhase::Stall);
        assert_eq!(lane.spans[1].dur_ns, 3);
    }

    #[test]
    fn unmatched_begins_are_counted_and_closed() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "s", 0);
        lane.begin_at(0, TracePhase::Forward, None, None);
        lane.begin_at(4, TracePhase::Update, None, None);
        lane.end_at(6);
        lane.flush();
        let trace = t.finish();
        let lane = &trace.lanes[0];
        assert_eq!(lane.unmatched_begins, 1);
        assert_eq!(lane.spans[0].dur_ns, 6); // closed at last timestamp
    }

    #[test]
    fn chrome_json_is_parseable_and_complete() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "stage-0", 0);
        lane.span_at(1_000, 3_500, TracePhase::Forward, Some(7), Some(3));
        lane.instant_at(4_000, TracePhase::Fault, Some("boom \"quoted\"".into()));
        lane.flush();
        let mut vlane = t.lane(PID_VIRTUAL, "sched-0", 0);
        vlane.span_at(0, 2_000, TracePhase::Forward, Some(0), None);
        vlane.flush();
        let doc = t.finish().to_chrome_json();
        let parsed = json::Json::parse(&doc).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // 2 lanes × 2 metadata + 2 spans + 1 instant + 2 process names.
        assert_eq!(events.len(), 9);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("an X event");
        assert_eq!(span.get("ts").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(span.get("dur").and_then(|v| v.as_f64()), Some(2.5));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("microbatch"))
                .and_then(|v| v.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn structural_signature_ignores_time() {
        let make = |offset: u64| {
            let t = Tracer::new();
            let mut lane = t.lane(PID_WALL, "stage-0", 0);
            lane.span_at(offset, offset + 5, TracePhase::Forward, Some(0), Some(1));
            lane.flush();
            t.finish().structural_signature()
        };
        assert_eq!(make(10), make(99));
    }

    #[test]
    fn micros_renders_fractions_only_when_needed() {
        assert_eq!(micros(2_000), "2");
        assert_eq!(micros(2_500), "2.500");
        assert_eq!(micros(1), "0.001");
    }
}
