//! A minimal recursive-descent JSON parser, just enough to validate and
//! inspect the trace documents this crate emits (the workspace is built
//! offline, so no serde). Numbers parse as `f64`; objects preserve key
//! order; no streaming.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\nb\"c""#).unwrap(),
            Json::Str("a\nb\"c".to_string())
        );
        let doc = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(|v| v.as_str()), Some("x"));
        let arr = doc.get("a").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{\"a\":1").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} garbage").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
    }
}
