//! Utilization analysis over finished traces: per-lane busy/stall
//! accounting and the cross-lane bubble fraction.
//!
//! The accounting identity is exact by construction: a lane's *window* is
//! `last span end − first span start`, its *busy* time is the sum of its
//! non-stall span durations, and its *stall* time is defined as
//! `window − busy` — explicit [`TracePhase::Stall`] spans and unmarked
//! gaps between spans both land there. `busy + stall == window` always
//! holds for non-overlapping lanes; the proptest harness in the pipeline
//! crate leans on this plus [`LaneStats::overlapping`] to certify traces.

use crate::{Trace, TraceLane, TracePhase};

/// Utilization summary of one lane.
#[derive(Debug, Clone)]
pub struct LaneStats {
    pub pid: u32,
    pub name: String,
    /// Sum of non-stall span durations (ns).
    pub busy_ns: u64,
    /// `window_ns − busy_ns`: explicit stalls plus unmarked gaps (ns).
    pub stall_ns: u64,
    /// Last span end − first span start (ns); 0 for empty lanes.
    pub window_ns: u64,
    /// Number of spans.
    pub spans: usize,
    /// Whether any two top-level spans overlap in time.
    pub overlapping: bool,
    pub first_start_ns: u64,
    pub last_end_ns: u64,
}

impl LaneStats {
    fn of(lane: &TraceLane) -> LaneStats {
        let first_start_ns = lane.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let last_end_ns = lane.spans.iter().map(|s| s.end_ns()).max().unwrap_or(0);
        let window_ns = last_end_ns.saturating_sub(first_start_ns);
        // Nested spans (a Stall inside a BackwardInput) must not be double
        // counted: walk spans in record order and only accumulate the
        // top-level ones, using the running maximum end as the nesting
        // boundary. Stall time nested inside a busy span is subtracted.
        let mut busy_ns = 0u64;
        let mut nested_stall_ns = 0u64;
        let mut top_end = 0u64;
        let mut prev_top_end: Option<u64> = None;
        let mut overlapping = false;
        for span in &lane.spans {
            let nested = prev_top_end.is_some() && span.end_ns() <= top_end;
            if nested {
                if span.phase.is_stall() {
                    nested_stall_ns += span.dur_ns;
                }
                continue;
            }
            if let Some(end) = prev_top_end {
                if span.start_ns < end {
                    overlapping = true;
                }
            }
            if !span.phase.is_stall() {
                busy_ns += span.dur_ns;
            }
            top_end = top_end.max(span.end_ns());
            prev_top_end = Some(span.end_ns());
        }
        let busy_ns = busy_ns.saturating_sub(nested_stall_ns);
        LaneStats {
            pid: lane.pid,
            name: lane.name.clone(),
            busy_ns,
            stall_ns: window_ns.saturating_sub(busy_ns),
            window_ns,
            spans: lane.spans.len(),
            overlapping,
            first_start_ns,
            last_end_ns,
        }
    }

    /// Busy fraction of this lane's own window (0 for empty lanes).
    pub fn utilization(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.window_ns as f64
        }
    }
}

/// Cross-lane utilization analysis of one process of a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    pub lanes: Vec<LaneStats>,
    /// Earliest span start across lanes (ns).
    pub global_start_ns: u64,
    /// Latest span end across lanes (ns).
    pub global_end_ns: u64,
}

impl TraceAnalysis {
    /// Analyzes the lanes of process `pid` that contain at least one span.
    pub fn of(trace: &Trace, pid: u32) -> TraceAnalysis {
        let lanes: Vec<LaneStats> = trace
            .lanes_of(pid)
            .filter(|l| !l.spans.is_empty())
            .map(LaneStats::of)
            .collect();
        let global_start_ns = lanes.iter().map(|l| l.first_start_ns).min().unwrap_or(0);
        let global_end_ns = lanes.iter().map(|l| l.last_end_ns).max().unwrap_or(0);
        TraceAnalysis {
            lanes,
            global_start_ns,
            global_end_ns,
        }
    }

    /// The trace's makespan: latest end − earliest start (ns).
    pub fn makespan_ns(&self) -> u64 {
        self.global_end_ns.saturating_sub(self.global_start_ns)
    }

    /// The pipeline bubble fraction: the share of the `lanes × makespan`
    /// area not covered by busy spans. 0 would be a perfectly packed
    /// pipeline; fill/drain bubbles, 1F1B warmup idling and stalls all
    /// raise it.
    pub fn bubble_fraction(&self) -> f64 {
        let makespan = self.makespan_ns();
        if makespan == 0 || self.lanes.is_empty() {
            return 0.0;
        }
        let area = self.lanes.len() as f64 * makespan as f64;
        let busy: f64 = self.lanes.iter().map(|l| l.busy_ns as f64).sum();
        (1.0 - busy / area).max(0.0)
    }

    /// Total busy nanoseconds across lanes.
    pub fn total_busy_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.busy_ns).sum()
    }

    /// Whether any analyzed lane has overlapping top-level spans.
    pub fn any_overlap(&self) -> bool {
        self.lanes.iter().any(|l| l.overlapping)
    }

    /// Count of spans of one phase across lanes (from the source trace
    /// this analysis cannot answer; helper lives on [`Trace`] instead).
    pub fn lane(&self, name: &str) -> Option<&LaneStats> {
        self.lanes.iter().find(|l| l.name == name)
    }
}

/// Counts spans of `phase` in one lane of a trace (convenience for tests).
pub fn phase_count(lane: &TraceLane, phase: TracePhase) -> usize {
    lane.spans.iter().filter(|s| s.phase == phase).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, PID_VIRTUAL, PID_WALL};

    #[test]
    fn busy_stall_window_identity() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "stage-0", 0);
        lane.span_at(10, 20, TracePhase::Forward, Some(0), None);
        // gap 20..25
        lane.span_at(25, 30, TracePhase::Stall, None, None);
        lane.span_at(30, 40, TracePhase::BackwardInput, Some(0), None);
        lane.flush();
        let a = TraceAnalysis::of(&t.finish(), PID_WALL);
        let s = a.lane("stage-0").unwrap();
        assert_eq!(s.window_ns, 30);
        assert_eq!(s.busy_ns, 20);
        assert_eq!(s.stall_ns, 10); // 5 explicit stall + 5 gap
        assert_eq!(s.busy_ns + s.stall_ns, s.window_ns);
        assert!(!s.overlapping);
    }

    #[test]
    fn nested_stall_is_subtracted_not_double_counted() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "s", 0);
        lane.begin_at(0, TracePhase::BackwardInput, Some(0), None);
        lane.begin_at(2, TracePhase::Stall, None, None);
        lane.end_at(6);
        lane.end_at(10);
        lane.flush();
        let a = TraceAnalysis::of(&t.finish(), PID_WALL);
        let s = &a.lanes[0];
        assert_eq!(s.window_ns, 10);
        assert_eq!(s.busy_ns, 6); // 10 backward − 4 nested stall
        assert_eq!(s.stall_ns, 4);
        assert!(!s.overlapping);
    }

    #[test]
    fn overlap_is_detected() {
        let t = Tracer::new();
        let mut lane = t.lane(PID_WALL, "s", 0);
        lane.span_at(0, 10, TracePhase::Forward, None, None);
        lane.span_at(5, 15, TracePhase::Update, None, None);
        lane.flush();
        let a = TraceAnalysis::of(&t.finish(), PID_WALL);
        assert!(a.any_overlap());
    }

    #[test]
    fn bubble_fraction_measures_idle_area() {
        let t = Tracer::new();
        // Two lanes over a makespan of 10: one fully busy, one half busy
        // → busy area 15 of 20 → bubble 0.25.
        let mut a0 = t.lane(PID_VIRTUAL, "a", 0);
        a0.span_at(0, 10, TracePhase::Forward, None, None);
        a0.flush();
        let mut a1 = t.lane(PID_VIRTUAL, "b", 1);
        a1.span_at(0, 5, TracePhase::Forward, None, None);
        a1.span_at(5, 10, TracePhase::Stall, None, None);
        a1.flush();
        let analysis = TraceAnalysis::of(&t.finish(), PID_VIRTUAL);
        assert!((analysis.bubble_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(analysis.makespan_ns(), 10);
    }
}
