//! Deterministic network fault injection for rank-to-rank links.
//!
//! A [`NetFaultPlan`] is the wire-level sibling of the threaded
//! runtime's [`FaultPlan`](pbp_pipeline::FaultPlan): a seeded,
//! reproducible script of link misbehaviour — drop a frame, truncate
//! it, flip a bit, duplicate it, delay it, or partition the link for a
//! stretch of frames — addressed per *link* and per *direction*. The
//! randomized generator draws from the same SplitMix64 the thread-fault
//! plans use ([`pbp_pipeline::splitmix64`]), so one chaos seed means the
//! same thing across both fault layers.
//!
//! Faults are applied on the **receiving** end of a link by the
//! [`FaultyConn`](crate::transport::FaultyConn) decorator: the injector
//! indexes data frames as they come off the wire, and each triggered
//! spec turns the clean frame into the corresponding network event
//! (silently vanished, corrupted-on-decode, doubled, late). One-shot
//! semantics match the thread plans: the fired flag is shared across
//! clones, so a fault survives a reconnect without re-firing — a
//! transient network event, not a broken NIC.
//!
//! `PBP_NET_FAULTS` (parsed in [`crate::env`]) configures a plan from
//! the launcher environment, e.g.
//! `1:down:drop@7,0:up:partition:5@12,random:42`.

use pbp_pipeline::splitmix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which way frames flow on a link. Link `i` connects rank `i` to rank
/// `i + 1`; `Down` is toward the higher rank (activations), `Up` toward
/// the lower rank (gradients, acks for activations ride `Up` too but
/// faults index data frames only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Rank `i` → rank `i + 1` (forward activations).
    Down,
    /// Rank `i + 1` → rank `i` (backward gradients).
    Up,
}

impl LinkDir {
    /// The spec-string token (`down` / `up`).
    pub fn label(self) -> &'static str {
        match self {
            LinkDir::Down => "down",
            LinkDir::Up => "up",
        }
    }
}

/// What a triggered fault does to the frame it lands on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The frame silently vanishes (the sender keeps it in its replay
    /// window; recovery is reconnect-with-replay).
    Drop,
    /// The frame's wire bytes are cut short — surfaces as a typed
    /// decode error on the receiver, never a hang.
    Truncate,
    /// One byte of the frame body is flipped — surfaces as
    /// [`DistError::ChecksumMismatch`](crate::DistError) (or `Corrupt`
    /// when the flip lands in the length prefix).
    BitFlip,
    /// The frame arrives twice; the second copy must be discarded by
    /// sequence number.
    Duplicate,
    /// The frame arrives late by this much (bounded so chaos sweeps
    /// stay fast).
    Delay(Duration),
    /// The link goes dark: this frame and the following `count - 1`
    /// frames all vanish, modelling a transient partition.
    Partition {
        /// Consecutive frames dropped, `>= 1`.
        count: u64,
    },
}

impl NetFaultKind {
    fn label(&self) -> String {
        match self {
            NetFaultKind::Drop => "drop".into(),
            NetFaultKind::Truncate => "trunc".into(),
            NetFaultKind::BitFlip => "flip".into(),
            NetFaultKind::Duplicate => "dup".into(),
            NetFaultKind::Delay(d) => format!("delay:{}", d.as_millis()),
            NetFaultKind::Partition { count } => format!("partition:{count}"),
        }
    }
}

/// One scripted wire fault: a [`NetFaultKind`] armed on one link, one
/// direction, at one received-data-frame index.
#[derive(Debug, Clone)]
pub struct NetFaultSpec {
    /// Link index the fault lives on (link `i` joins ranks `i`, `i+1`).
    pub link: usize,
    /// Which direction's frames it hits.
    pub dir: LinkDir,
    /// Zero-based index (per link, per direction) of the received data
    /// frame the fault triggers on.
    pub at_frame: u64,
    /// What happens to that frame.
    pub kind: NetFaultKind,
    fired: Arc<AtomicBool>,
}

impl NetFaultSpec {
    /// A fault of `kind` on `link`/`dir` at received frame `at_frame`.
    pub fn new(link: usize, dir: LinkDir, at_frame: u64, kind: NetFaultKind) -> Self {
        NetFaultSpec {
            link,
            dir,
            at_frame,
            kind,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether this spec covers `frame`, consuming the one-shot charge
    /// on its first frame. A partition spans `[at_frame, at_frame +
    /// count)` and keeps matching inside the span without re-arming.
    fn triggers(&self, frame: u64) -> bool {
        match self.kind {
            NetFaultKind::Partition { count } => {
                if frame == self.at_frame {
                    // Consume the charge at the partition's left edge so
                    // a replayed frame 0..at_frame never re-opens it.
                    return !self.fired.swap(true, Ordering::Relaxed);
                }
                frame > self.at_frame
                    && frame < self.at_frame + count
                    && self.fired.load(Ordering::Relaxed)
            }
            _ => frame == self.at_frame && !self.fired.swap(true, Ordering::Relaxed),
        }
    }

    /// The spec-string clause this fault round-trips through
    /// ([`NetFaultPlan::parse`]).
    pub fn clause(&self) -> String {
        format!(
            "{}:{}:{}@{}",
            self.link,
            self.dir.label(),
            self.kind.label(),
            self.at_frame
        )
    }
}

/// A seeded, reproducible script of wire faults for a whole launch.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    specs: Vec<NetFaultSpec>,
    seed: u64,
}

/// Upper bound on scripted delays so a chaos soak cannot stall a run
/// past its watchdogs.
const MAX_DELAY_MS: u64 = 20;

/// Upper bound on a random partition's width in frames.
const MAX_PARTITION: u64 = 6;

impl NetFaultPlan {
    /// An empty plan; the seed names the plan in logs and feeds
    /// [`NetFaultPlan::random`].
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            specs: Vec::new(),
            seed,
        }
    }

    /// Adds a fault to the script.
    pub fn with(mut self, spec: NetFaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The scripted faults.
    pub fn specs(&self) -> &[NetFaultSpec] {
        &self.specs
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rearms every one-shot fault (tests that replay a plan from
    /// scratch).
    pub fn reset(&self) {
        for spec in &self.specs {
            spec.fired.store(false, Ordering::Relaxed);
        }
    }

    /// Draws a random plan of 1–4 faults over `links` links and frame
    /// indices below `max_frame`, fully determined by `seed` — the wire
    /// sibling of [`pbp_pipeline::FaultPlan::random`].
    pub fn random(seed: u64, links: usize, max_frame: u64) -> Self {
        let links = links.max(1);
        let max_frame = max_frame.max(1);
        let mut rng = seed;
        let mut plan = NetFaultPlan::new(seed);
        let count = 1 + (splitmix64(&mut rng) % 4) as usize;
        for _ in 0..count {
            let link = (splitmix64(&mut rng) % links as u64) as usize;
            let dir = if splitmix64(&mut rng).is_multiple_of(2) {
                LinkDir::Down
            } else {
                LinkDir::Up
            };
            let at = splitmix64(&mut rng) % max_frame;
            let kind = match splitmix64(&mut rng) % 6 {
                0 => NetFaultKind::Drop,
                1 => NetFaultKind::Truncate,
                2 => NetFaultKind::BitFlip,
                3 => NetFaultKind::Duplicate,
                4 => NetFaultKind::Delay(Duration::from_millis(
                    1 + splitmix64(&mut rng) % MAX_DELAY_MS,
                )),
                _ => NetFaultKind::Partition {
                    count: 1 + splitmix64(&mut rng) % MAX_PARTITION,
                },
            };
            plan = plan.with(NetFaultSpec::new(link, dir, at, kind));
        }
        plan
    }

    /// The injector for one end of one link: the slice of the plan
    /// matching `link` in the direction that end *receives*.
    pub fn injector(&self, link: usize, dir: LinkDir) -> NetFaultInjector {
        NetFaultInjector {
            specs: self
                .specs
                .iter()
                .filter(|s| s.link == link && s.dir == dir)
                .cloned()
                .collect(),
            frames_seen: 0,
        }
    }

    /// The spec string this plan round-trips through [`Self::parse`].
    /// Random plans serialize clause-by-clause, not as `random:seed`,
    /// so what fired is always spelled out in logs.
    pub fn spec_string(&self) -> String {
        self.specs
            .iter()
            .map(NetFaultSpec::clause)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a `PBP_NET_FAULTS` spec: comma-separated clauses, each
    /// either `random:<seed>[:<links>[:<max_frame>]]` or
    /// `<link>:<dir>:<kind>@<frame>` where `dir` is `down`/`up` and
    /// `kind` is `drop`, `trunc`, `flip`, `dup`, `delay:<ms>`, or
    /// `partition:<count>`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut plan = NetFaultPlan::new(0);
        for clause in raw.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(rest) = clause.strip_prefix("random:") {
                let mut parts = rest.split(':');
                let seed = parse_num(parts.next().unwrap_or(""), clause)?;
                let links = match parts.next() {
                    Some(p) => parse_num(p, clause)? as usize,
                    None => 4,
                };
                let max_frame = match parts.next() {
                    Some(p) => parse_num(p, clause)?,
                    None => 64,
                };
                if parts.next().is_some() {
                    return Err(format!("trailing fields in {clause:?}"));
                }
                for spec in NetFaultPlan::random(seed, links, max_frame).specs {
                    plan = plan.with(spec);
                }
                plan.seed = seed;
                continue;
            }
            let (head, frame) = clause
                .rsplit_once('@')
                .ok_or_else(|| format!("clause {clause:?} needs @<frame>"))?;
            let at_frame = parse_num(frame, clause)?;
            let mut parts = head.splitn(3, ':');
            let link = parse_num(parts.next().unwrap_or(""), clause)? as usize;
            let dir = match parts.next() {
                Some("down") => LinkDir::Down,
                Some("up") => LinkDir::Up,
                other => return Err(format!("direction {other:?} in {clause:?} (want down/up)")),
            };
            let kind = match parts.next() {
                Some("drop") => NetFaultKind::Drop,
                Some("trunc") => NetFaultKind::Truncate,
                Some("flip") => NetFaultKind::BitFlip,
                Some("dup") => NetFaultKind::Duplicate,
                Some(k) if k.starts_with("delay:") => NetFaultKind::Delay(Duration::from_millis(
                    parse_num(&k["delay:".len()..], clause)?.min(1_000),
                )),
                Some(k) if k.starts_with("partition:") => NetFaultKind::Partition {
                    count: parse_num(&k["partition:".len()..], clause)?.max(1),
                },
                other => {
                    return Err(format!(
                        "kind {other:?} in {clause:?} (want drop, trunc, flip, dup, \
                         delay:<ms>, or partition:<count>)"
                    ))
                }
            };
            plan = plan.with(NetFaultSpec::new(link, dir, at_frame, kind));
        }
        if plan.specs.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(plan)
    }
}

fn parse_num(raw: &str, clause: &str) -> Result<u64, String> {
    raw.trim()
        .parse::<u64>()
        .map_err(|_| format!("invalid number {raw:?} in clause {clause:?}"))
}

/// What the receiving decorator does to the data frame at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultAction {
    /// Deliver untouched.
    None,
    /// Pretend it never arrived.
    Drop,
    /// Cut the wire bytes short before decoding.
    Truncate,
    /// Flip one body byte before decoding.
    BitFlip,
    /// Deliver it, then deliver it again.
    Duplicate,
    /// Sleep, then deliver.
    Delay(Duration),
}

/// The slice of a [`NetFaultPlan`] owned by one end of one link. Counts
/// the data frames it sees; control frames (heartbeats, acks, hellos)
/// pass through untouched so liveness and recovery machinery stay
/// observable even under heavy data-plane chaos.
#[derive(Debug, Clone, Default)]
pub struct NetFaultInjector {
    specs: Vec<NetFaultSpec>,
    frames_seen: u64,
}

impl NetFaultInjector {
    /// An injector that never fires.
    pub fn none() -> Self {
        NetFaultInjector::default()
    }

    /// Whether any faults are scripted for this end at all.
    pub fn is_armed(&self) -> bool {
        !self.specs.is_empty()
    }

    /// Resolves the action for the next received data frame, advancing
    /// the frame index. The first triggering spec wins.
    pub fn on_data_frame(&mut self) -> NetFaultAction {
        let frame = self.frames_seen;
        self.frames_seen += 1;
        for spec in &self.specs {
            if !spec.triggers(frame) {
                continue;
            }
            return match spec.kind {
                NetFaultKind::Drop | NetFaultKind::Partition { .. } => NetFaultAction::Drop,
                NetFaultKind::Truncate => NetFaultAction::Truncate,
                NetFaultKind::BitFlip => NetFaultAction::BitFlip,
                NetFaultKind::Duplicate => NetFaultAction::Duplicate,
                NetFaultKind::Delay(d) => NetFaultAction::Delay(d),
            };
        }
        NetFaultAction::None
    }

    /// The number of data frames this end has pulled off the wire.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(mut inj: NetFaultInjector, n: u64) -> Vec<NetFaultAction> {
        (0..n).map(|_| inj.on_data_frame()).collect()
    }

    #[test]
    fn single_faults_fire_once_at_their_frame() {
        let plan = NetFaultPlan::new(0)
            .with(NetFaultSpec::new(0, LinkDir::Down, 2, NetFaultKind::Drop))
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                4,
                NetFaultKind::Duplicate,
            ));
        let got = actions(plan.injector(0, LinkDir::Down), 6);
        assert_eq!(
            got,
            vec![
                NetFaultAction::None,
                NetFaultAction::None,
                NetFaultAction::Drop,
                NetFaultAction::None,
                NetFaultAction::Duplicate,
                NetFaultAction::None,
            ]
        );
        // One-shot across clones: a reconnected link (fresh injector
        // from the same plan) does not re-fire.
        let again = actions(plan.injector(0, LinkDir::Down), 6);
        assert!(
            again.iter().all(|a| *a == NetFaultAction::None),
            "{again:?}"
        );
        plan.reset();
        assert_eq!(
            actions(plan.injector(0, LinkDir::Down), 3)[2],
            NetFaultAction::Drop
        );
    }

    #[test]
    fn partition_drops_a_contiguous_span() {
        let plan = NetFaultPlan::new(0).with(NetFaultSpec::new(
            1,
            LinkDir::Up,
            3,
            NetFaultKind::Partition { count: 3 },
        ));
        let got = actions(plan.injector(1, LinkDir::Up), 8);
        let dropped: Vec<u64> = got
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == NetFaultAction::Drop)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(dropped, vec![3, 4, 5]);
    }

    #[test]
    fn injector_only_sees_its_link_and_direction() {
        let plan = NetFaultPlan::new(0)
            .with(NetFaultSpec::new(0, LinkDir::Down, 1, NetFaultKind::Drop))
            .with(NetFaultSpec::new(1, LinkDir::Up, 1, NetFaultKind::BitFlip));
        assert_eq!(
            actions(plan.injector(0, LinkDir::Down), 2)[1],
            NetFaultAction::Drop
        );
        assert!(actions(plan.injector(0, LinkDir::Up), 4)
            .iter()
            .all(|a| *a == NetFaultAction::None));
        assert_eq!(
            actions(plan.injector(1, LinkDir::Up), 2)[1],
            NetFaultAction::BitFlip
        );
    }

    #[test]
    fn random_plans_are_reproducible_and_bounded() {
        let a = NetFaultPlan::random(9, 3, 40);
        let b = NetFaultPlan::random(9, 3, 40);
        assert_eq!(a.specs().len(), b.specs().len());
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.link, y.link);
            assert_eq!(x.dir, y.dir);
            assert_eq!(x.at_frame, y.at_frame);
            assert_eq!(x.kind, y.kind);
        }
        assert!(!a.specs().is_empty() && a.specs().len() <= 4);
        for spec in a.specs() {
            assert!(spec.link < 3);
            assert!(spec.at_frame < 40);
            if let NetFaultKind::Delay(d) = spec.kind {
                assert!(d <= Duration::from_millis(MAX_DELAY_MS));
            }
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        let plan = NetFaultPlan::parse(
            "0:down:drop@3, 1:up:flip@10,0:down:partition:4@20,1:down:delay:5@2,0:up:dup@7,\
             1:up:trunc@9",
        )
        .unwrap();
        assert_eq!(plan.specs().len(), 6);
        let round = NetFaultPlan::parse(&plan.spec_string()).unwrap();
        assert_eq!(round.specs().len(), plan.specs().len());
        for (x, y) in plan.specs().iter().zip(round.specs()) {
            assert_eq!(x.clause(), y.clause());
        }
    }

    #[test]
    fn random_spec_clause_expands_deterministically() {
        let a = NetFaultPlan::parse("random:7").unwrap();
        let b = NetFaultPlan::parse("random:7").unwrap();
        assert_eq!(a.spec_string(), b.spec_string());
        assert_eq!(a.seed(), 7);
        let sized = NetFaultPlan::parse("random:7:2:16").unwrap();
        for spec in sized.specs() {
            assert!(spec.link < 2);
            assert!(spec.at_frame < 16);
        }
    }

    #[test]
    fn bad_specs_are_typed_parse_errors() {
        for bad in [
            "",
            "0:down:drop", // no @frame
            "0:sideways:drop@3",
            "0:down:explode@3",
            "x:down:drop@3",
            "0:down:delay:@3",
            "random:",
            "random:1:2:3:4",
        ] {
            assert!(NetFaultPlan::parse(bad).is_err(), "{bad:?} parsed");
        }
    }
}
