//! Hardened parsing of the `PBP_RANK` / `PBP_WORLD` environment
//! variables, mirroring the `PBP_THREADS` / `PBP_SIMD` treatment in
//! `pbp-tensor`: an invalid value is ignored with a one-time warning
//! and the caller's fallback applies, instead of a panic or a silently
//! wrong rank.

use std::sync::Once;

/// Parses a `PBP_RANK` value: a non-negative integer (`0`-based).
fn parse_rank(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Parses a `PBP_WORLD` value: a positive integer (a world of zero
/// ranks cannot run anything).
fn parse_world(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

static RANK_WARNING: Once = Once::new();
static WORLD_WARNING: Once = Once::new();

/// Reads `PBP_RANK` from the environment. Unset returns `None`; an
/// invalid value warns once on stderr and also returns `None`, so the
/// caller's explicit `--rank` flag or default applies.
pub fn env_rank() -> Option<usize> {
    match std::env::var("PBP_RANK") {
        Ok(raw) => {
            let parsed = parse_rank(&raw);
            if parsed.is_none() {
                RANK_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PBP_RANK={raw:?} \
                         (want a non-negative integer)"
                    );
                });
            }
            parsed
        }
        Err(_) => None,
    }
}

/// Reads `PBP_WORLD` from the environment. Unset returns `None`; an
/// invalid or zero value warns once on stderr and returns `None`.
pub fn env_world() -> Option<usize> {
    match std::env::var("PBP_WORLD") {
        Ok(raw) => {
            let parsed = parse_world(&raw);
            if parsed.is_none() {
                WORLD_WARNING.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid PBP_WORLD={raw:?} \
                         (want a positive integer)"
                    );
                });
            }
            parsed
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rank_accepts_non_negative_integers_only() {
        assert_eq!(parse_rank("0"), Some(0));
        assert_eq!(parse_rank("3"), Some(3));
        assert_eq!(parse_rank("  12 \n"), Some(12));
        assert_eq!(parse_rank("-1"), None);
        assert_eq!(parse_rank("two"), None);
        assert_eq!(parse_rank(""), None);
        assert_eq!(parse_rank("1.5"), None);
        assert_eq!(parse_rank("0x2"), None);
    }

    #[test]
    fn parse_world_accepts_positive_integers_only() {
        assert_eq!(parse_world("1"), Some(1));
        assert_eq!(parse_world(" 8 "), Some(8));
        assert_eq!(parse_world("0"), None, "an empty world cannot run");
        assert_eq!(parse_world("-4"), None);
        assert_eq!(parse_world("four"), None);
        assert_eq!(parse_world(""), None);
        assert_eq!(parse_world("2.0"), None);
    }
}
