//! Hardened parsing of the distributed layer's environment variables
//! (`PBP_RANK`, `PBP_WORLD`, `PBP_DIST_ABORT_AT`, `PBP_NET_FAULTS`),
//! mirroring the `PBP_THREADS` / `PBP_SIMD` treatment in `pbp-tensor`:
//! an invalid value is ignored with a one-time warning and the caller's
//! fallback applies, instead of a panic or a silently wrong rank.

use crate::netfault::NetFaultPlan;
use std::sync::Once;

/// Reads `var` and runs it through `parse`. Unset returns `None`; a
/// set-but-invalid value warns once on stderr (via `warning`, with
/// `expect` describing the accepted form) and also returns `None`, so
/// the caller's explicit flag or default applies.
fn env_parsed<T>(
    var: &str,
    warning: &'static Once,
    expect: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    match std::env::var(var) {
        Ok(raw) => {
            let parsed = parse(&raw);
            if parsed.is_none() {
                warning.call_once(|| {
                    eprintln!("warning: ignoring invalid {var}={raw:?} (want {expect})");
                });
            }
            parsed
        }
        Err(_) => None,
    }
}

/// Parses a `PBP_RANK` value: a non-negative integer (`0`-based).
fn parse_rank(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Parses a `PBP_WORLD` value: a positive integer (a world of zero
/// ranks cannot run anything).
fn parse_world(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Parses a `PBP_DIST_ABORT_AT` value (`rank:count`) into its parts.
fn parse_abort_at(raw: &str) -> Option<(usize, usize)> {
    let (rank, count) = raw.split_once(':')?;
    Some((
        rank.trim().parse::<usize>().ok()?,
        count.trim().parse::<usize>().ok()?,
    ))
}

static RANK_WARNING: Once = Once::new();
static WORLD_WARNING: Once = Once::new();
static ABORT_WARNING: Once = Once::new();
static FAULTS_WARNING: Once = Once::new();

/// Reads `PBP_RANK` from the environment. Unset returns `None`; an
/// invalid value warns once on stderr and also returns `None`, so the
/// caller's explicit `--rank` flag or default applies.
pub fn env_rank() -> Option<usize> {
    env_parsed(
        "PBP_RANK",
        &RANK_WARNING,
        "a non-negative integer",
        parse_rank,
    )
}

/// Reads `PBP_WORLD` from the environment. Unset returns `None`; an
/// invalid or zero value warns once on stderr and returns `None`.
pub fn env_world() -> Option<usize> {
    env_parsed(
        "PBP_WORLD",
        &WORLD_WARNING,
        "a positive integer",
        parse_world,
    )
}

/// Reads the `PBP_DIST_ABORT_AT=rank:count` crash injection: `Some
/// (count)` when it names `rank`. A malformed value warns once and
/// injects nothing — a chaos run with a typo'd knob must not silently
/// become a clean run on *some* ranks.
pub fn env_abort_at(rank: usize) -> Option<usize> {
    env_parsed(
        "PBP_DIST_ABORT_AT",
        &ABORT_WARNING,
        "rank:count with non-negative integers",
        parse_abort_at,
    )
    .and_then(|(r, count)| (r == rank).then_some(count))
}

/// Reads the `PBP_NET_FAULTS` wire-chaos plan (see
/// [`NetFaultPlan::parse`] for the grammar). Unset returns `None`; an
/// invalid spec warns once with the parser's diagnosis and returns
/// `None`, so the run proceeds un-faulted.
pub fn env_net_faults() -> Option<NetFaultPlan> {
    env_parsed(
        "PBP_NET_FAULTS",
        &FAULTS_WARNING,
        "a net-fault spec",
        |raw| match NetFaultPlan::parse(raw) {
            Ok(plan) => Some(plan),
            Err(msg) => {
                eprintln!("warning: PBP_NET_FAULTS rejected: {msg}");
                None
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rank_accepts_non_negative_integers_only() {
        assert_eq!(parse_rank("0"), Some(0));
        assert_eq!(parse_rank("3"), Some(3));
        assert_eq!(parse_rank("  12 \n"), Some(12));
        assert_eq!(parse_rank("-1"), None);
        assert_eq!(parse_rank("two"), None);
        assert_eq!(parse_rank(""), None);
        assert_eq!(parse_rank("1.5"), None);
        assert_eq!(parse_rank("0x2"), None);
    }

    #[test]
    fn parse_world_accepts_positive_integers_only() {
        assert_eq!(parse_world("1"), Some(1));
        assert_eq!(parse_world(" 8 "), Some(8));
        assert_eq!(parse_world("0"), None, "an empty world cannot run");
        assert_eq!(parse_world("-4"), None);
        assert_eq!(parse_world("four"), None);
        assert_eq!(parse_world(""), None);
        assert_eq!(parse_world("2.0"), None);
    }

    #[test]
    fn parse_abort_at_wants_rank_colon_count() {
        assert_eq!(parse_abort_at("1:24"), Some((1, 24)));
        assert_eq!(parse_abort_at(" 0 : 7 "), Some((0, 7)));
        assert_eq!(parse_abort_at("1"), None);
        assert_eq!(parse_abort_at("1:"), None);
        assert_eq!(parse_abort_at(":24"), None);
        assert_eq!(parse_abort_at("one:24"), None);
        assert_eq!(parse_abort_at("1:-3"), None);
    }
}
