//! Typed errors for the distributed pipeline layer.

use pbp_snapshot::SnapshotError;
use std::time::Duration;

/// Everything that can go wrong between two ranks or inside one.
///
/// Transport faults are split the same way the PR5 supervisor splits
/// thread faults: a peer that *closed* (process exit, socket teardown)
/// is distinguishable from a peer that *stalled* (alive but silent past
/// the watchdog window) and from plain wire corruption, so the launcher
/// can report the root cause before restarting the stage group.
#[derive(Debug)]
pub enum DistError {
    /// An OS-level I/O failure on a socket or snapshot path.
    Io(std::io::Error),
    /// A frame failed structural validation: bad length prefix, unknown
    /// kind tag, short payload, or trailing bytes.
    Corrupt(String),
    /// A frame's CRC32 did not match its body — bit damage in flight.
    ChecksumMismatch,
    /// The peer closed the connection (EOF / reset), or sent `Shutdown`
    /// while data was still expected.
    PeerClosed,
    /// No frame (not even a heartbeat) arrived within the stall window.
    PeerStalled(Duration),
    /// The peers disagree about who they are or what run this is
    /// (rank, world size, or topology/run digest mismatch).
    Handshake(String),
    /// The peer's hello carries a newer rewind generation: the group
    /// rolled back while this rank was partitioned, and its in-flight
    /// state is unusable — it must rewind before rejoining.
    StaleGeneration {
        /// This rank's rewind generation.
        ours: u64,
        /// The generation the peer announced.
        peer: u64,
    },
    /// A snapshot operation failed while saving or restoring rank state.
    Snapshot(SnapshotError),
    /// A launched rank process failed (exit status, or died to a signal).
    Rank { rank: usize, detail: String },
    /// The topology or launch specification is unusable.
    Spec(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            DistError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            DistError::PeerClosed => write!(f, "peer closed the connection"),
            DistError::PeerStalled(window) => {
                write!(f, "peer sent nothing for {} ms", window.as_millis())
            }
            DistError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            DistError::StaleGeneration { ours, peer } => write!(
                f,
                "stale rewind generation: ours {ours}, peer announced {peer}"
            ),
            DistError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            DistError::Rank { rank, detail } => write!(f, "rank {rank} failed: {detail}"),
            DistError::Spec(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<SnapshotError> for DistError {
    fn from(e: SnapshotError) -> Self {
        DistError::Snapshot(e)
    }
}
