//! Rank-to-rank links: Unix sockets, TCP, and an in-process loopback.
//!
//! A [`Connection`] moves [`Frame`]s in both directions over one link of
//! the rank chain. All three implementations push every frame through
//! the same encode/decode path ([`crate::codec`]), so the loopback used
//! by the equivalence tests exercises exactly the bytes the socket
//! transports put on the wire.
//!
//! Liveness: `recv` takes a stall window. A clean EOF is
//! [`DistError::PeerClosed`]; silence past the window is
//! [`DistError::PeerStalled`] — the same closed/stalled distinction the
//! PR5 watchdog draws for threads, lifted to processes. Senders emit
//! [`Frame::Heartbeat`]s before long local pauses (snapshot writes);
//! [`Connection::recv_data`] consumes them silently, resetting the
//! stall clock without surfacing a frame.
//!
//! Reconnect: [`Transport::connect`] retries with a deadline, so a rank
//! that comes up first (or comes back after a supervised restart) simply
//! waits for its neighbor to bind the link again.
//!
//! Chaos: [`FaultyConn`] wraps any connection and applies a
//! [`NetFaultInjector`](crate::netfault::NetFaultInjector)'s scripted
//! faults on the receive path. Corruptions are injected into the *wire
//! bytes* (re-encoded, mutated, re-decoded), so they surface through the
//! exact codec error paths a hostile network would hit.

use crate::codec::{decode_frame, encode_frame, read_frame, write_frame, Frame};
use crate::error::DistError;
use crate::netfault::{NetFaultAction, NetFaultInjector};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How often connect/accept loops poll while waiting for a peer.
const RETRY_POLL: Duration = Duration::from_millis(2);

/// A bidirectional framed link to a neighboring rank.
pub trait Connection: Send {
    /// Sends one frame (a single buffered write of the wire form).
    fn send(&mut self, frame: &Frame) -> Result<(), DistError>;

    /// Receives the next frame, whatever its kind. Returns
    /// [`DistError::PeerStalled`] if nothing arrives within `stall`.
    fn recv_raw(&mut self, stall: Duration) -> Result<Frame, DistError>;

    /// Receives the next *data* frame: heartbeats are consumed silently
    /// (each one restarts the stall window — the peer is alive, just
    /// busy), and a `Shutdown` where data is expected is reported as
    /// [`DistError::PeerClosed`].
    fn recv_data(&mut self, stall: Duration) -> Result<Frame, DistError> {
        loop {
            match self.recv_raw(stall)? {
                Frame::Heartbeat { .. } => continue,
                Frame::Shutdown { .. } => return Err(DistError::PeerClosed),
                frame => return Ok(frame),
            }
        }
    }
}

/// A byte stream with an OS-level receive timeout — the part of
/// `UnixStream`/`TcpStream` the framed connection needs.
pub trait SocketStream: Read + Write + Send {
    /// Sets the blocking-read timeout (`None` = block forever).
    fn set_recv_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl SocketStream for UnixStream {
    fn set_recv_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl SocketStream for TcpStream {
    fn set_recv_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// Framed connection over a socket stream.
///
/// The stall window is enforced with the socket's read timeout. A
/// timeout that fires mid-frame leaves the stream desynchronized —
/// acceptable because both stall and desync are terminal for the link:
/// the typed fault reaches the launcher, which restarts the stage group
/// from the newest common snapshot.
pub struct StreamConn<S: SocketStream> {
    stream: S,
    timeout: Option<Duration>,
}

impl<S: SocketStream> StreamConn<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> Self {
        StreamConn {
            stream,
            timeout: None,
        }
    }

    fn ensure_timeout(&mut self, stall: Duration) -> Result<(), DistError> {
        if self.timeout != Some(stall) {
            self.stream.set_recv_timeout(Some(stall))?;
            self.timeout = Some(stall);
        }
        Ok(())
    }
}

impl<S: SocketStream> Connection for StreamConn<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        write_frame(&mut self.stream, frame)
    }

    fn recv_raw(&mut self, stall: Duration) -> Result<Frame, DistError> {
        self.ensure_timeout(stall)?;
        match read_frame(&mut self.stream) {
            Err(DistError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(DistError::PeerStalled(stall))
            }
            other => other,
        }
    }
}

/// In-process loopback link: frames are fully encoded to wire bytes,
/// shipped over a channel, and decoded on the far side, so tests using
/// it still cover the codec.
pub struct LoopbackConn {
    tx: std::sync::mpsc::Sender<Vec<u8>>,
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
}

/// Creates both ends of a loopback link.
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let (atx, brx) = std::sync::mpsc::channel();
    let (btx, arx) = std::sync::mpsc::channel();
    (
        LoopbackConn { tx: atx, rx: arx },
        LoopbackConn { tx: btx, rx: brx },
    )
}

impl Connection for LoopbackConn {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        self.tx
            .send(crate::codec::encode_frame(frame))
            .map_err(|_| DistError::PeerClosed)
    }

    fn recv_raw(&mut self, stall: Duration) -> Result<Frame, DistError> {
        match self.rx.recv_timeout(stall) {
            Ok(bytes) => crate::codec::decode_frame(&bytes),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(DistError::PeerStalled(stall)),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(DistError::PeerClosed),
        }
    }
}

/// A connection decorator that applies one link-end's slice of a
/// [`NetFaultPlan`](crate::netfault::NetFaultPlan) to received frames.
///
/// Only data frames (activations, gradients) are faulted; control
/// traffic passes through so the recovery machinery itself stays
/// observable. `Truncate`/`BitFlip` re-encode the frame, damage the
/// wire bytes, and decode the wreckage — the resulting
/// [`DistError::Corrupt`]/[`DistError::ChecksumMismatch`] is the same
/// typed error a genuinely hostile network produces.
pub struct FaultyConn {
    inner: Box<dyn Connection>,
    injector: NetFaultInjector,
    pending: VecDeque<Frame>,
}

impl FaultyConn {
    /// Wraps `inner`, faulting its received data frames per `injector`.
    pub fn new(inner: Box<dyn Connection>, injector: NetFaultInjector) -> Self {
        FaultyConn {
            inner,
            injector,
            pending: VecDeque::new(),
        }
    }
}

/// Applies one fault action to a received data frame. Returns `None`
/// when the frame should be treated as never having arrived (dropped);
/// otherwise the (possibly corrupted-on-decode) delivery result. A
/// duplicate's second copy lands in `pending` for the next receive.
pub(crate) fn apply_net_fault(
    frame: Frame,
    action: NetFaultAction,
    pending: &mut VecDeque<Frame>,
) -> Option<Result<Frame, DistError>> {
    match action {
        NetFaultAction::None => Some(Ok(frame)),
        NetFaultAction::Drop => None,
        NetFaultAction::Truncate => {
            let mut wire = encode_frame(&frame);
            let keep = wire.len().saturating_sub(wire.len() / 3).max(4);
            wire.truncate(keep);
            // A short body on a live link is corruption, not a closed
            // peer — keep the fault typed as such.
            Some(match decode_frame(&wire) {
                Err(DistError::PeerClosed) => Err(DistError::Corrupt(format!(
                    "frame truncated to {keep} bytes in flight"
                ))),
                other => other,
            })
        }
        NetFaultAction::BitFlip => {
            let mut wire = encode_frame(&frame);
            // Flip inside the body (past the length prefix, before the
            // trailing CRC) so the damage reads as a checksum mismatch,
            // not a framing error.
            let mid = 4 + (wire.len() - 8) / 2;
            wire[mid] ^= 0x40;
            Some(decode_frame(&wire))
        }
        NetFaultAction::Duplicate => {
            pending.push_back(frame.clone());
            Some(Ok(frame))
        }
        NetFaultAction::Delay(pause) => {
            std::thread::sleep(pause);
            Some(Ok(frame))
        }
    }
}

impl Connection for FaultyConn {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        self.inner.send(frame)
    }

    fn recv_raw(&mut self, stall: Duration) -> Result<Frame, DistError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        loop {
            let frame = self.inner.recv_raw(stall)?;
            if !matches!(frame, Frame::Activation { .. } | Frame::Gradient { .. }) {
                return Ok(frame);
            }
            let action = self.injector.on_data_frame();
            if let Some(result) = apply_net_fault(frame, action, &mut self.pending) {
                return result;
            }
        }
    }
}

/// Where the rank chain's links live. Link `i` connects rank `i`
/// (listening side) to rank `i + 1` (connecting side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// Unix-domain sockets `link-{i}.sock` inside a directory.
    Unix { dir: PathBuf },
    /// TCP on `host`, link `i` at `base_port + i`.
    Tcp { host: String, base_port: u16 },
}

impl Transport {
    /// Parses the launcher's `--transport` argument:
    /// `unix:<dir>` or `tcp:<host>:<base_port>`.
    pub fn parse(raw: &str) -> Result<Self, DistError> {
        if let Some(dir) = raw.strip_prefix("unix:") {
            if dir.is_empty() {
                return Err(DistError::Spec("unix transport needs a directory".into()));
            }
            return Ok(Transport::Unix {
                dir: PathBuf::from(dir),
            });
        }
        if let Some(rest) = raw.strip_prefix("tcp:") {
            let (host, port) = rest
                .rsplit_once(':')
                .ok_or_else(|| DistError::Spec(format!("tcp transport {raw:?} needs host:port")))?;
            let base_port = port
                .parse::<u16>()
                .map_err(|_| DistError::Spec(format!("invalid tcp base port {port:?}")))?;
            if host.is_empty() {
                return Err(DistError::Spec("tcp transport needs a host".into()));
            }
            return Ok(Transport::Tcp {
                host: host.to_string(),
                base_port,
            });
        }
        Err(DistError::Spec(format!(
            "unknown transport {raw:?} (want unix:<dir> or tcp:<host>:<port>)"
        )))
    }

    /// The argument form [`Transport::parse`] accepts — handed to child
    /// processes by the launcher.
    pub fn arg(&self) -> String {
        match self {
            Transport::Unix { dir } => format!("unix:{}", dir.display()),
            Transport::Tcp { host, base_port } => format!("tcp:{host}:{base_port}"),
        }
    }

    fn unix_path(dir: &std::path::Path, link: usize) -> PathBuf {
        dir.join(format!("link-{link}.sock"))
    }

    /// Binds the listening side of link `link` (rank `link` does this).
    /// A stale socket file from a previous run is removed first.
    pub fn listen(&self, link: usize) -> Result<LinkListener, DistError> {
        match self {
            Transport::Unix { dir } => {
                std::fs::create_dir_all(dir)?;
                let path = Transport::unix_path(dir, link);
                match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                Ok(LinkListener::Unix(UnixListener::bind(&path)?))
            }
            Transport::Tcp { host, base_port } => {
                let addr = format!("{host}:{}", base_port + link as u16);
                Ok(LinkListener::Tcp(TcpListener::bind(addr)?))
            }
        }
    }

    /// Connects the client side of link `link` (rank `link + 1` does
    /// this), retrying until the listener appears or `deadline` passes —
    /// this retry loop is also the reconnect path after a supervised
    /// restart.
    pub fn connect(
        &self,
        link: usize,
        deadline: Duration,
    ) -> Result<Box<dyn Connection>, DistError> {
        let start = Instant::now();
        loop {
            let attempt: Result<Box<dyn Connection>, std::io::Error> = match self {
                Transport::Unix { dir } => UnixStream::connect(Transport::unix_path(dir, link))
                    .map(|s| Box::new(StreamConn::new(s)) as Box<dyn Connection>),
                Transport::Tcp { host, base_port } => {
                    TcpStream::connect(format!("{host}:{}", base_port + link as u16))
                        .map(|s| Box::new(StreamConn::new(s)) as Box<dyn Connection>)
                }
            };
            match attempt {
                Ok(conn) => return Ok(conn),
                Err(_) if start.elapsed() < deadline => std::thread::sleep(RETRY_POLL),
                Err(e) => return Err(DistError::Io(e)),
            }
        }
    }
}

/// The listening side of one link.
pub enum LinkListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl LinkListener {
    /// Accepts the neighbor's connection, giving up after `deadline`.
    pub fn accept(&self, deadline: Duration) -> Result<Box<dyn Connection>, DistError> {
        let start = Instant::now();
        match self {
            LinkListener::Unix(listener) => {
                listener.set_nonblocking(true)?;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(Box::new(StreamConn::new(stream)));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if start.elapsed() >= deadline {
                                return Err(DistError::PeerStalled(deadline));
                            }
                            std::thread::sleep(RETRY_POLL);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            LinkListener::Tcp(listener) => {
                listener.set_nonblocking(true)?;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            stream.set_nodelay(true)?;
                            return Ok(Box::new(StreamConn::new(stream)));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if start.elapsed() >= deadline {
                                return Err(DistError::PeerStalled(deadline));
                            }
                            std::thread::sleep(RETRY_POLL);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
    }
}

/// What the peer announced in its `Hello` during [`handshake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerHello {
    /// The peer's rank (already validated against the expected one).
    pub rank: u32,
    /// The peer's session epoch: `(rewind generation << 32) | attempt`.
    pub epoch: u64,
    /// Highest data-frame sequence number the peer has delivered on
    /// this link — where replay must resume from.
    pub last_seq: u64,
}

/// Exchanges `Hello` frames on a fresh connection and verifies the peer
/// belongs to this run: same world size, same topology/run digest, and
/// the expected neighbor rank. `epoch`/`last_seq` advertise this side's
/// session state for reconnect-with-replay (zero on first contact).
/// Returns what the peer announced.
#[allow(clippy::too_many_arguments)]
pub fn handshake(
    conn: &mut dyn Connection,
    my_rank: u32,
    expect_peer: u32,
    world: u32,
    digest: u64,
    epoch: u64,
    last_seq: u64,
    stall: Duration,
) -> Result<PeerHello, DistError> {
    conn.send(&Frame::Hello {
        rank: my_rank,
        world,
        digest,
        epoch,
        last_seq,
    })?;
    match conn.recv_raw(stall)? {
        Frame::Hello {
            rank,
            world: peer_world,
            digest: peer_digest,
            epoch: peer_epoch,
            last_seq: peer_last_seq,
        } => {
            if peer_world != world {
                return Err(DistError::Handshake(format!(
                    "peer world {peer_world} != {world}"
                )));
            }
            if peer_digest != digest {
                return Err(DistError::Handshake(format!(
                    "peer digest {peer_digest:#x} != {digest:#x} (different launch?)"
                )));
            }
            if rank != expect_peer {
                return Err(DistError::Handshake(format!(
                    "expected rank {expect_peer} on this link, got rank {rank}"
                )));
            }
            Ok(PeerHello {
                rank,
                epoch: peer_epoch,
                last_seq: peer_last_seq,
            })
        }
        other => Err(DistError::Handshake(format!(
            "expected hello, got {}",
            other.kind_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STALL: Duration = Duration::from_millis(500);

    fn beat(rank: u32, beat_no: u64) -> Frame {
        Frame::Heartbeat {
            rank,
            beat: beat_no,
        }
    }

    #[test]
    fn loopback_round_trips_and_detects_close() {
        let (mut a, mut b) = loopback_pair();
        a.send(&beat(0, 1)).unwrap();
        assert_eq!(b.recv_raw(STALL).unwrap(), beat(0, 1));
        drop(a);
        assert!(matches!(b.recv_raw(STALL), Err(DistError::PeerClosed)));
    }

    #[test]
    fn loopback_stall_is_typed_with_the_window() {
        let (_a, mut b) = loopback_pair();
        let window = Duration::from_millis(20);
        match b.recv_raw(window) {
            Err(DistError::PeerStalled(w)) => assert_eq!(w, window),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn recv_data_skips_heartbeats_and_reports_shutdown_as_closed() {
        let (mut a, mut b) = loopback_pair();
        a.send(&beat(0, 1)).unwrap();
        a.send(&beat(0, 2)).unwrap();
        a.send(&Frame::Shutdown { rank: 0 }).unwrap();
        assert!(matches!(b.recv_data(STALL), Err(DistError::PeerClosed)));
    }

    #[test]
    fn unix_socket_link_round_trips_frames() {
        let dir = std::env::temp_dir().join(format!("pbp_dist_unix_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let transport = Transport::Unix { dir: dir.clone() };
        let listener = transport.listen(0).unwrap();
        let t2 = transport.clone();
        let client = std::thread::spawn(move || {
            let mut conn = t2.connect(0, STALL).unwrap();
            conn.send(&beat(1, 7)).unwrap();
            conn.recv_raw(STALL).unwrap()
        });
        let mut server = listener.accept(STALL).unwrap();
        assert_eq!(server.recv_raw(STALL).unwrap(), beat(1, 7));
        server.send(&beat(0, 8)).unwrap();
        assert_eq!(client.join().unwrap(), beat(0, 8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn socket_peer_death_is_peer_closed() {
        let dir = std::env::temp_dir().join(format!("pbp_dist_dead_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let transport = Transport::Unix { dir: dir.clone() };
        let listener = transport.listen(0).unwrap();
        let t2 = transport.clone();
        let client = std::thread::spawn(move || {
            let conn = t2.connect(0, STALL).unwrap();
            drop(conn); // peer dies immediately
        });
        let mut server = listener.accept(STALL).unwrap();
        client.join().unwrap();
        assert!(matches!(server.recv_raw(STALL), Err(DistError::PeerClosed)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn socket_silence_is_peer_stalled() {
        let dir = std::env::temp_dir().join(format!("pbp_dist_stall_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let transport = Transport::Unix { dir: dir.clone() };
        let listener = transport.listen(0).unwrap();
        let t2 = transport.clone();
        let window = Duration::from_millis(30);
        let client = std::thread::spawn(move || {
            let mut conn = t2.connect(0, STALL).unwrap();
            // Stay alive but silent past the window, then close.
            std::thread::sleep(Duration::from_millis(90));
            let _ = conn.send(&beat(1, 1));
        });
        let mut server = listener.accept(STALL).unwrap();
        assert!(matches!(
            server.recv_raw(window),
            Err(DistError::PeerStalled(_))
        ));
        client.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handshake_rejects_wrong_run_and_wrong_neighbor() {
        // Matching digests succeed and surface the peer's session state.
        let (mut a, mut b) = loopback_pair();
        let server =
            std::thread::spawn(move || handshake(&mut b, 1, 0, 2, 42, 7, 19, STALL).map(|_| b));
        let peer = handshake(&mut a, 0, 1, 2, 42, 0, 0, STALL).unwrap();
        assert_eq!(
            peer,
            PeerHello {
                rank: 1,
                epoch: 7,
                last_seq: 19
            }
        );
        server.join().unwrap().unwrap();

        // Digest mismatch is a typed handshake error.
        let (mut a, mut b) = loopback_pair();
        let server = std::thread::spawn(move || handshake(&mut b, 1, 0, 2, 43, 0, 0, STALL));
        let res = handshake(&mut a, 0, 1, 2, 42, 0, 0, STALL);
        assert!(matches!(res, Err(DistError::Handshake(_))), "{res:?}");
        assert!(matches!(
            server.join().unwrap(),
            Err(DistError::Handshake(_))
        ));

        // Unexpected neighbor rank on the link.
        let (mut a, mut b) = loopback_pair();
        let server = std::thread::spawn(move || handshake(&mut b, 3, 0, 4, 42, 0, 0, STALL));
        let res = handshake(&mut a, 0, 1, 4, 42, 0, 0, STALL);
        assert!(matches!(res, Err(DistError::Handshake(_))), "{res:?}");
        let _ = server.join().unwrap();
    }

    #[test]
    fn faulty_conn_drops_duplicates_and_corrupts_typed() {
        use crate::netfault::{LinkDir, NetFaultKind, NetFaultPlan, NetFaultSpec};
        use pbp_tensor::Tensor;

        let data = |seq: u64| Frame::Activation {
            seq,
            microbatch: seq,
            weight_version: 0,
            label: 0,
            lanes: vec![Tensor::from_vec(vec![seq as f32; 3], &[3]).unwrap()],
        };
        let plan = NetFaultPlan::new(0)
            .with(NetFaultSpec::new(0, LinkDir::Down, 1, NetFaultKind::Drop))
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                2,
                NetFaultKind::Duplicate,
            ))
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                4,
                NetFaultKind::BitFlip,
            ))
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                5,
                NetFaultKind::Truncate,
            ));
        let (mut tx, rx) = loopback_pair();
        let mut faulty = FaultyConn::new(Box::new(rx), plan.injector(0, LinkDir::Down));
        for seq in 0..6 {
            tx.send(&data(seq)).unwrap();
        }
        // Heartbeats pass through un-faulted and un-counted.
        tx.send(&beat(0, 9)).unwrap();

        assert_eq!(faulty.recv_raw(STALL).unwrap(), data(0));
        // Frame 1 dropped; frame 2 delivered twice.
        assert_eq!(faulty.recv_raw(STALL).unwrap(), data(2));
        assert_eq!(faulty.recv_raw(STALL).unwrap(), data(2));
        assert_eq!(faulty.recv_raw(STALL).unwrap(), data(3));
        assert!(matches!(
            faulty.recv_raw(STALL),
            Err(DistError::ChecksumMismatch)
        ));
        assert!(matches!(faulty.recv_raw(STALL), Err(DistError::Corrupt(_))));
        assert_eq!(faulty.recv_raw(STALL).unwrap(), beat(0, 9));
    }

    #[test]
    fn tcp_link_round_trips_frames() {
        // Bind on an OS-assigned port by probing: use base port 0 is not
        // expressible (link offsets), so grab a free port first.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        let transport = Transport::Tcp {
            host: "127.0.0.1".into(),
            base_port: port,
        };
        let listener = transport.listen(0).unwrap();
        let t2 = transport.clone();
        let client = std::thread::spawn(move || {
            let mut conn = t2.connect(0, STALL).unwrap();
            conn.send(&beat(1, 5)).unwrap();
            conn.recv_raw(STALL).unwrap()
        });
        let mut server = listener.accept(STALL).unwrap();
        assert_eq!(server.recv_raw(STALL).unwrap(), beat(1, 5));
        server.send(&beat(0, 6)).unwrap();
        assert_eq!(client.join().unwrap(), beat(0, 6));
    }

    #[test]
    fn transport_specs_parse_and_round_trip() {
        let u = Transport::parse("unix:/tmp/pbp-links").unwrap();
        assert_eq!(u.arg(), "unix:/tmp/pbp-links");
        let t = Transport::parse("tcp:127.0.0.1:9100").unwrap();
        assert_eq!(t.arg(), "tcp:127.0.0.1:9100");
        for bad in ["unix:", "tcp:9100", "tcp:host:notaport", "carrier-pigeon"] {
            assert!(matches!(Transport::parse(bad), Err(DistError::Spec(_))));
        }
    }
}
