//! Multi-process distributed pipeline: socket transport, rank framing,
//! and a stage-group launcher.
//!
//! This crate turns the single-process pipeline emulation into a chain
//! of OS processes, one per *stage group*, exchanging activations and
//! gradients over length-prefixed CRC-checked frames:
//!
//! * [`codec`] — the wire format: every frame is
//!   `len u32 | body | crc32(body)`, with the body serialized through
//!   the same `StateWriter`/`StateReader` codec snapshots use, so
//!   tensors have exactly one byte-level representation in the repo.
//! * [`transport`] — Unix-socket, TCP, and in-process loopback links
//!   behind one [`Connection`] trait, with watchdog-style stall/closed
//!   fault typing and deadline-based reconnect.
//! * [`topology`] — the contiguous stage partition and its digest,
//!   which the [`transport::handshake`] uses to refuse cross-run links.
//! * [`runner`] — one rank's event loop: greedy forward-first within
//!   the version-lag bound, backward actions in exact schedule order,
//!   hyperparameters bound at backward boundaries, snapshot drain
//!   barriers. Bit-identical to the sequential
//!   [`ScheduledTrainer`](pbp_pipeline::ScheduledTrainer) by
//!   construction (both drive the same
//!   [`StageCell`](pbp_pipeline::StageCell)s — see DESIGN §12).
//! * [`launch`] — the `pbp-launch` supervisor: spawns one process per
//!   rank, watches for typed faults (peer death, stalls, nonzero
//!   exits), and restarts the whole stage group from the newest
//!   snapshot counter *all* ranks hold, with exponential backoff.
//! * [`netfault`] — deterministic, seeded network fault plans
//!   (`PBP_NET_FAULTS`): drop, truncate, bit-flip, duplicate, delay,
//!   and partition frames per-link per-direction, mirroring the thread
//!   runtime's `FaultPlan`.
//! * [`reliable`] — the session layer chaos is aimed at: sequence
//!   numbers, cumulative acks, a bounded replay window, and
//!   reconnect-with-replay behind the same [`Connection`] trait, plus
//!   rewind-generation epochs for surviving-rank recovery.
//! * [`env`] — hardened `PBP_RANK` / `PBP_WORLD` / `PBP_DIST_ABORT_AT`
//!   / `PBP_NET_FAULTS` parsing (invalid values warn once and fall
//!   back, like `PBP_THREADS` / `PBP_SIMD`).

pub mod codec;
pub mod env;
pub mod error;
pub mod launch;
pub mod netfault;
pub mod reliable;
pub mod runner;
pub mod topology;
pub mod transport;

pub use codec::{Frame, MAX_FRAME_BYTES};
pub use env::{env_abort_at, env_net_faults, env_rank, env_world};
pub use error::DistError;
pub use launch::{launch, LaunchReport, LaunchSpec};
pub use launch::{read_rewind_token, rewind_token_path, write_rewind_token};
pub use netfault::{
    LinkDir, NetFaultAction, NetFaultInjector, NetFaultKind, NetFaultPlan, NetFaultSpec,
};
pub use reliable::{LinkEndpoint, LinkIdentity, LinkOptions, ReconnectPolicy, ReliableConn};
pub use runner::{
    rank_snapshot_path, run_rank, splice_owned_stages, RankOutcome, RankRecovery, RankSnapshots,
    RankSpec, SECTION_DIST, SECTION_DIST_METRICS,
};
pub use topology::Topology;
pub use transport::{
    handshake, loopback_pair, Connection, FaultyConn, LinkListener, PeerHello, StreamConn,
    Transport,
};
