//! Multi-process distributed pipeline: socket transport, rank framing,
//! and a stage-group launcher.
//!
//! This crate turns the single-process pipeline emulation into a chain
//! of OS processes, one per *stage group*, exchanging activations and
//! gradients over length-prefixed CRC-checked frames:
//!
//! * [`codec`] — the wire format: every frame is
//!   `len u32 | body | crc32(body)`, with the body serialized through
//!   the same `StateWriter`/`StateReader` codec snapshots use, so
//!   tensors have exactly one byte-level representation in the repo.
//! * [`transport`] — Unix-socket, TCP, and in-process loopback links
//!   behind one [`Connection`] trait, with watchdog-style stall/closed
//!   fault typing and deadline-based reconnect.
//! * [`topology`] — the contiguous stage partition and its digest,
//!   which the [`transport::handshake`] uses to refuse cross-run links.
//! * [`runner`] — one rank's event loop: greedy forward-first within
//!   the version-lag bound, backward actions in exact schedule order,
//!   hyperparameters bound at backward boundaries, snapshot drain
//!   barriers. Bit-identical to the sequential
//!   [`ScheduledTrainer`](pbp_pipeline::ScheduledTrainer) by
//!   construction (both drive the same
//!   [`StageCell`](pbp_pipeline::StageCell)s — see DESIGN §12).
//! * [`launch`] — the `pbp-launch` supervisor: spawns one process per
//!   rank, watches for typed faults (peer death, stalls, nonzero
//!   exits), and restarts the whole stage group from the newest
//!   snapshot counter *all* ranks hold, with exponential backoff.
//! * [`env`] — hardened `PBP_RANK` / `PBP_WORLD` parsing (invalid
//!   values warn once and fall back, like `PBP_THREADS` / `PBP_SIMD`).

pub mod codec;
pub mod env;
pub mod error;
pub mod launch;
pub mod runner;
pub mod topology;
pub mod transport;

pub use codec::{Frame, MAX_FRAME_BYTES};
pub use env::{env_rank, env_world};
pub use error::DistError;
pub use launch::{launch, LaunchReport, LaunchSpec};
pub use runner::{
    rank_snapshot_path, run_rank, splice_owned_stages, RankOutcome, RankSnapshots, RankSpec,
    SECTION_DIST,
};
pub use topology::Topology;
pub use transport::{handshake, loopback_pair, Connection, LinkListener, StreamConn, Transport};
