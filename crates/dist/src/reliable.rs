//! Reconnect-with-replay: exactly-once data links over faulty wires.
//!
//! [`ReliableConn`] wraps one rank-to-rank link with the session layer
//! the chaos plans (`crate::netfault`) are designed to attack:
//!
//! * **Sequencing.** Every data frame (activation / gradient) is
//!   stamped with a per-link, per-direction sequence number starting
//!   at 1. The receiver delivers frames strictly in order, acks each one
//!   cumulatively ([`Frame::Ack`]), discards duplicates (`seq <=
//!   last_delivered`), and treats a gap as a broken link.
//! * **Bounded replay window.** The sender keeps up to
//!   [`LinkOptions::window`] unacked frames. When the window fills it
//!   drains acks off the wire (incoming data frames are parked in an
//!   inbox, so bidirectional links cannot deadlock on backpressure).
//! * **Reconnect.** On any wire fault — corrupt frame, checksum
//!   mismatch, peer EOF, stall — the link tears down and re-establishes
//!   through its original endpoint (re-dial or re-accept) with
//!   deadline + backoff from [`ReconnectPolicy`]. The `Hello` exchange
//!   carries each side's session epoch and `last_seq`; after the
//!   handshake the sender replays everything past the peer's ack
//!   horizon. The runner above observes none of this beyond latency:
//!   delivery is exactly-once and in order, so the Eq. 5 delay contract
//!   (and therefore bit-identity with `ScheduleCore`) survives.
//! * **Rewind generations.** The epoch's high 32 bits are the group
//!   rewind generation. A peer announcing a *newer* generation means
//!   the group rolled back while this rank was out; establishment
//!   surfaces [`DistError::StaleGeneration`] so the runner rewinds to
//!   the common snapshot instead of resuming doomed in-flight state.
//!   [`ReliableConn::begin_generation`] resets the session afterwards.
//!
//! The accept side's establishment loop is hardened: a peer that
//! connects but never sends `Hello` burns one accept iteration and a
//! stall window, not the whole listener — the deadline still trips with
//! a typed error.

use crate::codec::Frame;
use crate::error::DistError;
use crate::netfault::NetFaultInjector;
use crate::transport::{apply_net_fault, handshake, Connection, LinkListener, Transport};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How a [`ReliableConn`] reaches (and re-reaches) its peer.
pub enum LinkEndpoint {
    /// An already-established connection (loopback tests). Cannot
    /// reconnect: the first wire fault is terminal for the link.
    Conn(Box<dyn Connection>),
    /// The listening side of the link (rank `i` of link `i`): accepts,
    /// and re-accepts after faults.
    Listen(LinkListener),
    /// The dialing side (rank `i + 1` of link `i`): connects, and
    /// re-dials after faults.
    Dial {
        /// Where the link lives.
        transport: Transport,
        /// Which link to dial.
        link: usize,
    },
}

/// How hard to fight for a link before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Total budget for one recovery (re-establish + handshake).
    pub deadline: Duration,
    /// Pause between failed reconnect attempts.
    pub backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            deadline: Duration::from_secs(5),
            backoff: Duration::from_millis(10),
        }
    }
}

/// Who is on each end of the link — the facts `Hello` must agree on.
#[derive(Debug, Clone, Copy)]
pub struct LinkIdentity {
    /// This side's rank.
    pub my_rank: u32,
    /// The rank expected on the far side.
    pub peer_rank: u32,
    /// World size of the run.
    pub world: u32,
    /// Topology/run digest (both sides must match).
    pub digest: u64,
}

/// Tuning for one reliable link.
pub struct LinkOptions {
    /// Reconnect budget; `None` means any wire fault is terminal
    /// (classic kill-group recovery).
    pub policy: Option<ReconnectPolicy>,
    /// Scripted faults applied to this end's received data frames.
    pub injector: NetFaultInjector,
    /// Stall window for handshake receives during establishment.
    pub stall: Duration,
    /// Maximum unacked data frames held for replay before the sender
    /// blocks draining acks.
    pub window: usize,
    /// Starting rewind generation (epoch high bits).
    pub generation: u64,
}

impl Default for LinkOptions {
    fn default() -> Self {
        LinkOptions {
            policy: None,
            injector: NetFaultInjector::none(),
            stall: Duration::from_secs(5),
            window: DEFAULT_WINDOW,
            generation: 0,
        }
    }
}

/// Default replay-window size in frames — far above any schedule's
/// per-link in-flight bound, so backpressure only bites when acks stop.
pub const DEFAULT_WINDOW: usize = 64;

enum Reattach {
    None,
    Listen(LinkListener),
    Dial { transport: Transport, link: usize },
}

/// One link of the rank chain with sequencing, acks, bounded replay,
/// and reconnect. Implements [`Connection`], so the runner drives it
/// exactly like a raw socket.
pub struct ReliableConn {
    inner: Option<Box<dyn Connection>>,
    reattach: Reattach,
    identity: LinkIdentity,
    policy: Option<ReconnectPolicy>,
    injector: NetFaultInjector,
    fault_pending: VecDeque<Frame>,
    stall: Duration,
    window: usize,
    generation: u64,
    attempt: u64,
    next_send_seq: u64,
    replay: VecDeque<Frame>,
    last_delivered: u64,
    peer_acked: u64,
    inbox: VecDeque<Frame>,
    reconnects: u64,
}

impl ReliableConn {
    /// Builds the session layer over `endpoint`. Call
    /// [`Self::establish`] before first use.
    pub fn new(endpoint: LinkEndpoint, identity: LinkIdentity, opts: LinkOptions) -> Self {
        let (inner, reattach) = match endpoint {
            LinkEndpoint::Conn(conn) => (Some(conn), Reattach::None),
            LinkEndpoint::Listen(listener) => (None, Reattach::Listen(listener)),
            LinkEndpoint::Dial { transport, link } => (None, Reattach::Dial { transport, link }),
        };
        ReliableConn {
            inner,
            reattach,
            identity,
            policy: opts.policy,
            injector: opts.injector,
            fault_pending: VecDeque::new(),
            stall: opts.stall,
            window: opts.window.max(1),
            generation: opts.generation,
            attempt: 0,
            next_send_seq: 1,
            replay: VecDeque::new(),
            last_delivered: 0,
            peer_acked: 0,
            inbox: VecDeque::new(),
            reconnects: 0,
        }
    }

    /// This side's session epoch: `(generation << 32) | attempt`.
    pub fn epoch(&self) -> u64 {
        (self.generation << 32) | (self.attempt & 0xffff_ffff)
    }

    /// The rewind generation this link is running in.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many times the link tore down and re-established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Unacked frames currently held for replay (test observability).
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Drops the live connection without touching session state. The
    /// runner calls this when parking at the rewind barrier so neighbors
    /// observe EOF immediately instead of waiting out their stall
    /// windows.
    pub fn disconnect(&mut self) {
        self.inner = None;
    }

    /// Second half of the courteous shutdown: after sending our own
    /// `Shutdown`, consume incoming traffic (trailing acks, heartbeats,
    /// the peer's bye) until the peer's `Shutdown` or an error, then
    /// drop the connection. Draining before close matters on TCP:
    /// closing a socket with unread bytes in its receive buffer sends
    /// RST, and the reset destroys the tail of the stream still
    /// buffered on the peer's side — a clean run would lose its last
    /// gradients. Best-effort by design: a peer that already vanished
    /// surfaces as a stall or EOF here, and either simply ends the
    /// drain. No recovery is attempted — the run is over.
    pub fn drain_shutdown(&mut self, stall: Duration) {
        let buffered_bye = self
            .inbox
            .iter()
            .chain(self.fault_pending.iter())
            .any(|f| matches!(f, Frame::Shutdown { .. }));
        if buffered_bye {
            self.inner = None;
            return;
        }
        let start = Instant::now();
        while start.elapsed() < stall {
            let Some(inner) = self.inner.as_mut() else {
                break;
            };
            match inner.recv_raw(stall.saturating_sub(start.elapsed())) {
                Ok(Frame::Shutdown { .. }) | Err(_) => break,
                Ok(_) => {}
            }
        }
        self.inner = None;
    }

    /// Resets the session for a new rewind generation: sequence space,
    /// replay window, and any live connection are discarded. The runner
    /// calls this after rolling its model state back, then
    /// [`Self::establish`]s again.
    pub fn begin_generation(&mut self, generation: u64) {
        self.generation = generation;
        self.attempt = 0;
        self.next_send_seq = 1;
        self.replay.clear();
        self.last_delivered = 0;
        self.peer_acked = 0;
        self.inbox.clear();
        self.fault_pending.clear();
        self.inner = None;
    }

    /// Connects (or reconnects) and runs the `Hello` exchange,
    /// replaying unacked frames past the peer's ack horizon. Loops over
    /// bad peers (wrong digest on a shared port, silent connectors,
    /// stale-generation stragglers) until the deadline; a peer
    /// announcing a *newer* generation is surfaced immediately as
    /// [`DistError::StaleGeneration`].
    pub fn establish(&mut self) -> Result<(), DistError> {
        let deadline = self.policy.map(|p| p.deadline).unwrap_or(self.stall);
        self.establish_within(deadline)
    }

    /// [`Self::establish`] with an explicit deadline — the recovery
    /// path stretches it when the fault was a stall rather than a hard
    /// wire error.
    fn establish_within(&mut self, deadline: Duration) -> Result<(), DistError> {
        let backoff = self
            .policy
            .map(|p| p.backoff)
            .unwrap_or(Duration::from_millis(2));
        let start = Instant::now();
        loop {
            let remaining = deadline.saturating_sub(start.elapsed());
            let mut conn: Box<dyn Connection> = match self.inner.take() {
                Some(conn) => conn,
                None => match &self.reattach {
                    Reattach::None => return Err(DistError::PeerClosed),
                    Reattach::Listen(listener) => listener.accept(remaining)?,
                    Reattach::Dial { transport, link } => transport.connect(*link, remaining)?,
                },
            };
            let hello_stall = self.stall.min(remaining.max(Duration::from_millis(1)));
            match handshake(
                conn.as_mut(),
                self.identity.my_rank,
                self.identity.peer_rank,
                self.identity.world,
                self.identity.digest,
                self.epoch(),
                self.last_delivered,
                hello_stall,
            ) {
                Ok(peer) => {
                    self.debug_log(&format!(
                        "handshake ok: peer epoch {:#x} acked {}",
                        peer.epoch, peer.last_seq
                    ));
                    let peer_gen = peer.epoch >> 32;
                    if peer_gen > self.generation {
                        return Err(DistError::StaleGeneration {
                            ours: self.generation,
                            peer: peer_gen,
                        });
                    }
                    if peer_gen < self.generation {
                        // A straggler from before the rewind: it will see
                        // our newer generation, rewind, and come back.
                        if matches!(self.reattach, Reattach::None) || start.elapsed() >= deadline {
                            return Err(DistError::Handshake(format!(
                                "peer stuck at rewind generation {peer_gen} (ours {})",
                                self.generation
                            )));
                        }
                        drop(conn);
                        std::thread::sleep(backoff);
                        continue;
                    }
                    self.peer_acked = self.peer_acked.max(peer.last_seq);
                    while self
                        .replay
                        .front()
                        .and_then(Frame::seq)
                        .is_some_and(|s| s <= self.peer_acked)
                    {
                        self.replay.pop_front();
                    }
                    for frame in &self.replay {
                        conn.send(frame)?;
                    }
                    self.inner = Some(conn);
                    return Ok(());
                }
                Err(e @ DistError::StaleGeneration { .. }) => return Err(e),
                Err(e) => {
                    self.debug_log(&format!("handshake attempt failed: {e}"));
                    // No hello, wrong hello, or a corrupt one: this peer
                    // does not get to hold the link open. Drop it and
                    // accept/dial again until the deadline trips.
                    if matches!(self.reattach, Reattach::None) || start.elapsed() >= deadline {
                        return Err(e);
                    }
                    drop(conn);
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    fn recoverable(err: &DistError) -> bool {
        matches!(
            err,
            DistError::Io(_)
                | DistError::Corrupt(_)
                | DistError::ChecksumMismatch
                | DistError::PeerClosed
                | DistError::PeerStalled(_)
        )
    }

    /// Tears the link down and re-establishes it, consuming `err` if
    /// recovery succeeds. Irrecoverable setups (no policy, fixed
    /// connection) and stale generations propagate immediately.
    fn recover(&mut self, err: DistError) -> Result<(), DistError> {
        if self.policy.is_none()
            || matches!(self.reattach, Reattach::None)
            || !Self::recoverable(&err)
        {
            self.debug_log(&format!("unrecoverable link fault: {err}"));
            return Err(err);
        }
        self.inner = None;
        self.fault_pending.clear();
        self.reconnects += 1;
        self.attempt += 1;
        // A stall means the peer went quiet, not that the wire broke:
        // it may be parked in its own stall window for up to `stall`
        // longer before it notices this link died and comes back — and
        // a reconnect whose replay is swallowed by a still-open
        // partition costs one more full round. Hard wire faults keep
        // the tight deadline: the peer saw the same breakage and is
        // already reconnecting.
        let mut deadline = self.policy.map(|p| p.deadline).unwrap_or(self.stall);
        if matches!(err, DistError::PeerStalled(_)) {
            deadline += self.stall;
        }
        self.debug_log(&format!("recovering from {err}"));
        match self.establish_within(deadline) {
            Ok(()) => {
                self.debug_log("re-established");
                Ok(())
            }
            Err(e @ DistError::StaleGeneration { .. }) => Err(e),
            // Report the original fault: it names the root cause the
            // reconnect budget could not absorb.
            Err(e) => {
                self.debug_log(&format!("re-establish failed: {e}"));
                Err(err)
            }
        }
    }

    /// Recovery-arc breadcrumbs, gated behind `PBP_DBG_RELIABLE` —
    /// quiet in normal runs, invaluable when a chaos soak wedges.
    fn debug_log(&self, what: &str) {
        if std::env::var_os("PBP_DBG_RELIABLE").is_some() {
            eprintln!(
                "[reliable] rank {} link to {}: {what}",
                self.identity.my_rank, self.identity.peer_rank
            );
        }
    }

    /// Receives one frame off the live connection, applying this end's
    /// scripted faults to data frames.
    fn pull_frame(&mut self, stall: Duration) -> Result<Frame, DistError> {
        if let Some(frame) = self.fault_pending.pop_front() {
            return Ok(frame);
        }
        loop {
            let inner = self.inner.as_mut().ok_or(DistError::PeerClosed)?;
            let frame = inner.recv_raw(stall)?;
            if !matches!(frame, Frame::Activation { .. } | Frame::Gradient { .. }) {
                return Ok(frame);
            }
            let action = self.injector.on_data_frame();
            if let Some(result) = apply_net_fault(frame, action, &mut self.fault_pending) {
                return result;
            }
        }
    }

    /// Runs the session protocol over one received frame. `Ok(Some)` is
    /// a frame to surface to the runner; `Ok(None)` was protocol
    /// traffic (ack, duplicate). A sequence gap is an error — the wire
    /// lost frames, and recovery must force a replay.
    fn process_incoming(&mut self, frame: Frame) -> Result<Option<Frame>, DistError> {
        match frame {
            Frame::Ack { seq, .. } => {
                self.peer_acked = self.peer_acked.max(seq);
                while self
                    .replay
                    .front()
                    .and_then(Frame::seq)
                    .is_some_and(|s| s <= self.peer_acked)
                {
                    self.replay.pop_front();
                }
                Ok(None)
            }
            Frame::Hello { .. } => Err(DistError::Corrupt("unexpected hello mid-stream".into())),
            frame => match frame.seq() {
                None => Ok(Some(frame)),
                Some(seq) => {
                    if seq <= self.last_delivered {
                        // Duplicate (wire echo or overlapping replay):
                        // discard and re-advertise the ack horizon.
                        self.send_ack();
                        return Ok(None);
                    }
                    if seq != self.last_delivered + 1 {
                        return Err(DistError::Corrupt(format!(
                            "link gap: got seq {seq}, expected {}",
                            self.last_delivered + 1
                        )));
                    }
                    self.last_delivered = seq;
                    self.send_ack();
                    Ok(Some(frame))
                }
            },
        }
    }

    /// Best-effort cumulative ack. A lost ack costs nothing but replay
    /// width: the next reconnect's `Hello` re-advertises the horizon.
    fn send_ack(&mut self) {
        let ack = Frame::Ack {
            rank: self.identity.my_rank,
            seq: self.last_delivered,
        };
        if let Some(inner) = self.inner.as_mut() {
            let _ = inner.send(&ack);
        }
    }

    /// One receive step with recovery: `Ok(Some)` surfaces a frame,
    /// `Ok(None)` means protocol traffic was absorbed or the link was
    /// re-established (try again).
    fn step_recv(&mut self, stall: Duration) -> Result<Option<Frame>, DistError> {
        match self.pull_frame(stall) {
            Ok(frame) => match self.process_incoming(frame) {
                Ok(out) => Ok(out),
                Err(e) => self.recover(e).map(|_| None),
            },
            Err(e) => self.recover(e).map(|_| None),
        }
    }
}

impl Connection for ReliableConn {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        if frame.seq().is_none() {
            // Control frame: direct, with one recovery attempt. A
            // heartbeat or shutdown lost to the teardown is harmless —
            // the peer reads EOF as closed anyway.
            let result = match self.inner.as_mut() {
                Some(inner) => inner.send(frame),
                None => Err(DistError::PeerClosed),
            };
            return match result {
                Ok(()) => Ok(()),
                Err(e) => {
                    self.recover(e)?;
                    if let Some(inner) = self.inner.as_mut() {
                        let _ = inner.send(frame);
                    }
                    Ok(())
                }
            };
        }
        let mut stamped = frame.clone();
        stamped.set_seq(self.next_send_seq);
        self.next_send_seq += 1;
        self.replay.push_back(stamped.clone());
        // Bounded window: drain acks before adding more in-flight
        // frames. Data arriving meanwhile parks in the inbox.
        while self.replay.len() > self.window {
            if let Some(parked) = self.step_recv(self.stall)? {
                self.inbox.push_back(parked);
            }
        }
        let result = match self.inner.as_mut() {
            Some(inner) => inner.send(&stamped),
            None => Err(DistError::PeerClosed),
        };
        match result {
            Ok(()) => Ok(()),
            // recover() replays everything unacked — including this
            // frame, which is already in the window. Nothing to resend.
            Err(e) => self.recover(e),
        }
    }

    fn recv_raw(&mut self, stall: Duration) -> Result<Frame, DistError> {
        loop {
            if let Some(frame) = self.inbox.pop_front() {
                return Ok(frame);
            }
            if let Some(frame) = self.step_recv(stall)? {
                return Ok(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netfault::{LinkDir, NetFaultKind, NetFaultPlan, NetFaultSpec};
    use crate::transport::loopback_pair;
    use pbp_tensor::Tensor;

    const STALL: Duration = Duration::from_millis(500);

    fn identity(my_rank: u32, peer_rank: u32) -> LinkIdentity {
        LinkIdentity {
            my_rank,
            peer_rank,
            world: 2,
            digest: 99,
        }
    }

    fn activation(microbatch: u64) -> Frame {
        Frame::Activation {
            seq: 0,
            microbatch,
            weight_version: 0,
            label: 7,
            lanes: vec![Tensor::from_vec(vec![microbatch as f32; 4], &[4]).unwrap()],
        }
    }

    fn gradient(microbatch: u64) -> Frame {
        Frame::Gradient {
            seq: 0,
            microbatch,
            weight_version: 0,
            loss: 0.5,
            lanes: vec![Tensor::from_vec(vec![1.0; 4], &[4]).unwrap()],
        }
    }

    fn microbatch_of(frame: &Frame) -> u64 {
        match frame {
            Frame::Activation { microbatch, .. } | Frame::Gradient { microbatch, .. } => {
                *microbatch
            }
            other => panic!("expected data frame, got {}", other.kind_name()),
        }
    }

    #[test]
    fn loopback_session_acks_and_discards_duplicates() {
        let (a_end, b_end) = loopback_pair();
        // B's receive side duplicates data frames 1 and 3.
        let plan = NetFaultPlan::new(0)
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                1,
                NetFaultKind::Duplicate,
            ))
            .with(NetFaultSpec::new(
                0,
                LinkDir::Down,
                3,
                NetFaultKind::Duplicate,
            ));
        let b_injector = plan.injector(0, LinkDir::Down);
        let b_thread = std::thread::spawn(move || {
            let mut b = ReliableConn::new(
                LinkEndpoint::Conn(Box::new(b_end)),
                identity(1, 0),
                LinkOptions {
                    injector: b_injector,
                    stall: STALL,
                    ..LinkOptions::default()
                },
            );
            b.establish().unwrap();
            let mut got = Vec::new();
            for _ in 0..5 {
                got.push(microbatch_of(&b.recv_data(STALL).unwrap()));
            }
            b.send(&gradient(0)).unwrap();
            got
        });
        let mut a = ReliableConn::new(
            LinkEndpoint::Conn(Box::new(a_end)),
            identity(0, 1),
            LinkOptions {
                stall: STALL,
                ..LinkOptions::default()
            },
        );
        a.establish().unwrap();
        for mb in 0..5 {
            a.send(&activation(mb)).unwrap();
        }
        // Receiving the gradient forces A through the ack stream.
        let grad = a.recv_data(STALL).unwrap();
        assert_eq!(microbatch_of(&grad), 0);
        assert_eq!(b_thread.join().unwrap(), vec![0, 1, 2, 3, 4]);
        // All five activations acked: the replay window drained.
        assert_eq!(a.replay_len(), 0);
        assert_eq!(a.reconnects(), 0);
    }

    #[test]
    fn window_backpressure_blocks_until_acked() {
        let (a_end, b_end) = loopback_pair();
        let b_thread = std::thread::spawn(move || {
            let mut b = ReliableConn::new(
                LinkEndpoint::Conn(Box::new(b_end)),
                identity(1, 0),
                LinkOptions {
                    stall: STALL,
                    ..LinkOptions::default()
                },
            );
            b.establish().unwrap();
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(microbatch_of(&b.recv_data(STALL).unwrap()));
            }
            got
        });
        let mut a = ReliableConn::new(
            LinkEndpoint::Conn(Box::new(a_end)),
            identity(0, 1),
            LinkOptions {
                stall: STALL,
                window: 2,
                ..LinkOptions::default()
            },
        );
        a.establish().unwrap();
        for mb in 0..6 {
            a.send(&activation(mb)).unwrap();
            assert!(a.replay_len() <= 2, "window exceeded: {}", a.replay_len());
        }
        assert_eq!(b_thread.join().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    fn unix_transport(tag: &str) -> (Transport, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("pbp_rel_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Transport::Unix { dir: dir.clone() }, dir)
    }

    #[test]
    fn dropped_frame_triggers_reconnect_and_replay() {
        let (transport, dir) = unix_transport("drop");
        let listener = transport.listen(0).unwrap();
        let policy = ReconnectPolicy {
            deadline: Duration::from_secs(5),
            backoff: Duration::from_millis(5),
        };
        // The dial side's receive path silently loses data frame 2; the
        // gap at frame 3 must force a reconnect that replays it.
        let plan =
            NetFaultPlan::new(0).with(NetFaultSpec::new(0, LinkDir::Down, 2, NetFaultKind::Drop));
        let b_injector = plan.injector(0, LinkDir::Down);
        let t2 = transport.clone();
        let b_thread = std::thread::spawn(move || {
            let mut b = ReliableConn::new(
                LinkEndpoint::Dial {
                    transport: t2,
                    link: 0,
                },
                identity(1, 0),
                LinkOptions {
                    policy: Some(policy),
                    injector: b_injector,
                    stall: STALL,
                    ..LinkOptions::default()
                },
            );
            b.establish().unwrap();
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(microbatch_of(&b.recv_data(STALL).unwrap()));
            }
            b.send(&gradient(5)).unwrap();
            (got, b.reconnects())
        });
        let mut a = ReliableConn::new(
            LinkEndpoint::Listen(listener),
            identity(0, 1),
            LinkOptions {
                policy: Some(policy),
                stall: STALL,
                ..LinkOptions::default()
            },
        );
        a.establish().unwrap();
        for mb in 0..6 {
            a.send(&activation(mb)).unwrap();
        }
        let grad = a.recv_data(STALL).unwrap();
        assert_eq!(microbatch_of(&grad), 5);
        let (got, b_reconnects) = b_thread.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "replay must fill the gap");
        assert!(b_reconnects >= 1, "the drop must have forced a reconnect");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_is_typed_and_clears_after_rewind() {
        let (transport, dir) = unix_transport("gen");
        let listener = transport.listen(0).unwrap();
        let policy = ReconnectPolicy {
            deadline: Duration::from_secs(5),
            backoff: Duration::from_millis(5),
        };
        let a_thread = std::thread::spawn(move || {
            let mut a = ReliableConn::new(
                LinkEndpoint::Listen(listener),
                identity(0, 1),
                LinkOptions {
                    policy: Some(policy),
                    stall: STALL,
                    generation: 1,
                    ..LinkOptions::default()
                },
            );
            a.establish().unwrap();
            microbatch_of(&a.recv_data(STALL).unwrap())
        });
        let mut b = ReliableConn::new(
            LinkEndpoint::Dial { transport, link: 0 },
            identity(1, 0),
            LinkOptions {
                policy: Some(policy),
                stall: STALL,
                generation: 0,
                ..LinkOptions::default()
            },
        );
        match b.establish() {
            Err(DistError::StaleGeneration { ours: 0, peer: 1 }) => {}
            other => panic!("expected stale generation, got {other:?}"),
        }
        // After rewinding to the announced generation the link forms.
        b.begin_generation(1);
        b.establish().unwrap();
        b.send(&gradient(9)).unwrap();
        assert_eq!(a_thread.join().unwrap(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silent_peer_trips_accept_deadline_with_typed_error() {
        use std::net::{TcpListener as StdTcpListener, TcpStream};
        let probe = StdTcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        let transport = Transport::Tcp {
            host: "127.0.0.1".into(),
            base_port: port,
        };
        let listener = transport.listen(0).unwrap();
        let mut a = ReliableConn::new(
            LinkEndpoint::Listen(listener),
            identity(0, 1),
            LinkOptions {
                policy: Some(ReconnectPolicy {
                    deadline: Duration::from_millis(250),
                    backoff: Duration::from_millis(5),
                }),
                stall: Duration::from_millis(50),
                ..LinkOptions::default()
            },
        );
        // A rogue peer connects but never sends hello: it must burn one
        // stall window, not wedge the accept loop forever.
        let rogue = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let start = Instant::now();
        let res = a.establish();
        assert!(
            matches!(res, Err(DistError::PeerStalled(_)) | Err(DistError::Io(_))),
            "expected typed deadline error, got {res:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "accept loop must respect the deadline, took {:?}",
            start.elapsed()
        );
        drop(rogue);
    }
}
